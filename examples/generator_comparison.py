"""Scenario: head-to-head comparison of temporal graph generators.

Reproduces a miniature of the paper's Tables IV-VI on one dataset: every
generator in the registry is fitted on the same observed communication
network, and the seven structural statistics plus the temporal-motif MMD are
reported side by side.

    python examples/generator_comparison.py
"""

from repro.bench import format_table, motif_table, quality_table
from repro.core import fast_config
from repro.datasets import load_dataset

METHODS = ["TGAE", "TIGGER", "DYMOND", "TagGen", "NetGAN", "E-R", "B-A", "VGAE"]


def main() -> None:
    observed = load_dataset("MSG", scale="small")
    print(f"observed: {observed}\n")

    config = fast_config(epochs=20)

    print("=== median relative error over timestamps (paper Table IV style) ===")
    median_scores = quality_table(
        observed, methods=METHODS, reduction="median", tgae_config=config
    )
    print(format_table(median_scores, columns=METHODS))

    print("\n=== mean relative error over timestamps (paper Table V style) ===")
    mean_scores = quality_table(
        observed, methods=METHODS, reduction="mean", tgae_config=config, seed=1
    )
    print(format_table(mean_scores, columns=METHODS))

    print("\n=== temporal motif MMD (paper Table VI style) ===")
    motif_scores = motif_table(observed, methods=METHODS, delta=2, tgae_config=config)
    for method in METHODS:
        print(f"  {method:10s} {motif_scores[method]:.6f}")

    best = min(motif_scores, key=motif_scores.get)
    print(f"\nbest motif preservation: {best}")


if __name__ == "__main__":
    main()
