"""Scenario: simulating community-driven dynamics in a collaboration network.

Real collaboration and social networks are organised around communities that
appear, stay active for a bounded period, and dissolve -- the "time-bound
communities" that the TED model (Zheng et al., ICDE 2024, discussed in the
paper's related work) is built around.  This example:

1. builds a citation-style collaboration network with strong community
   structure (the DBLP stand-in);
2. fits both TGAE (the paper's model) and the TED-style community baseline;
3. compares how well each preserves the community-level temporal texture:
   block time bounds, burstiness of the continuous-time event stream, and
   the extended structural statistics (clustering, assortativity);
4. shows the continuous-time round trip: snapshots -> event stream ->
   statistics computed in continuous time.

    python examples/community_dynamics.py
"""

import numpy as np

from repro.baselines import TEDGenerator
from repro.core import TGAEGenerator, fast_config
from repro.datasets import load_dataset
from repro.graph import (
    burstiness,
    cumulative_snapshots,
    from_temporal_graph,
    inter_event_times,
)
from repro.metrics import (
    degree_assortativity,
    global_clustering,
)


def describe(name, graph):
    """Community-relevant fingerprint of one temporal graph."""
    final = cumulative_snapshots(graph)[-1]
    stream = from_temporal_graph(graph, spread="uniform", seed=0)
    gaps = inter_event_times(stream, per="node")
    return {
        "name": name,
        "clustering": global_clustering(final),
        "assortativity": degree_assortativity(final),
        "node_burstiness": burstiness(gaps),
    }


def main() -> None:
    observed = load_dataset("DBLP", scale="small")
    print(f"observed collaboration network: {observed}")

    print("\nfitting TGAE (the paper's model)...")
    tgae = TGAEGenerator(fast_config(epochs=15)).fit(observed)
    tgae_graph = tgae.generate(seed=1)

    print("fitting TED (time-bound-community baseline)...")
    ted = TEDGenerator().fit(observed)
    ted_graph = ted.generate(seed=1)

    # Community census learned by TED on the observed graph.
    labels = ted.community_labels
    bounds = ted.community_time_bounds()
    sizes = np.bincount(labels)
    print(f"\nTED found {len(bounds)} active communities "
          f"(sizes: {sorted(sizes[sizes > 0].tolist(), reverse=True)[:8]} ...)")
    print("community time bounds (first 5):")
    for block, (first, last) in list(sorted(bounds.items()))[:5]:
        print(f"  community {block:3d}: active t in [{first}, {last}], "
              f"{int(sizes[block])} members")

    # Temporal/structural fingerprints.
    rows = [
        describe("observed", observed),
        describe("TGAE", tgae_graph),
        describe("TED", ted_graph),
    ]
    print(f"\n{'graph':10s} {'clustering':>11s} {'assortativity':>14s} {'burstiness':>11s}")
    for row in rows:
        print(f"{row['name']:10s} {row['clustering']:11.3f} "
              f"{row['assortativity']:14.3f} {row['node_burstiness']:11.3f}")

    # Which generator keeps the fingerprint better?
    reference = rows[0]
    for row in rows[1:]:
        gap = sum(
            abs(row[key] - reference[key])
            for key in ("clustering", "assortativity", "node_burstiness")
        )
        print(f"{row['name']}: total fingerprint deviation {gap:.3f}")


if __name__ == "__main__":
    main()
