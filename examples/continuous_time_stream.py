"""Scenario: simulating a raw timestamped event stream end to end.

Production temporal-graph data rarely arrives pre-binned: message logs,
transactions and API calls carry raw (continuous) timestamps.  Sec. III of
the paper notes the snapshot-based method "can be extended to process and
generate graphs that reflect the temporal changes among all time stamps" --
this example runs that extension:

1. build a bursty continuous-time message stream (events cluster in
   sessions separated by silences, like real communication logs);
2. fit a `ContinuousTimeGenerator` wrapping TGAE -- it bins the stream,
   trains on snapshots, and learns each bin's empirical within-bin arrival
   profile;
3. generate a synthetic *event stream* (raw float timestamps, not bins);
4. verify the temporal texture survived: burstiness and memory coefficient
   of the synthetic stream vs the observed one, against a uniform-smear
   strawman.

    python examples/continuous_time_stream.py
"""

import numpy as np

from repro.core import ContinuousTimeGenerator, TGAEGenerator, fast_config
from repro.graph import (
    EventStream,
    burstiness,
    from_temporal_graph,
    inter_event_times,
    memory_coefficient,
)


def make_message_stream(num_nodes=40, sessions=12, msgs_per_session=40, seed=0):
    """Messages arrive in tight sessions separated by long silences."""
    rng = np.random.default_rng(seed)
    src, dst, times = [], [], []
    for session in range(sessions):
        start = session * 50.0 + rng.uniform(0.0, 5.0)
        participants = rng.choice(num_nodes, size=6, replace=False)
        clock = start
        for _ in range(msgs_per_session):
            u, v = rng.choice(participants, size=2, replace=False)
            clock += float(rng.exponential(0.05))
            src.append(int(u))
            dst.append(int(v))
            times.append(clock)
    return EventStream(num_nodes, src, dst, times)


def texture(stream):
    gaps = inter_event_times(stream)
    return burstiness(gaps), memory_coefficient(gaps)


def main() -> None:
    observed = make_message_stream()
    obs_b, obs_m = texture(observed)
    print(f"observed stream: {observed}")
    print(f"  span {observed.duration:.1f}s, burstiness {obs_b:+.3f}, "
          f"memory {obs_m:+.3f}")

    print("\nfitting ContinuousTimeGenerator(TGAE), 12 bins...")
    generator = ContinuousTimeGenerator(
        TGAEGenerator(fast_config(epochs=15)), num_bins=12
    ).fit(observed)
    synthetic = generator.generate(seed=5)
    syn_b, syn_m = texture(synthetic)
    print(f"synthetic stream: {synthetic}")
    print(f"  burstiness {syn_b:+.3f}, memory {syn_m:+.3f}")

    # Strawman: same binned structure, but times smeared uniformly per bin.
    binned = observed.to_temporal_graph(12)
    smeared = from_temporal_graph(
        binned, bin_width=observed.duration / 12, spread="uniform", seed=5
    )
    smear_b, _ = texture(smeared)

    print("\nburstiness preservation (closer to observed is better):")
    print(f"  observed        {obs_b:+.3f}")
    print(f"  TGAE continuous {syn_b:+.3f}  (gap {abs(syn_b - obs_b):.3f})")
    print(f"  uniform smear   {smear_b:+.3f}  (gap {abs(smear_b - obs_b):.3f})")

    if abs(syn_b - obs_b) < abs(smear_b - obs_b):
        print("\nthe empirical-offset lift preserved the bursty texture the "
              "uniform smear destroys")
    else:
        print("\nnote: on this draw the uniform smear happened to match "
              "burstiness better; rerun with another seed")


if __name__ == "__main__":
    main()
