"""Scenario: simulating a transaction/trust network for fraud research.

The paper's introduction motivates temporal graph simulation with online
finance networks: fraud-detection teams often cannot share production
transaction graphs, but can share *simulated* graphs that preserve the
structural and temporal fingerprints models are trained on.

This example:

1. builds a Bitcoin-OTC-style trust network (the BITCOIN-O stand-in);
2. fits TGAE and a privacy-free strawman (Erdős–Rényi) on it;
3. verifies that the TGAE simulation preserves the analytics signals a
   downstream fraud model would rely on -- degree concentration,
   triangle/clique structure, and bursty temporal motifs -- far better
   than the strawman.

    python examples/fraud_transaction_simulation.py
"""

import numpy as np

from repro.baselines import ErdosRenyiGenerator
from repro.core import TGAEGenerator, fast_config
from repro.datasets import load_dataset
from repro.graph import cumulative_snapshots
from repro.metrics import (
    compare_graphs,
    motif_distribution,
    motif_mmd,
    power_law_exponent,
)


def degree_gini(graph) -> float:
    """Gini coefficient of the final-snapshot degree distribution.

    Fraud rings concentrate activity; a simulator that flattens the degree
    distribution destroys the signal.
    """
    degrees = np.sort(cumulative_snapshots(graph)[-1].degrees())
    if degrees.sum() == 0:
        return 0.0
    n = degrees.size
    index = np.arange(1, n + 1)
    return float((2 * (index * degrees).sum()) / (n * degrees.sum()) - (n + 1) / n)


def main() -> None:
    observed = load_dataset("BITCOIN-O", scale="small")
    print(f"observed trust network: {observed}")

    tgae = TGAEGenerator(fast_config(epochs=20)).fit(observed)
    strawman = ErdosRenyiGenerator().fit(observed)

    simulated = tgae.generate(seed=7)
    random_graph = strawman.generate(seed=7)

    print("\n--- analytics-signal preservation ---")
    print(f"{'signal':28s} {'observed':>10s} {'TGAE':>10s} {'E-R':>10s}")
    rows = [
        ("degree Gini (concentration)", degree_gini(observed),
         degree_gini(simulated), degree_gini(random_graph)),
        ("power-law exponent", power_law_exponent(cumulative_snapshots(observed)[-1]),
         power_law_exponent(cumulative_snapshots(simulated)[-1]),
         power_law_exponent(cumulative_snapshots(random_graph)[-1])),
    ]
    for label, obs, sim, rnd in rows:
        print(f"{label:28s} {obs:10.3f} {sim:10.3f} {rnd:10.3f}")

    print("\n--- structural error (mean relative, smaller is better) ---")
    tgae_scores = compare_graphs(observed, simulated, reduction="mean")
    er_scores = compare_graphs(observed, random_graph, reduction="mean")
    for metric in ("wedge_count", "claw_count", "triangle_count"):
        print(f"{metric:28s} TGAE={tgae_scores[metric]:.3f}  E-R={er_scores[metric]:.3f}")

    print("\n--- temporal motif fidelity (MMD, smaller is better) ---")
    reference = motif_distribution(observed, delta=3)
    print(f"TGAE: {motif_mmd(reference, motif_distribution(simulated, delta=3)):.5f}")
    print(f"E-R : {motif_mmd(reference, motif_distribution(random_graph, delta=3)):.5f}")


if __name__ == "__main__":
    main()
