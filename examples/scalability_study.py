"""Scenario: scalability profiling of temporal graph generators (Fig. 6 style).

Sweeps the node-count axis of the paper's scalability grid and reports
inference time and peak memory for TGAE against a fast simple baseline and a
dense learning-based baseline, demonstrating the linear-vs-quadratic growth
the paper's Figure 6 shows.

    python examples/scalability_study.py
"""

from repro.baselines import ErdosRenyiGenerator, VGAEGenerator
from repro.bench import measure_point
from repro.core import fast_config
from repro.core.variants import tgae_full
from repro.datasets import node_scale_sweep


def main() -> None:
    # Reduced base scale so the demo finishes in ~a minute on CPU; pass a
    # larger base_nodes to approach the paper's 1k-5k grid.
    points = node_scale_sweep(base_nodes=100, steps=4)
    config = fast_config(epochs=3, num_initial_nodes=32)
    methods = {
        "TGAE": lambda: tgae_full(config),
        "E-R": ErdosRenyiGenerator,
        "VGAE": lambda: VGAEGenerator(epochs=3),
    }

    print(f"{'grid point':14s} {'method':8s} {'fit s':>8s} {'infer s':>9s} {'peak MiB':>9s}")
    for point in points:
        for name, factory in methods.items():
            m = measure_point(factory, point, seed=0)
            mib = m.peak_memory_bytes / (1024 * 1024)
            print(
                f"{point.label:14s} {name:8s} {m.fit_seconds:8.2f} "
                f"{m.inference_seconds:9.3f} {mib:9.2f}"
            )

    print(
        "\nNote how the dense auto-encoder's memory grows quadratically with "
        "node count while TGAE and E-R grow roughly linearly -- the crossover "
        "behind the paper's OOM entries."
    )


if __name__ == "__main__":
    main()
