"""Scenario: sharing a synthetic graph instead of private transaction data.

The paper motivates graph simulation with the inaccessibility of real-life
graphs: a bank cannot share its transaction network, but it *can* share a
synthetic one with the same structural and temporal properties.  The
decisive question for the recipient is whether analyses developed on the
synthetic graph transfer to the real one.

This example runs that protocol end to end on the BITCOIN-A trust network:

1. fit TGAE on the real (observed) graph;
2. generate a synthetic graph -- this is what would be shared;
3. a "recipient" builds a link predictor using only the synthetic history
   and is evaluated on the real graph's held-out final timestamp;
4. compare against the oracle (same predictor built on the real history)
   and a degree-matched null model (RTGEN baseline).

The smaller the real-vs-synthetic AUC gap, the more analysis value the
shared graph retains.

    python examples/data_sharing_utility.py
"""

from repro.baselines import RTGenGenerator
from repro.core import TGAEGenerator, fast_config
from repro.datasets import load_dataset
from repro.metrics import downstream_link_prediction_auc, utility_report


def main() -> None:
    observed = load_dataset("BITCOIN-A", scale="small")
    print(f"private transaction network: {observed}")

    print("\nfitting TGAE on the private graph...")
    tgae = TGAEGenerator(fast_config(epochs=20)).fit(observed)
    shared_tgae = tgae.generate(seed=11)

    print("fitting degree-matched null model (RTGEN)...")
    shared_null = RTGenGenerator().fit(observed).generate(seed=11)

    holdout = observed.num_timestamps - 1
    print(f"\nheld-out timestamp: t={holdout} "
          f"(recipient never sees these real edges)")

    report = utility_report(observed, shared_tgae, holdout_t=holdout)
    print("\ntrain-on-synthetic vs train-on-real link prediction AUC (TGAE):")
    print(f"{'scorer':26s} {'real':>7s} {'synthetic':>10s} {'gap':>7s}")
    for scorer, row in report.items():
        print(f"{scorer:26s} {row['real']:7.3f} {row['synthetic']:10.3f} "
              f"{row['gap']:7.3f}")

    null_auc = downstream_link_prediction_auc(
        shared_null, observed, holdout_t=holdout, scorer="common_neighbors"
    )
    tgae_auc = report["common_neighbors"]["synthetic"]
    oracle_auc = report["common_neighbors"]["real"]
    print(f"\ncommon-neighbors AUC: oracle {oracle_auc:.3f} | "
          f"TGAE-shared {tgae_auc:.3f} | degree-null {null_auc:.3f}")

    retained = (tgae_auc - 0.5) / max(oracle_auc - 0.5, 1e-9)
    print(f"TGAE-shared graph retains {retained:.0%} of the oracle's "
          f"above-chance signal")


if __name__ == "__main__":
    main()
