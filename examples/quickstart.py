"""Quickstart: train TGAE on a temporal graph and evaluate the simulation.

Runs in well under a minute on a laptop CPU:

    python examples/quickstart.py
"""

from repro.bench import format_value
from repro.core import TGAEGenerator, fast_config
from repro.datasets import load_dataset
from repro.metrics import compare_graphs, motif_distribution, motif_mmd


def main() -> None:
    # 1. Load an observed temporal graph (DBLP stand-in at demo scale).
    observed = load_dataset("DBLP", scale="small")
    print(f"observed: {observed}")

    # 2. Fit the Temporal Graph Auto-Encoder.
    config = fast_config(epochs=20, num_initial_nodes=48)
    generator = TGAEGenerator(config).fit(observed)
    losses = generator.history.losses
    print(f"training: {len(losses)} epochs, loss {losses[0]:.3f} -> {losses[-1]:.3f}")

    # 3. Simulate a new temporal graph with the same edge budget.
    simulated = generator.generate(seed=42)
    print(f"simulated: {simulated}")

    # 4. Score structural fidelity (Eq. 10, the paper's Tables IV/V).
    scores = compare_graphs(observed, simulated, reduction="mean")
    print("\nmean relative error per statistic (smaller is better):")
    for metric, value in scores.items():
        print(f"  {metric:16s} {format_value(value)}")

    # 5. Score temporal-motif fidelity (Eq. 1, the paper's Table VI).
    mmd = motif_mmd(
        motif_distribution(observed, delta=3),
        motif_distribution(simulated, delta=3),
    )
    print(f"\ntemporal motif MMD: {format_value(mmd)}")


if __name__ == "__main__":
    main()
