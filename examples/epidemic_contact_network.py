"""Scenario: generating synthetic contact networks for epidemic modelling.

The paper's introduction lists pandemic trajectory generation among the
applications of temporal graph simulation.  Epidemic simulations need
contact networks whose *temporal* structure is right: infection spreads
along time-respecting paths, so a generator that shuffles timestamps changes
the epidemic outcome even if every static statistic matches.

This example fits TGAE on a bursty communication network (a proxy for
proximity contacts), simulates a synthetic contact network, runs an SI
(susceptible-infected) process over both, and compares the epidemic curves.

    python examples/epidemic_contact_network.py
"""

import numpy as np

from repro.core import TGAEGenerator, fast_config
from repro.datasets import load_dataset
from repro.graph import TemporalGraph


def si_process(graph: TemporalGraph, patient_zero: int, beta: float, seed: int) -> np.ndarray:
    """Run a discrete-time SI epidemic along time-respecting edges.

    Returns the cumulative number of infected nodes after each timestamp.
    """
    rng = np.random.default_rng(seed)
    infected = np.zeros(graph.num_nodes, dtype=bool)
    infected[patient_zero] = True
    curve = np.zeros(graph.num_timestamps, dtype=np.int64)
    for timestamp, src, dst in graph.snapshots():
        for u, v in zip(src.tolist(), dst.tolist()):
            if infected[u] and not infected[v] and rng.random() < beta:
                infected[v] = True
            if infected[v] and not infected[u] and rng.random() < beta:
                infected[u] = True
        curve[timestamp] = int(infected.sum())
    return curve


def main() -> None:
    observed = load_dataset("EMAIL", scale="small")
    print(f"observed contact network: {observed}")

    generator = TGAEGenerator(fast_config(epochs=15)).fit(observed)
    simulated = generator.generate(seed=3)
    print(f"simulated contact network: {simulated}")

    # Seed the epidemic at the highest-degree node of each graph.
    beta = 0.3
    obs_zero = int(np.argmax(observed.static_degrees()))
    sim_zero = int(np.argmax(simulated.static_degrees()))
    runs = 10
    obs_curves = np.stack(
        [si_process(observed, obs_zero, beta, seed=s) for s in range(runs)]
    )
    sim_curves = np.stack(
        [si_process(simulated, sim_zero, beta, seed=s) for s in range(runs)]
    )

    print(f"\nSI epidemic (beta={beta}, {runs} runs), mean infected per timestamp:")
    print(f"{'t':>4s} {'observed':>10s} {'simulated':>10s}")
    for t in range(observed.num_timestamps):
        print(f"{t:4d} {obs_curves[:, t].mean():10.1f} {sim_curves[:, t].mean():10.1f}")

    final_gap = abs(obs_curves[:, -1].mean() - sim_curves[:, -1].mean())
    relative = final_gap / max(obs_curves[:, -1].mean(), 1.0)
    print(f"\nfinal attack-size gap: {final_gap:.1f} nodes ({relative:.1%} relative)")


if __name__ == "__main__":
    main()
