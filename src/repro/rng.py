"""Named deterministic RNG streams (a ``SeedSequence``-based registry).

Every component that needs randomness used to derive its generator with an
ad-hoc constant offset -- ``np.random.default_rng(seed + 23)`` and friends.
That scheme has two real failure modes:

* **collisions**: component A at ``seed=23`` with offset 0 consumes the very
  stream component B consumes at ``seed=0`` with offset 23, so two unrelated
  samplers silently share draws the moment seeds are reused across
  components (exactly what happens when one experiment seed configures the
  whole pipeline);
* **non-shardability**: an offset scheme gives one linear stream per
  component, so work split across workers either shares a stream (order
  dependent, non-deterministic under concurrency) or needs yet more ad-hoc
  offsets that can collide with sibling components.

This module replaces offsets with :class:`numpy.random.SeedSequence` spawn
keys.  A stream is addressed by the user seed plus a *path* of component
names (and optional integer indices); names are hashed to 32-bit words that
form the ``spawn_key``, so streams for different paths are statistically
independent for every seed, and a stream can be further
:meth:`~numpy.random.SeedSequence.spawn`-split into per-chunk children whose
draws do not depend on how many workers consume them.

Examples
--------
>>> from repro.rng import stream
>>> rng = stream(0, "tgae", "trainer")
>>> rng2 = stream(0, "tgae", "trainer")
>>> float(rng.random()) == float(rng2.random())
True
"""

from __future__ import annotations

import hashlib
from typing import List, Union

import numpy as np

__all__ = ["seed_sequence", "stream", "spawn_streams"]

PathPart = Union[str, int, np.integer]


def _key_word(part: PathPart) -> int:
    """One spawn-key word per path component.

    Non-negative integers (chunk indices, timestamps) are used directly and
    unmodified -- ``SeedSequence`` splits arbitrarily large words itself, so
    no lossy truncation ever aliases two distinct components.  Strings are
    hashed with SHA-256 (stable across processes and Python versions,
    unlike the salted builtin ``hash``) down to 32 bits.
    """
    if isinstance(part, (int, np.integer)):
        value = int(part)
        if value < 0:
            raise ValueError(f"integer stream-path components must be >= 0, got {value}")
        return value
    digest = hashlib.sha256(str(part).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def seed_sequence(seed: int, *path: PathPart) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` of stream ``path`` under ``seed``.

    ``path`` must be non-empty: the bare user seed (empty path) is reserved
    for whatever the caller owning the seed does with it directly.
    """
    if not path:
        raise ValueError("a stream path of at least one component is required")
    return np.random.SeedSequence(
        entropy=int(seed), spawn_key=tuple(_key_word(part) for part in path)
    )


def stream(seed: int, *path: PathPart) -> np.random.Generator:
    """A fresh :class:`~numpy.random.Generator` for stream ``path`` under ``seed``."""
    return np.random.default_rng(seed_sequence(seed, *path))


def spawn_streams(
    root: np.random.SeedSequence, count: int
) -> List[np.random.SeedSequence]:
    """``count`` child sequences of ``root``, one per independent work chunk.

    Children are derived purely from ``root`` and the child index, so the
    draws of chunk ``i`` are identical no matter how many workers the chunks
    are later distributed over -- the property the sharded generation
    engine's bit-reproducibility rests on.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return list(root.spawn(count))
