"""Benchmark harness regenerating every table and figure of Sec. V."""

from .figures import (
    FIGURE5_METRICS,
    log_series,
    render_tendency,
    tendency_fit_error,
    tendency_series,
)
from .harness import (
    BenchmarkRun,
    RunResult,
    default_tgae_config,
    method_registry,
    run_method,
    run_methods,
)
from .report import evaluation_report, render_report, report_headline
from .sensitivity import (
    SensitivityPoint,
    render_sensitivity,
    sweep_parameter,
)
from .tables import (
    ablation_table,
    dataset_table,
    format_table,
    format_value,
    motif_table,
    quality_table,
)
from .timing import (
    ScalabilityMeasurement,
    measure_point,
    render_sweep,
    scalability_methods,
    sweep,
)

__all__ = [
    "evaluation_report",
    "render_report",
    "report_headline",
    "sweep_parameter",
    "render_sensitivity",
    "SensitivityPoint",
    "run_method",
    "run_methods",
    "method_registry",
    "default_tgae_config",
    "RunResult",
    "BenchmarkRun",
    "dataset_table",
    "quality_table",
    "motif_table",
    "ablation_table",
    "format_table",
    "format_value",
    "tendency_series",
    "render_tendency",
    "tendency_fit_error",
    "log_series",
    "FIGURE5_METRICS",
    "measure_point",
    "sweep",
    "render_sweep",
    "scalability_methods",
    "ScalabilityMeasurement",
]
