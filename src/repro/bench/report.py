"""One-shot evaluation report: everything we can measure about a simulation.

The tables and figures of the paper each probe one axis; a user deciding
whether a generated graph is good enough wants all axes at once.
:func:`evaluation_report` runs the full measurement battery on one
(observed, generated) pair and returns a nested dict;
:func:`render_report` formats it as markdown (the artifact a data-sharing
review would attach).

Sections:

* **counts** -- n / m / T of both graphs;
* **statistics** -- the seven Table III statistics under f_avg and f_med
  (Eq. 10);
* **extended** -- clustering, assortativity, reciprocity, density relative
  errors on the final cumulative snapshot, plus degree-KS and spectral
  distance;
* **temporal** -- motif MMD (Eq. 1, Table VI), significance-profile cosine,
  burstiness gap;
* **utility** -- train-on-synthetic/test-on-real link-prediction AUC vs the
  train-on-real oracle.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.event_stream import burstiness, from_temporal_graph, inter_event_times
from ..graph.snapshot import cumulative_snapshots
from ..graph.temporal_graph import TemporalGraph
from ..metrics import (
    EXTENDED_STATISTIC_FUNCTIONS,
    compare_graphs,
    degree_ks_distance,
    motif_distribution,
    motif_mmd,
    motif_significance_profile,
    significance_similarity,
    spectral_distance,
    utility_report,
)

ReportDict = Dict[str, Dict[str, float]]


def evaluation_report(
    observed: TemporalGraph,
    generated: TemporalGraph,
    delta: int = 2,
    num_nulls: int = 8,
    seed: int = 0,
    include_utility: bool = True,
    include_significance: bool = True,
) -> ReportDict:
    """Run the full measurement battery on one simulation.

    ``include_utility`` / ``include_significance`` gate the two expensive
    sections (negative sampling, null ensembles) for quick looks.
    """
    report: ReportDict = {}
    report["counts"] = {
        "observed_nodes": float(observed.num_nodes),
        "observed_edges": float(observed.num_edges),
        "generated_nodes": float(generated.num_nodes),
        "generated_edges": float(generated.num_edges),
        "timestamps": float(observed.num_timestamps),
    }

    f_avg_scores = compare_graphs(observed, generated, reduction="mean")
    f_med_scores = compare_graphs(observed, generated, reduction="median")
    report["statistics_f_avg"] = dict(f_avg_scores)
    report["statistics_f_med"] = dict(f_med_scores)

    final_obs = cumulative_snapshots(observed)[-1]
    final_gen = cumulative_snapshots(generated)[-1]
    extended: Dict[str, float] = {}
    for name, func in EXTENDED_STATISTIC_FUNCTIONS.items():
        reference = func(final_obs)
        value = func(final_gen)
        extended[name] = (
            abs(reference - value) / abs(reference) if reference else abs(value)
        )
    extended["degree_ks"] = degree_ks_distance(final_obs, final_gen)
    extended["spectral_distance"] = spectral_distance(final_obs, final_gen)
    report["extended"] = extended

    temporal: Dict[str, float] = {}
    temporal["motif_mmd"] = motif_mmd(
        motif_distribution(observed, delta), motif_distribution(generated, delta)
    )
    obs_b = burstiness(
        inter_event_times(from_temporal_graph(observed, spread="uniform", seed=seed))
    )
    gen_b = burstiness(
        inter_event_times(from_temporal_graph(generated, spread="uniform", seed=seed))
    )
    temporal["burstiness_gap"] = abs(obs_b - gen_b)
    if include_significance:
        _, obs_profile = motif_significance_profile(
            observed, delta=delta, num_nulls=num_nulls, seed=seed
        )
        _, gen_profile = motif_significance_profile(
            generated, delta=delta, num_nulls=num_nulls, seed=seed
        )
        temporal["significance_cosine"] = significance_similarity(
            obs_profile, gen_profile
        )
    report["temporal"] = temporal

    if include_utility and observed.num_timestamps >= 2:
        utility = utility_report(observed, generated, seed=seed)
        report["utility"] = {
            f"{scorer}_{key}": value
            for scorer, row in utility.items()
            for key, value in row.items()
        }
    return report


def render_report(report: ReportDict, title: str = "Simulation report") -> str:
    """Format an :func:`evaluation_report` dict as markdown."""
    lines = [f"# {title}", ""]
    section_titles = {
        "counts": "Graph sizes",
        "statistics_f_avg": "Table III statistics — mean relative error (f_avg)",
        "statistics_f_med": "Table III statistics — median relative error (f_med)",
        "extended": "Extended structural statistics (relative error / distance)",
        "temporal": "Temporal attribute preservation",
        "utility": "Downstream utility (link-prediction AUC)",
    }
    for section, rows in report.items():
        lines.append(f"## {section_titles.get(section, section)}")
        lines.append("")
        lines.append("| metric | value |")
        lines.append("|---|---|")
        for metric, value in rows.items():
            if float(value).is_integer() and abs(value) < 1e15:
                rendered = f"{int(value)}"
            else:
                rendered = f"{value:.4g}"
            lines.append(f"| {metric} | {rendered} |")
        lines.append("")
    return "\n".join(lines)


def report_headline(report: ReportDict) -> Dict[str, float]:
    """The four numbers a reviewer checks first."""
    headline = {
        "mean_statistic_error": float(
            np.mean(list(report["statistics_f_avg"].values()))
        ),
        "motif_mmd": report["temporal"]["motif_mmd"],
    }
    if "significance_cosine" in report["temporal"]:
        headline["significance_cosine"] = report["temporal"]["significance_cosine"]
    if "utility" in report:
        headline["utility_gap"] = report["utility"]["common_neighbors_gap"]
    return headline
