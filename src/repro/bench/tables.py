"""Table builders reproducing the paper's quantitative tables.

* :func:`dataset_table`   -- Table II  (dataset statistics)
* :func:`quality_table`   -- Tables IV / V (f_med / f_avg over 7 statistics)
* :func:`motif_table`     -- Table VI  (temporal-motif MMD)
* :func:`ablation_table`  -- Table VII (TGAE variants)

Every builder returns plain nested dictionaries (method -> metric -> value)
plus a :func:`format_table` helper that prints rows in the paper's
scientific-notation style (``2.41E-3``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import TGAEConfig
from ..core.variants import VARIANTS
from ..datasets import dataset_statistics, load_dataset
from ..graph.temporal_graph import TemporalGraph
from ..metrics import compare_graphs, motif_distribution, motif_mmd, statistic_names
from .harness import default_tgae_config, run_method, run_methods


def format_value(value: float) -> str:
    """Paper-style scientific notation, e.g. ``2.41E-3`` / ``1.01E+0``."""
    if value == 0:
        return "0.00E+0"
    mantissa, exponent = f"{value:.2E}".split("E")
    return f"{mantissa}E{int(exponent):+d}"


def format_table(
    rows: Dict[str, Dict[str, float]],
    columns: Optional[Sequence[str]] = None,
    row_label: str = "Metric",
) -> str:
    """Align a metric-by-method dict into a printable table."""
    methods = columns if columns is not None else sorted({m for r in rows.values() for m in r})
    header = [row_label.ljust(16)] + [m.rjust(10) for m in methods]
    lines = ["".join(header)]
    for metric, per_method in rows.items():
        cells = [metric.ljust(16)]
        for method in methods:
            value = per_method.get(method)
            cells.append(("--" if value is None else format_value(value)).rjust(10))
        lines.append("".join(cells))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
def dataset_table(names: Sequence[str], scale: str = "small") -> Dict[str, Dict[str, int]]:
    """Dataset statistics (Table II) at the requested scale."""
    return {name: dataset_statistics(load_dataset(name, scale=scale)) for name in names}


# ----------------------------------------------------------------------
# Tables IV / V
# ----------------------------------------------------------------------
def quality_table(
    observed: TemporalGraph,
    methods: Optional[List[str]] = None,
    reduction: str = "median",
    tgae_config: Optional[TGAEConfig] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """f_med (Table IV) or f_avg (Table V) scores: metric -> method -> score."""
    run = run_methods(observed, methods=methods, tgae_config=tgae_config, seed=seed)
    red = "median" if reduction == "median" else "mean"
    table: Dict[str, Dict[str, float]] = {name: {} for name in statistic_names()}
    for method, result in run.results.items():
        scores = compare_graphs(observed, result.generated, reduction=red)
        for metric, value in scores.items():
            table[metric][method] = value
    return table


# ----------------------------------------------------------------------
# Table VI
# ----------------------------------------------------------------------
def motif_table(
    observed: TemporalGraph,
    methods: Optional[List[str]] = None,
    delta: int = 3,
    sigma: float = 1.0,
    tgae_config: Optional[TGAEConfig] = None,
    seed: int = 0,
    max_instances: Optional[int] = 500_000,
) -> Dict[str, float]:
    """Temporal-motif MMD per method (one Table VI row)."""
    run = run_methods(observed, methods=methods, tgae_config=tgae_config, seed=seed)
    reference = motif_distribution(observed, delta, max_instances=max_instances)
    out: Dict[str, float] = {}
    for method, result in run.results.items():
        generated = motif_distribution(result.generated, delta, max_instances=max_instances)
        out[method] = motif_mmd(reference, generated, sigma=sigma)
    return out


# ----------------------------------------------------------------------
# Table VII
# ----------------------------------------------------------------------
def ablation_table(
    observed: TemporalGraph,
    config: Optional[TGAEConfig] = None,
    delta: int = 3,
    seed: int = 0,
    max_instances: Optional[int] = 500_000,
) -> Dict[str, Dict[str, float]]:
    """Degree + Motif scores for TGAE and its four variants (Table VII)."""
    config = config if config is not None else default_tgae_config(observed)
    reference = motif_distribution(observed, delta, max_instances=max_instances)
    table: Dict[str, Dict[str, float]] = {"degree": {}, "motif": {}}
    for name, factory in VARIANTS.items():
        result = run_method(lambda: factory(config), observed, seed=seed)
        scores = compare_graphs(observed, result.generated, statistics=["mean_degree"])
        table["degree"][name] = scores["mean_degree"]
        generated = motif_distribution(result.generated, delta, max_instances=max_instances)
        table["motif"][name] = motif_mmd(reference, generated)
    return table
