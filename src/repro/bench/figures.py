"""Figure builders: temporal-tendency curves (Fig. 5).

Figure 5 plots ``log(statistic)`` of the cumulative snapshot at every
timestamp for the original DBLP graph and each generator's output.  The
builder returns the raw per-timestamp series (method -> metric -> array) and
a text renderer prints them as aligned columns -- the same information the
paper plots, consumable without matplotlib.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import TGAEConfig
from ..graph.temporal_graph import TemporalGraph
from ..metrics import statistic_time_series
from .harness import run_methods

#: The six panels of Figure 5 (mean degree is omitted there).
FIGURE5_METRICS: List[str] = [
    "lcc",
    "wedge_count",
    "claw_count",
    "triangle_count",
    "ple",
    "n_components",
]


def tendency_series(
    observed: TemporalGraph,
    methods: Optional[List[str]] = None,
    metrics: Optional[Sequence[str]] = None,
    tgae_config: Optional[TGAEConfig] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Per-timestamp statistic series for the original graph and each method.

    Returns ``{"Origin": {metric: series}, method: {metric: series}, ...}``.
    """
    metric_names = list(metrics) if metrics is not None else list(FIGURE5_METRICS)
    out: Dict[str, Dict[str, np.ndarray]] = {
        "Origin": statistic_time_series(observed, metric_names)
    }
    run = run_methods(observed, methods=methods, tgae_config=tgae_config, seed=seed)
    for method, result in run.results.items():
        out[method] = statistic_time_series(result.generated, metric_names)
    return out


def log_series(series: np.ndarray) -> np.ndarray:
    """``log(statistic)`` with zeros mapped to 0 (the plot's floor)."""
    out = np.zeros_like(series, dtype=np.float64)
    positive = series > 0
    out[positive] = np.log(series[positive])
    return out


def render_tendency(
    data: Dict[str, Dict[str, np.ndarray]],
    metric: str,
    use_log: bool = True,
) -> str:
    """Render one Figure 5 panel as an aligned text table (rows = timestamps)."""
    methods = list(data)
    first = data[methods[0]][metric]
    lines = ["t".rjust(4) + "".join(m.rjust(12) for m in methods)]
    for timestamp in range(first.size):
        cells = [f"{timestamp}".rjust(4)]
        for method in methods:
            value = data[method][metric][timestamp]
            shown = log_series(np.asarray([value]))[0] if use_log else value
            cells.append(f"{shown:12.3f}")
        lines.append("".join(cells))
    return "\n".join(lines)


def tendency_fit_error(
    data: Dict[str, Dict[str, np.ndarray]], metric: str
) -> Dict[str, float]:
    """Mean absolute log-space deviation from the original curve per method.

    A scalar summary of "how well does the curve fit the blue Origin curve"
    used by tests and EXPERIMENTS.md to rank methods on Figure 5.
    """
    origin = log_series(data["Origin"][metric])
    return {
        method: float(np.mean(np.abs(log_series(series[metric]) - origin)))
        for method, series in data.items()
        if method != "Origin"
    }
