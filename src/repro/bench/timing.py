"""Scalability measurements (Figure 6): inference time and peak memory.

Three sweeps (node count, timestamp count, edge density) over uniform random
temporal graphs; each method is fitted once and its *inference* (generation)
time plus peak traced memory are recorded, mirroring the paper's first and
second Figure 6 rows.  Memory is measured with :mod:`tracemalloc` -- the CPU
analogue of the paper's GPU memory probe (see DESIGN.md).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..base import TemporalGraphGenerator
from ..core import TGAEConfig, fast_config
from ..core.variants import VARIANTS
from ..datasets.scalability import ScalabilityPoint, make_scalability_graph
from ..baselines import BASELINES


@dataclass
class ScalabilityMeasurement:
    """One (method, grid-point) measurement of Figure 6."""

    method: str
    label: str
    fit_seconds: float
    inference_seconds: float
    peak_memory_bytes: int

    @property
    def log_time(self) -> float:
        """``log(seconds)`` as plotted on the Figure 6 y-axis."""
        return float(np.log(max(self.inference_seconds, 1e-9)))

    @property
    def log_memory_mib(self) -> float:
        """``log(MiB)`` as plotted on the Figure 6 second row."""
        mib = max(self.peak_memory_bytes / (1024.0 * 1024.0), 1e-6)
        return float(np.log(mib))


def measure_point(
    factory: Callable[[], TemporalGraphGenerator],
    point: ScalabilityPoint,
    seed: int = 0,
) -> ScalabilityMeasurement:
    """Fit once, then measure generation time and peak traced memory."""
    graph = make_scalability_graph(point)
    generator = factory()
    start = time.perf_counter()
    generator.fit(graph)
    fit_seconds = time.perf_counter() - start
    tracemalloc.start()
    start = time.perf_counter()
    generator.generate(seed=seed)
    inference_seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return ScalabilityMeasurement(
        method=getattr(generator, "name", type(generator).__name__),
        label=point.label,
        fit_seconds=fit_seconds,
        inference_seconds=inference_seconds,
        peak_memory_bytes=peak,
    )


def scalability_methods(
    tgae_config: Optional[TGAEConfig] = None,
) -> Dict[str, Callable[[], TemporalGraphGenerator]]:
    """The Figure 6 method set (TGAE + all learning-based baselines + E-R/B-A)."""
    config = tgae_config if tgae_config is not None else fast_config(epochs=3)
    methods: Dict[str, Callable[[], TemporalGraphGenerator]] = {
        "TGAE": lambda: VARIANTS["TGAE"](config)
    }
    methods.update(BASELINES)
    return methods


def sweep(
    points: List[ScalabilityPoint],
    methods: Optional[Dict[str, Callable[[], TemporalGraphGenerator]]] = None,
    seed: int = 0,
) -> Dict[str, List[ScalabilityMeasurement]]:
    """Measure every method at every grid point of one Figure 6 column."""
    methods = methods if methods is not None else scalability_methods()
    out: Dict[str, List[ScalabilityMeasurement]] = {name: [] for name in methods}
    for point in points:
        for name, factory in methods.items():
            out[name].append(measure_point(factory, point, seed=seed))
    return out


def render_sweep(results: Dict[str, List[ScalabilityMeasurement]], quantity: str = "time") -> str:
    """Render one sweep as an aligned table (rows = grid labels)."""
    methods = list(results)
    labels = [m.label for m in results[methods[0]]]
    lines = ["point".ljust(14) + "".join(name.rjust(12) for name in methods)]
    for i, label in enumerate(labels):
        cells = [label.ljust(14)]
        for name in methods:
            meas = results[name][i]
            value = meas.log_time if quantity == "time" else meas.log_memory_mib
            cells.append(f"{value:12.2f}")
        lines.append("".join(cells))
    return "\n".join(lines)
