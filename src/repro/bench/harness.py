"""Experiment harness: run any generator on any dataset and measure it.

The harness treats TGAE, its ablation variants, and the ten baselines
uniformly through the :class:`~repro.base.TemporalGraphGenerator` API, and
measures wall-clock fit/generation time plus peak traced memory.

A note on OOM entries: the paper reports out-of-memory failures for several
baselines on the larger datasets (32 GB V100).  At the reduced scales this
CPU reproduction uses, every method fits in memory, so the tables run all
methods and the *memory growth* responsible for those OOMs is documented by
the Figure 6 scalability benchmark instead (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..base import TemporalGraphGenerator
from ..baselines import BASELINES, EXTRA_BASELINES
from ..core import TGAEConfig, fast_config
from ..core.variants import VARIANTS
from ..errors import ConfigError
from ..graph.temporal_graph import TemporalGraph
from ..graph.validation import ValidationReport, validate_generated

MethodFactory = Callable[[], TemporalGraphGenerator]


def default_tgae_config(graph: TemporalGraph) -> TGAEConfig:
    """A TGAE configuration sized sensibly for the given graph.

    Training cost per epoch is dominated by ``n_s`` ego-graphs, so epochs
    scale with the edge count (more structure to absorb) within a budget
    that keeps CPU benchmark runs in seconds.
    """
    return fast_config(
        epochs=min(150, max(40, graph.num_edges // 10)),
        num_initial_nodes=min(64, max(16, graph.num_nodes // 4)),
        learning_rate=1e-2,
    )


def method_registry(
    tgae_config: Optional[TGAEConfig] = None, include_extras: bool = False
) -> Dict[str, MethodFactory]:
    """All methods of the paper's tables, TGAE first (column order).

    ``include_extras`` appends the related-work generators the paper
    discusses but does not tabulate (RTGEN, MTM, TED); the paper tables keep
    the default column set.
    """
    registry: Dict[str, MethodFactory] = {
        "TGAE": lambda: VARIANTS["TGAE"](tgae_config),
    }
    for name, factory in BASELINES.items():
        registry[name] = factory
    if include_extras:
        for name, factory in EXTRA_BASELINES.items():
            registry[name] = factory
    return registry


@dataclass
class RunResult:
    """Timings, memory and the generated graph for one (method, dataset) run."""

    method: str
    fit_seconds: float
    generate_seconds: float
    peak_memory_bytes: int
    generated: TemporalGraph
    validation: Optional[ValidationReport] = None
    error: Optional[str] = None

    @property
    def total_seconds(self) -> float:
        return self.fit_seconds + self.generate_seconds


@dataclass
class BenchmarkRun:
    """Results of several methods on one observed graph."""

    observed: TemporalGraph
    results: Dict[str, RunResult] = field(default_factory=dict)


def run_method(
    factory: MethodFactory,
    observed: TemporalGraph,
    seed: int = 0,
    trace_memory: bool = True,
) -> RunResult:
    """Fit + generate one method, measuring time and peak traced memory."""
    generator = factory()
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    generator.fit(observed)
    fit_seconds = time.perf_counter() - start
    start = time.perf_counter()
    generated = generator.generate(seed=seed)
    generate_seconds = time.perf_counter() - start
    peak = 0
    if trace_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return RunResult(
        method=getattr(generator, "name", type(generator).__name__),
        fit_seconds=fit_seconds,
        generate_seconds=generate_seconds,
        peak_memory_bytes=peak,
        generated=generated,
        validation=validate_generated(observed, generated),
    )


def run_methods(
    observed: TemporalGraph,
    methods: Optional[List[str]] = None,
    tgae_config: Optional[TGAEConfig] = None,
    seed: int = 0,
    trace_memory: bool = False,
) -> BenchmarkRun:
    """Run a set of methods (by registry name) on one observed graph."""
    registry = method_registry(
        tgae_config if tgae_config is not None else default_tgae_config(observed),
        include_extras=True,
    )
    # Default to the paper's column set; the extras are opt-in by name.
    names = (
        methods
        if methods is not None
        else ["TGAE"] + list(BASELINES)
    )
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise ConfigError(f"unknown methods {unknown}; options: {list(registry)}")
    run = BenchmarkRun(observed=observed)
    for name in names:
        run.results[name] = run_method(
            registry[name], observed, seed=seed, trace_memory=trace_memory
        )
    return run
