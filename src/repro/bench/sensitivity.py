"""Parameter-sensitivity experiments (Sec. V mentions these alongside the
ablation study).

Three one-dimensional sweeps around a base configuration:

* ``n_s``  -- the number of sampled initial nodes (the paper's main
  quality/efficiency trade-off knob, Eq. 7);
* ``k``    -- the ego-graph radius (depth of stacked TGAT layers);
* ``th``   -- the neighbour truncation threshold of Alg. 1.

Each sweep fits a fresh TGAE per value and reports quality (mean relative
error averaged over the seven statistics) and fit time, exposing the
trade-off curves the paper discusses.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core import TGAEConfig, TGAEGenerator
from ..graph.temporal_graph import TemporalGraph
from ..metrics import compare_graphs


@dataclass
class SensitivityPoint:
    """Quality/cost measurement for one hyper-parameter value."""

    parameter: str
    value: int
    mean_error: float
    per_metric: Dict[str, float]
    fit_seconds: float
    generate_seconds: float


def _evaluate(config: TGAEConfig, graph: TemporalGraph, seed: int) -> SensitivityPoint:
    generator = TGAEGenerator(config)
    start = time.perf_counter()
    generator.fit(graph)
    fit_seconds = time.perf_counter() - start
    start = time.perf_counter()
    generated = generator.generate(seed=seed)
    generate_seconds = time.perf_counter() - start
    scores = compare_graphs(graph, generated, reduction="mean")
    return SensitivityPoint(
        parameter="",
        value=0,
        mean_error=float(np.mean(list(scores.values()))),
        per_metric=scores,
        fit_seconds=fit_seconds,
        generate_seconds=generate_seconds,
    )


def sweep_parameter(
    graph: TemporalGraph,
    base_config: TGAEConfig,
    parameter: str,
    values: Sequence[int],
    seed: int = 0,
) -> List[SensitivityPoint]:
    """Fit/evaluate TGAE for each value of ``parameter``.

    ``parameter`` must be a field of :class:`TGAEConfig`
    (e.g. ``"num_initial_nodes"``, ``"radius"``, ``"neighbor_threshold"``).
    """
    field_names = {f.name for f in dataclasses.fields(TGAEConfig)}
    if parameter not in field_names:
        raise KeyError(f"{parameter!r} is not a TGAEConfig field")
    points: List[SensitivityPoint] = []
    for value in values:
        config = dataclasses.replace(base_config, **{parameter: int(value)})
        point = _evaluate(config, graph, seed)
        point.parameter = parameter
        point.value = int(value)
        points.append(point)
    return points


def render_sensitivity(points: List[SensitivityPoint]) -> str:
    """Aligned text table: value, quality, and cost columns."""
    if not points:
        return "(empty sweep)"
    header = (
        f"{points[0].parameter:>20s} {'mean err':>10s} {'fit s':>8s} {'gen s':>8s}"
    )
    lines = [header]
    for p in points:
        lines.append(
            f"{p.value:>20d} {p.mean_error:>10.4f} {p.fit_seconds:>8.2f} "
            f"{p.generate_seconds:>8.2f}"
        )
    return "\n".join(lines)
