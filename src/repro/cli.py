"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``datasets``
    Print Table II (dataset statistics) at a chosen scale.
``fit``
    Train TGAE on a dataset (or an edge-list file) and save the generator;
    ``--resume`` continues a saved (format-v2) checkpoint bit-identically
    instead of starting over.
``update``
    Append new observed edges to a saved generator and warm-start training
    from its current weights/optimizer state (online ingestion).
``generate``
    Load a saved generator, sample a graph, write it as an edge list.
``evaluate``
    Compare an observed and a generated edge list on all metrics.
``table``
    Regenerate one of the paper's tables (4, 5, 6 or 7) on one dataset.
``sensitivity``
    Run a hyper-parameter sweep (Sec. V parameter-sensitivity experiment).
``stats``
    Print the full statistic report for one graph: Table III statistics on
    the final cumulative snapshot, the extended structural statistics, and
    the temporal signature.
``convert``
    Bin a continuous-time event stream (``src dst time`` with float times)
    into a ``T``-snapshot edge list, or smear a snapshot edge list back into
    an event stream.
``report``
    Full markdown evaluation report (statistics, extended, temporal,
    downstream utility) for an observed/generated edge-list pair.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench import (
    ablation_table,
    dataset_table,
    evaluation_report,
    format_table,
    format_value,
    motif_table,
    quality_table,
    render_report,
    render_sensitivity,
    sweep_parameter,
)
from .core import TGAEConfig, TGAEGenerator, fast_config, load_generator, save_generator
from .datasets import available_datasets, load_dataset
from .graph import (
    cumulative_snapshots,
    from_temporal_graph,
    load_edge_list,
    load_event_stream,
    save_edge_list,
    save_event_stream,
)
from .metrics import (
    EXTENDED_STATISTIC_FUNCTIONS,
    compare_graphs,
    compute_all_statistics,
    motif_distribution,
    motif_mmd,
    streaming_evaluate,
    temporal_signature,
)


def _load_graph(args: argparse.Namespace):
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale)
    if args.input:
        return load_edge_list(args.input)
    raise SystemExit("either --dataset or --input is required")


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=available_datasets(), help="registry dataset")
    parser.add_argument("--scale", default="small", choices=["small", "medium", "paper"])
    parser.add_argument("--input", help="edge-list file (src dst t per line)")


def _add_config(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epochs", type=int, default=120)
    parser.add_argument("--radius", type=int, default=2)
    parser.add_argument("--threshold", type=int, default=10)
    parser.add_argument("--initial-nodes", type=int, default=64)
    parser.add_argument("--learning-rate", type=float, default=1e-2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--candidate-limit",
        type=int,
        default=0,
        help="candidate-set size C for the streaming sampled-softmax engine "
        "(0 = exact dense decoder; positive values keep fit+generate at "
        "O(E + n*C) memory for large graphs)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count for sharded training and generation (1 = sequential; "
        "output is bit-identical for every worker count)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="centre rows per generation chunk (default: --initial-nodes)",
    )
    parser.add_argument(
        "--train-shard-size",
        type=int,
        default=None,
        help="centre rows per data-parallel training shard (default: "
        "--initial-nodes / 4; the partitioning never depends on --workers, "
        "so training is bit-identical for every worker count)",
    )
    parser.add_argument(
        "--checkpoint-attention",
        action="store_true",
        help="activation checkpointing: recompute attention activations in "
        "backward, cutting training peak memory without changing the loss "
        "trajectory by a single bit",
    )
    parser.add_argument(
        "--no-shm-dispatch",
        dest="shm_dispatch",
        action="store_false",
        help="disable shared-memory worker dispatch and ship pickled "
        "payloads instead (shm is on by default with --workers > 1: "
        "parameters and graph CSR live in shared segments, task messages "
        "are O(1) in model size, results are bit-identical either way)",
    )
    parser.add_argument(
        "--no-embed-cache",
        dest="embed_cache",
        action="store_false",
        help="disable the versioned inference embedding cache (on by "
        "default: repeat generate/score calls against an unchanged model "
        "reuse cached encoder embeddings and run decode-only; outputs are "
        "bit-identical either way)",
    )
    parser.add_argument(
        "--dtype",
        default="float32",
        choices=["float32", "float64"],
        help="floating-point policy for parameters, activations and shm "
        "segments (float32 = fast production default; float64 = the "
        "bit-reproducible golden path)",
    )
    parser.add_argument(
        "--max-shard-retries",
        type=int,
        default=2,
        help="in-rung re-dispatches of a shard that failed transiently "
        "(OSError/pickling/worker crash) before the pool degrades one rung "
        "down the shm->pickle->thread->sequential ladder; retried shards "
        "are bit-identical (0 disables retries)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-shard wall-clock budget in seconds; a straggler past it "
        "is re-dispatched (and, if it finishes anyway, bit-compared "
        "against its replacement). default: no timeout",
    )


def _config_from(args: argparse.Namespace) -> TGAEConfig:
    return fast_config(
        epochs=args.epochs,
        radius=args.radius,
        neighbor_threshold=args.threshold,
        num_initial_nodes=args.initial_nodes,
        learning_rate=args.learning_rate,
        seed=args.seed,
        candidate_limit=args.candidate_limit,
        workers=args.workers,
        chunk_size=args.chunk_size,
        train_shard_size=getattr(args, "train_shard_size", None),
        shm_dispatch=getattr(args, "shm_dispatch", True),
        embed_cache=getattr(args, "embed_cache", True),
        checkpoint_attention=getattr(args, "checkpoint_attention", False),
        dtype=getattr(args, "dtype", "float32"),
        max_shard_retries=getattr(args, "max_shard_retries", 2),
        shard_timeout=getattr(args, "shard_timeout", None),
    )


def cmd_datasets(args: argparse.Namespace) -> int:
    table = dataset_table(available_datasets(), scale=args.scale)
    print(f"{'dataset':12s} {'nodes':>9s} {'edges':>9s} {'timestamps':>11s}")
    for name, stats in table.items():
        print(f"{name:12s} {stats['nodes']:9d} {stats['edges']:9d} {stats['timestamps']:11d}")
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    if args.resume:
        if args.dataset or args.input:
            raise SystemExit(
                "--resume continues training on the checkpoint's stored graph; "
                "use the `update` command to append new edges"
            )
        generator = load_generator(args.resume)
        completed = generator.train_state.epoch if generator.train_state else 0
        cold = " (weights-only checkpoint: cold optimizer)" if completed == 0 else ""
        print(
            f"resuming {args.resume}: observed {generator.observed}, "
            f"{completed} epochs completed{cold}"
        )
        generator.update(
            epochs=args.epochs,
            verbose=args.verbose,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.model if args.checkpoint_every else None,
        )
    else:
        graph = _load_graph(args)
        print(f"observed: {graph}")
        generator = TGAEGenerator(_config_from(args)).fit(
            graph,
            verbose=args.verbose,
            track_memory=args.verbose,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.model if args.checkpoint_every else None,
        )
    history = generator.history
    losses = history.losses
    print(f"trained {len(losses)} epochs: loss {losses[0]:.3f} -> {losses[-1]:.3f}")
    print(
        f"wall-clock {history.total_seconds:.2f}s "
        f"({history.total_seconds / len(losses):.2f}s/epoch)"
        + (
            f", peak traced memory {history.peak_memory / 1e6:.1f} MB"
            if history.peak_memory
            else ""
        )
    )
    save_generator(generator, args.model)
    print(f"saved model to {args.model}")
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    from .graph import load_edge_list as _load_raw

    generator = load_generator(args.model)
    observed = generator.observed
    print(f"loaded {args.model}: observed {observed}")
    new_edges = None
    if args.edges:
        # Raw ids: the file must address the checkpoint's node/timestamp
        # universe directly (no reindexing -- appends cannot renumber).
        batch = _load_raw(
            args.edges,
            num_nodes=observed.num_nodes,
            num_timestamps=observed.num_timestamps,
            reindex=False,
        )
        print(f"appending {batch.num_edges} edges from {args.edges}")
        new_edges = batch
    generator.update(new_edges, epochs=args.epochs, verbose=args.verbose)
    losses = generator.history.losses
    if losses:
        print(f"trained {len(losses)} epochs: loss {losses[0]:.3f} -> {losses[-1]:.3f}")
    output = args.output or args.model
    save_generator(generator, output)
    print(f"saved model to {output}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    import dataclasses

    generator = load_generator(args.model)
    if not getattr(args, "shm_dispatch", True):
        generator.config = dataclasses.replace(generator.config, shm_dispatch=False)
    if not getattr(args, "embed_cache", True):
        generator.config = dataclasses.replace(generator.config, embed_cache=False)
    workers = args.workers if args.workers is not None else generator.config.workers
    if workers > 1:
        # An explicit pool engages the persistent dispatch path (shared
        # segments by default) instead of a throwaway per-call executor.
        with generator.worker_pool(workers=workers):
            generated = generator.generate(
                seed=args.seed, workers=workers, chunk_size=args.chunk_size
            )
    else:
        generated = generator.generate(
            seed=args.seed, workers=args.workers, chunk_size=args.chunk_size
        )
    save_edge_list(generated, args.output)
    print(f"wrote {generated} to {args.output}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    observed = load_edge_list(args.observed)
    generated = load_edge_list(args.generated)
    if args.streaming:
        scores = streaming_evaluate(observed, generated, reduction=args.reduction)
    else:
        scores = compare_graphs(observed, generated, reduction=args.reduction)
    print(f"{'statistic':16s} {'score':>10s}")
    for metric, value in scores.items():
        print(f"{metric:16s} {format_value(value):>10s}")
    mmd = motif_mmd(
        motif_distribution(observed, args.delta),
        motif_distribution(generated, args.delta),
    )
    print(f"{'motif_mmd':16s} {format_value(mmd):>10s}")
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    config = _config_from(args)
    if args.number in (4, 5):
        reduction = "median" if args.number == 4 else "mean"
        table = quality_table(graph, reduction=reduction, tgae_config=config)
        print(format_table(table))
    elif args.number == 6:
        scores = motif_table(graph, delta=args.delta, tgae_config=config)
        for method, value in sorted(scores.items(), key=lambda kv: kv[1]):
            print(f"{method:10s} {format_value(value)}")
    elif args.number == 7:
        table = ablation_table(graph, config=config, delta=args.delta)
        print(format_table(table))
    else:
        raise SystemExit("table number must be 4, 5, 6, or 7")
    return 0


def cmd_sensitivity(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    config = _config_from(args)
    points = sweep_parameter(graph, config, args.parameter, args.values, seed=args.seed)
    print(render_sensitivity(points))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    final = cumulative_snapshots(graph)[-1]
    print(f"graph: n={graph.num_nodes} m={graph.num_edges} T={graph.num_timestamps}")
    print("\nTable III statistics (final cumulative snapshot)")
    for metric, value in compute_all_statistics(final).items():
        print(f"  {metric:20s} {format_value(value):>12s}")
    print("\nextended structural statistics")
    for metric, func in EXTENDED_STATISTIC_FUNCTIONS.items():
        print(f"  {metric:20s} {format_value(func(final)):>12s}")
    print("\ntemporal signature")
    for metric, value in temporal_signature(graph).items():
        print(f"  {metric:20s} {format_value(value):>12s}")
    return 0


def _align_timestamps(observed, generated):
    """Give both graphs the same T (reindexing is per-file and may differ)."""
    from .graph import TemporalGraph

    T = max(observed.num_timestamps, generated.num_timestamps)
    rebuild = lambda g: TemporalGraph(
        g.num_nodes, g.src, g.dst, g.t, num_timestamps=T, validate=False
    )
    return rebuild(observed), rebuild(generated)


def cmd_report(args: argparse.Namespace) -> int:
    observed = load_edge_list(args.observed)
    generated = load_edge_list(args.generated)
    observed, generated = _align_timestamps(observed, generated)
    report = evaluation_report(
        observed,
        generated,
        delta=args.delta,
        include_utility=not args.fast,
        include_significance=not args.fast,
    )
    text = render_report(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    if args.to == "snapshots":
        stream = load_event_stream(args.input)
        graph = stream.to_temporal_graph(args.bins, policy=args.policy)
        save_edge_list(graph, args.output)
        print(f"wrote {graph} to {args.output}")
    else:
        graph = load_edge_list(args.input)
        stream = from_temporal_graph(
            graph, bin_width=args.bin_width, spread=args.spread, seed=args.seed
        )
        save_event_stream(stream, args.output)
        print(f"wrote {stream} to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TGAE temporal graph simulation (ICDE 2025 repro)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="print Table II dataset statistics")
    p.add_argument("--scale", default="small", choices=["small", "medium", "paper"])
    p.set_defaults(fn=cmd_datasets)

    p = sub.add_parser("fit", help="train TGAE and save the generator")
    _add_graph_source(p)
    _add_config(p)
    p.add_argument("--model", required=True, help="output .npz path")
    p.add_argument(
        "--resume",
        help="continue training from this saved checkpoint instead of "
        "starting over: runs --epochs more epochs on its stored graph, "
        "bit-identical to an uninterrupted run (format-v2 checkpoints; "
        "v1 resumes weights-only with a cold optimizer)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="crash-safe autosave cadence: atomically write the --model "
        "checkpoint every N completed epochs, so an interrupted fit can be "
        "continued bit-identically with --resume",
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="print per-epoch loss/grad-norm/wall-clock/peak-memory lines",
    )
    p.set_defaults(fn=cmd_fit)

    p = sub.add_parser(
        "update",
        help="append new observed edges to a saved generator and warm-start "
        "training from its current weights/optimizer state",
    )
    p.add_argument("--model", required=True, help="input .npz checkpoint")
    p.add_argument(
        "--edges",
        help="edge-list file (raw `src dst t` in the checkpoint's id "
        "universe, no reindexing); omit for a pure training resume",
    )
    p.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="warm-start epochs to run (default: the saved config's epochs)",
    )
    p.add_argument("--output", help="output .npz path (default: overwrite --model)")
    p.add_argument(
        "--verbose",
        action="store_true",
        help="print per-epoch loss/grad-norm/wall-clock lines",
    )
    p.set_defaults(fn=cmd_update)

    p = sub.add_parser("generate", help="sample a graph from a saved generator")
    p.add_argument("--model", required=True)
    p.add_argument("--output", required=True, help="output edge-list path")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the saved config's worker count for this generation "
        "(output is bit-identical for every worker count)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="override the saved config's centre rows per generation chunk "
        "(changes the chunk partitioning and therefore the draws)",
    )
    p.add_argument(
        "--no-shm-dispatch",
        dest="shm_dispatch",
        action="store_false",
        help="disable shared-memory worker dispatch for this generation "
        "(see `fit --no-shm-dispatch`)",
    )
    p.add_argument(
        "--no-embed-cache",
        dest="embed_cache",
        action="store_false",
        help="disable the versioned inference embedding cache for this "
        "generation (see `fit --no-embed-cache`)",
    )
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("evaluate", help="compare observed vs generated edge lists")
    p.add_argument("--observed", required=True)
    p.add_argument("--generated", required=True)
    p.add_argument("--reduction", default="mean", choices=["mean", "median"])
    p.add_argument("--delta", type=int, default=3)
    p.add_argument(
        "--streaming",
        action="store_true",
        help="evaluate one cumulative snapshot at a time (O(E) peak memory "
        "instead of O(T*E); scores are bit-identical to the default path)",
    )
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("table", help="regenerate a paper table on one dataset")
    p.add_argument("number", type=int, choices=[4, 5, 6, 7])
    _add_graph_source(p)
    _add_config(p)
    p.add_argument("--delta", type=int, default=2)
    p.set_defaults(fn=cmd_table)

    p = sub.add_parser("sensitivity", help="hyper-parameter sensitivity sweep")
    _add_graph_source(p)
    _add_config(p)
    p.add_argument("--parameter", default="num_initial_nodes")
    p.add_argument("--values", type=int, nargs="+", default=[16, 32, 64])
    p.set_defaults(fn=cmd_sensitivity)

    p = sub.add_parser("stats", help="print the full statistic report for one graph")
    _add_graph_source(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("report", help="full markdown evaluation report for a simulation")
    p.add_argument("--observed", required=True)
    p.add_argument("--generated", required=True)
    p.add_argument("--output", help="write markdown here instead of stdout")
    p.add_argument("--delta", type=int, default=2)
    p.add_argument("--fast", action="store_true",
                   help="skip the utility and significance sections")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("convert", help="convert between event streams and snapshots")
    p.add_argument("--to", required=True, choices=["snapshots", "events"])
    p.add_argument("--input", required=True)
    p.add_argument("--output", required=True)
    p.add_argument("--bins", type=int, default=16, help="T for --to snapshots")
    p.add_argument(
        "--policy", default="equal_width", choices=["equal_width", "equal_frequency"]
    )
    p.add_argument("--bin-width", type=float, default=1.0, help="for --to events")
    p.add_argument("--spread", default="uniform", choices=["uniform", "start"])
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_convert)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
