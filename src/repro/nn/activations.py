"""Activation-function modules wrapping the tensor-level primitives."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from .module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky ReLU; the paper uses a negative slope of 0.2 in Eq. 5."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)
