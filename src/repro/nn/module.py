"""Module base class: parameter registration, traversal, and (de)serialisation.

A deliberately small re-creation of ``torch.nn.Module`` with the features the
repro actually uses: automatic discovery of :class:`Parameter` attributes and
sub-modules, ``train``/``eval`` mode flags, ``state_dict`` round-tripping, and
named parameter iteration for optimizers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..autograd import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable model parameter.

    Floating input arrays keep their dtype (a ``float32`` parameter stays
    ``float32``); anything else converts to ``float64``.  The session dtype
    policy is applied by :meth:`Module.to_dtype` after construction, so
    initialiser RNG draws are identical under every policy; construction is
    therefore exempt from :func:`repro.autograd.dtype_audit` (the post-cast
    dtype is what the policy guarantees, and tests assert it directly).
    """

    _dtype_audit_exempt = True

    def __init__(self, data) -> None:
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = np.asarray(arr, dtype=np.float64)
        super().__init__(arr, requires_grad=True)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically by :meth:`parameters` and
    :meth:`named_parameters`.
    """

    def __init__(self) -> None:
        self.training: bool = True

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs for this module tree."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module tree."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter of this module tree to ``dtype`` in place.

        The dtype-policy entry point: parameters are always *initialised* at
        float64 (so RNG draws never depend on the policy) and then cast once
        here.  Casting to the dtype a parameter already has is a no-op
        (``copy=False``), which keeps the float64 golden path bit-identical.
        """
        target = np.dtype(dtype)
        for param in self.parameters():
            param.data = param.data.astype(target, copy=False)
            if param.grad is not None:
                param.grad = param.grad.astype(target, copy=False)
        return self

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Gradient utilities
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values previously produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name!r}: shape {value.shape} != expected {param.data.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
