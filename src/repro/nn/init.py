"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that every
model in the repro is fully deterministic under a seed -- a requirement for
reproducible benchmark tables.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialisation."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) normal initialisation."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, negative_slope: float = 0.0) -> np.ndarray:
    """He et al. (2015) uniform initialisation for (leaky-)ReLU networks."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    limit = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Zero-mean Gaussian initialisation."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
