"""Module containers: Sequential and ModuleList."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from ..autograd import Tensor
from .module import Module


class Sequential(Module):
    """Apply child modules in order, feeding each output to the next."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers: List[Module] = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def append(self, module: Module) -> "Sequential":
        self.layers.append(module)
        return self


class ModuleList(Module):
    """A list of sub-modules that registers their parameters."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self.items: List[Module] = list(modules)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise NotImplementedError("ModuleList is a container; call its items directly")

    def __iter__(self) -> Iterator[Module]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]

    def append(self, module: Module) -> "ModuleList":
        self.items.append(module)
        return self
