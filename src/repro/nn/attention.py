"""Temporal graph attention (TGAT) layers -- Eqs. 3-5 of the paper.

The layer operates on a *bipartite computation graph* (Fig. 4): a set of
source rows, a set of target rows, and an edge list connecting them.  For
every edge ``(s, d)`` and attention head ``i`` the unnormalised score is

    e_i = LeakyReLU( a_i^T [ W h_s || W h_d ] )        (Eq. 5 numerator)

scores are normalised with a per-target softmax (Eq. 5 denominator), messages
``W h_s`` are aggregated by attention-weighted scatter-add (Eq. 4), the heads
are concatenated and projected by ``W_o`` (Eq. 3).

Temporal information enters through a sinusoidal time encoding of the edge
time difference, added to the source message before scoring, which lets the
attention discriminate between neighbours at different temporal distances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, concat, segment_softmax
from ..errors import ConfigError, ShapeError
from . import init
from .module import Module, Parameter


class TimeEncoding(Module):
    """Bochner-style sinusoidal encoding of (relative) timestamps.

    Maps a scalar time difference to ``dim`` features
    ``cos(w_k * dt + b_k)`` with learnable frequencies, following the
    functional time encoding used by temporal graph attention networks.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim <= 0:
            raise ConfigError("time encoding dim must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = dim
        # Geometric frequency ladder, perturbed slightly so heads differ.
        base = 1.0 / (10.0 ** np.linspace(0.0, 4.0, dim))
        self.frequency = Parameter(base * (1.0 + 0.01 * rng.standard_normal(dim)))
        self.phase = Parameter(np.zeros(dim))

    def forward(self, delta_t: np.ndarray) -> Tensor:
        dt = np.asarray(delta_t, dtype=np.float64).reshape(-1, 1)
        angles = Tensor(dt) * self.frequency.reshape(1, self.dim) + self.phase
        # cos(x) expressed via available primitives: cos(x) = sin(x + pi/2),
        # and sin through the identity with tanh is inexact -- instead use
        # the exact complex-exponential-free route: cos(x) = (e^{ix}+e^{-ix})/2
        # is unavailable, so we implement cos directly as a primitive-free
        # composition: cos(x) = 1 - 2*sigmoid-free... Simplest exact approach:
        # differentiate through exp of imaginary parts is impossible, so we
        # add a dedicated cosine below.
        return _cos(angles)


def _cos(x: Tensor) -> Tensor:
    """Differentiable cosine built directly on the raw data/closure API."""
    data = np.cos(x.data)
    sin = np.sin(x.data)
    return Tensor._from_op(data, (x,), (lambda g: -g * sin,), "cos")


class TemporalGraphAttention(Module):
    """One multi-head TGAT layer over a bipartite computation graph.

    Parameters
    ----------
    in_features:
        Dimensionality of the incoming node representations.
    out_features:
        Dimensionality of the layer output (after the ``W_o`` projection).
    num_heads:
        Number of attention heads ``h_tga`` (Eq. 3).
    head_dim:
        Per-head representation width ``d_enc``; defaults to
        ``out_features // num_heads``.
    time_dim:
        Width of the sinusoidal time encoding added to source messages.
        Set to 0 to disable temporal conditioning.
    negative_slope:
        LeakyReLU slope used in Eq. 5 (paper value: 0.2).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_heads: int = 4,
        head_dim: Optional[int] = None,
        time_dim: int = 8,
        negative_slope: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_heads <= 0:
            raise ConfigError("num_heads must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.num_heads = num_heads
        self.head_dim = head_dim if head_dim is not None else max(out_features // num_heads, 1)
        self.time_dim = time_dim
        self.negative_slope = negative_slope

        d = self.head_dim
        # Per-head projections W (shared src/dst as in GAT) and vectors a_i.
        self.w_src = Parameter(init.xavier_uniform((num_heads, in_features, d), rng))
        self.w_dst = Parameter(init.xavier_uniform((num_heads, in_features, d), rng))
        # a_i is split into the source half and destination half so the
        # concatenation in Eq. 5 becomes a sum of two dot products.
        self.attn_src = Parameter(init.xavier_uniform((num_heads, d), rng))
        self.attn_dst = Parameter(init.xavier_uniform((num_heads, d), rng))
        self.w_out = Parameter(init.xavier_uniform((num_heads * d, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,)))
        if time_dim > 0:
            self.time_encoding = TimeEncoding(time_dim, rng=rng)
            self.w_time = Parameter(init.xavier_uniform((num_heads, time_dim, d), rng))
        else:
            self.time_encoding = None
            self.w_time = None

    def forward(
        self,
        h_src: Tensor,
        h_dst: Tensor,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        delta_t: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Aggregate source messages into target representations.

        Parameters
        ----------
        h_src:
            ``(n_src, in_features)`` source-node representations.
        h_dst:
            ``(n_dst, in_features)`` target-node representations (used only
            for attention scoring; self-information should be provided via a
            self-loop edge, which the sampler adds).
        src_index, dst_index:
            Parallel ``(n_edges,)`` integer arrays defining the bipartite
            edges: edge ``e`` flows ``src_index[e] -> dst_index[e]``.
        delta_t:
            Optional ``(n_edges,)`` array of time differences
            ``t_dst - t_src`` for the temporal encoding.
        """
        src_index = np.asarray(src_index, dtype=np.int64)
        dst_index = np.asarray(dst_index, dtype=np.int64)
        if src_index.shape != dst_index.shape:
            raise ShapeError("src_index and dst_index must have equal length")
        n_dst = h_dst.shape[0]
        n_edges = src_index.shape[0]
        if n_edges == 0:
            # No incoming messages: output is the bias alone.
            return Tensor(np.zeros((n_dst, self.out_features))) + self.bias

        head_outputs = []
        time_feat = None
        if self.time_encoding is not None and delta_t is not None:
            time_feat = self.time_encoding(delta_t)  # (n_edges, time_dim)

        for head in range(self.num_heads):
            z_src = h_src @ self.w_src[head]  # (n_src, d)
            z_dst = h_dst @ self.w_dst[head]  # (n_dst, d)
            msg = z_src.take_rows(src_index)  # (n_edges, d)
            if time_feat is not None:
                msg = msg + time_feat @ self.w_time[head]
            # Eq. 5: score = LeakyReLU(a_src . msg + a_dst . z_dst[dst]).
            score = (msg * self.attn_src[head]).sum(axis=-1) + (
                z_dst.take_rows(dst_index) * self.attn_dst[head]
            ).sum(axis=-1)
            score = score.leaky_relu(self.negative_slope)
            alpha = segment_softmax(score, dst_index, n_dst)  # (n_edges,)
            weighted = msg * alpha.reshape(-1, 1)
            head_outputs.append(weighted.segment_sum(dst_index, n_dst))  # (n_dst, d)

        stacked = concat(head_outputs, axis=1)  # (n_dst, heads*d), Eq. 3 concat
        return stacked @ self.w_out + self.bias

    def __repr__(self) -> str:
        return (
            f"TemporalGraphAttention(in={self.in_features}, out={self.out_features}, "
            f"heads={self.num_heads}, head_dim={self.head_dim}, time_dim={self.time_dim})"
        )
