"""Temporal graph attention (TGAT) layers -- Eqs. 3-5 of the paper.

The layer operates on a *bipartite computation graph* (Fig. 4): a set of
source rows, a set of target rows, and an edge list connecting them.  For
every edge ``(s, d)`` and attention head ``i`` the unnormalised score is

    e_i = LeakyReLU( a_i^T [ W h_s || W h_d ] )        (Eq. 5 numerator)

scores are normalised with a per-target softmax (Eq. 5 denominator), messages
``W h_s`` are aggregated by attention-weighted scatter-add (Eq. 4), the heads
are concatenated and projected by ``W_o`` (Eq. 3).

Temporal information enters through a sinusoidal time encoding of the edge
time difference, added to the source message before scoring, which lets the
attention discriminate between neighbours at different temporal distances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, checkpoint, concat, is_grad_enabled, segment_softmax
from ..errors import ConfigError, ShapeError
from . import init
from .module import Module, Parameter


class TimeEncoding(Module):
    """Bochner-style sinusoidal encoding of (relative) timestamps.

    Maps a scalar time difference to ``dim`` features
    ``cos(w_k * dt + b_k)`` with learnable frequencies, following the
    functional time encoding used by temporal graph attention networks.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim <= 0:
            raise ConfigError("time encoding dim must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.dim = dim
        # Geometric frequency ladder, perturbed slightly so heads differ.
        base = 1.0 / (10.0 ** np.linspace(0.0, 4.0, dim))
        self.frequency = Parameter(base * (1.0 + 0.01 * rng.standard_normal(dim)))
        self.phase = Parameter(np.zeros(dim))

    def forward(self, delta_t: np.ndarray) -> Tensor:
        return _time_encode(delta_t, self.frequency, self.phase, self.dim)


def _time_encode(
    delta_t: np.ndarray, frequency: Tensor, phase: Tensor, dim: int
) -> Tensor:
    """Functional form of :class:`TimeEncoding` (parameters passed explicitly).

    The attention layer's checkpointed recompute path substitutes leaf
    copies of ``frequency``/``phase``, so the encoding must be expressible
    as a pure function of its parameter tensors.
    """
    dt = np.asarray(delta_t, dtype=frequency.data.dtype).reshape(-1, 1)
    angles = Tensor(dt) * frequency.reshape(1, dim) + phase
    # cos(x) expressed via available primitives: cos(x) = sin(x + pi/2),
    # and sin through the identity with tanh is inexact -- instead use
    # the exact complex-exponential-free route: cos(x) = (e^{ix}+e^{-ix})/2
    # is unavailable, so we implement cos directly as a primitive-free
    # composition: cos(x) = 1 - 2*sigmoid-free... Simplest exact approach:
    # differentiate through exp of imaginary parts is impossible, so we
    # add a dedicated cosine below.
    return _cos(angles)


def _cos(x: Tensor) -> Tensor:
    """Differentiable cosine built directly on the raw data/closure API."""
    data = np.cos(x.data)
    sin = np.sin(x.data)
    return Tensor._from_op(data, (x,), (lambda g: -g * sin,), "cos")


def _scatter_head(param_data: np.ndarray, head: int, grad: np.ndarray) -> np.ndarray:
    """Scatter one head's gradient into a zeroed full-parameter buffer.

    Replicates the ``__getitem__`` backward of the composed graph
    (``np.zeros`` + ``np.add.at`` -- never direct assignment, which would
    differ on signed zeros), so per-head parameter gradients from the fused
    kernel are bit-identical to the reference composition's.
    """
    out = np.zeros(param_data.shape, dtype=param_data.dtype)
    np.add.at(out, head, grad)
    return out


class TemporalGraphAttention(Module):
    """One multi-head TGAT layer over a bipartite computation graph.

    Parameters
    ----------
    in_features:
        Dimensionality of the incoming node representations.
    out_features:
        Dimensionality of the layer output (after the ``W_o`` projection).
    num_heads:
        Number of attention heads ``h_tga`` (Eq. 3).
    head_dim:
        Per-head representation width ``d_enc``; defaults to
        ``out_features // num_heads``.
    time_dim:
        Width of the sinusoidal time encoding added to source messages.
        Set to 0 to disable temporal conditioning.
    negative_slope:
        LeakyReLU slope used in Eq. 5 (paper value: 0.2).
    checkpoint:
        Activation-checkpointing (recompute-in-backward) mode.  When
        ``True`` and gradients are being recorded, the per-edge
        intermediates of the attention kernel (gathered messages, scores,
        softmax weights -- the O(edges * head_dim) tensors that dominate
        training memory) are *not* kept alive for the backward pass;
        instead the whole layer kernel is re-evaluated once when its
        gradient arrives.  The recompute replays the identical full-shape
        array operations, so losses and gradients are bit-identical to the
        plain path -- only peak memory and a ~30% compute overhead change.
        Inference (``no_grad``) is unaffected.  May also be toggled after
        construction via the attribute.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_heads: int = 4,
        head_dim: Optional[int] = None,
        time_dim: int = 8,
        negative_slope: float = 0.2,
        rng: Optional[np.random.Generator] = None,
        checkpoint: bool = False,
    ) -> None:
        super().__init__()
        if num_heads <= 0:
            raise ConfigError("num_heads must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.num_heads = num_heads
        self.head_dim = head_dim if head_dim is not None else max(out_features // num_heads, 1)
        self.time_dim = time_dim
        self.negative_slope = negative_slope
        self.checkpoint = checkpoint

        d = self.head_dim
        # Per-head projections W (shared src/dst as in GAT) and vectors a_i.
        self.w_src = Parameter(init.xavier_uniform((num_heads, in_features, d), rng))
        self.w_dst = Parameter(init.xavier_uniform((num_heads, in_features, d), rng))
        # a_i is split into the source half and destination half so the
        # concatenation in Eq. 5 becomes a sum of two dot products.
        self.attn_src = Parameter(init.xavier_uniform((num_heads, d), rng))
        self.attn_dst = Parameter(init.xavier_uniform((num_heads, d), rng))
        self.w_out = Parameter(init.xavier_uniform((num_heads * d, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,)))
        if time_dim > 0:
            self.time_encoding = TimeEncoding(time_dim, rng=rng)
            self.w_time = Parameter(init.xavier_uniform((num_heads, time_dim, d), rng))
        else:
            self.time_encoding = None
            self.w_time = None

    def forward(
        self,
        h_src: Tensor,
        h_dst: Tensor,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        delta_t: Optional[np.ndarray] = None,
        edge_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Aggregate source messages into target representations.

        Two input layouts are supported:

        * **Flat** (one merged bipartite graph): ``h_src`` is
          ``(n_src, in_features)``, ``h_dst`` is ``(n_dst, in_features)``
          and the index arrays are ``(n_edges,)``.
        * **Batched/padded** (one independent bipartite graph per leading
          batch row, e.g. a :class:`~repro.graph.bipartite.PackedEgoBatch`
          level): ``h_src`` is ``(batch, n_src, in_features)``, ``h_dst`` is
          ``(batch, n_dst, in_features)``, the index arrays (and optional
          ``delta_t`` / ``edge_mask``) are ``(batch, n_edges)``, and the
          output is ``(batch, n_dst, out_features)``.

        Parameters
        ----------
        h_src:
            Source-node representations.
        h_dst:
            Target-node representations (used only for attention scoring;
            self-information should be provided via a self-loop edge, which
            the sampler adds).
        src_index, dst_index:
            Parallel integer arrays defining the bipartite edges: edge ``e``
            flows ``src_index[e] -> dst_index[e]`` (within its batch row in
            the padded layout).
        delta_t:
            Optional time differences ``t_dst - t_src`` for the temporal
            encoding, one per edge.
        edge_mask:
            Optional boolean array marking *real* edges in the padded
            layout; ``False`` entries are padding and contribute nothing to
            any target (their messages are routed to a discarded dummy row).
        """
        src_index = np.asarray(src_index, dtype=np.int64)
        dst_index = np.asarray(dst_index, dtype=np.int64)
        if src_index.shape != dst_index.shape:
            raise ShapeError("src_index and dst_index must have equal length")
        if h_src.ndim == 3:
            return self._forward_padded(
                h_src, h_dst, src_index, dst_index, delta_t, edge_mask
            )
        return self._forward_flat(
            h_src, h_dst, src_index, dst_index, delta_t, h_dst.shape[0]
        )

    def _forward_padded(
        self,
        h_src: Tensor,
        h_dst: Tensor,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        delta_t: Optional[np.ndarray],
        edge_mask: Optional[np.ndarray],
    ) -> Tensor:
        """Batched forward over per-ego padded bipartite graphs.

        Each batch row is an independent bipartite graph; the whole batch is
        flattened into one block-diagonal graph (per-row index offsets) so
        the flat gather/scatter kernels compute every row concurrently.
        Masked (padding) edges are redirected to one extra dummy target row
        which is sliced away afterwards, so they influence neither the
        softmax normalisation nor the aggregation of any real target.
        """
        if h_dst.ndim != 3 or src_index.ndim != 2:
            raise ShapeError(
                "padded attention expects 3-D h_src/h_dst and 2-D index arrays"
            )
        batch, n_src = h_src.shape[0], h_src.shape[1]
        n_dst = h_dst.shape[1]
        if h_dst.shape[0] != batch or src_index.shape[0] != batch:
            raise ShapeError("batch dimension mismatch between inputs")
        flat_src = h_src.reshape(batch * n_src, h_src.shape[2])
        flat_dst = h_dst.reshape(batch * n_dst, h_dst.shape[2])
        row_offset = np.arange(batch, dtype=np.int64)[:, None]
        src_flat = (src_index + row_offset * n_src).reshape(-1)
        dst_flat = (dst_index + row_offset * n_dst).reshape(-1)
        num_targets = batch * n_dst
        if edge_mask is not None:
            mask_flat = np.asarray(edge_mask, dtype=bool).reshape(-1)
            dst_flat = np.where(mask_flat, dst_flat, num_targets)
            # One dummy target row absorbs every padding edge.
            zero_row = Tensor(np.zeros((1, flat_dst.shape[1]), dtype=flat_dst.data.dtype))
            flat_dst = concat([flat_dst, zero_row], axis=0)
            num_targets += 1
        dt_flat = None if delta_t is None else np.asarray(delta_t).reshape(-1)
        out = self._forward_flat(flat_src, flat_dst, src_flat, dst_flat, dt_flat, num_targets)
        if edge_mask is not None:
            out = out[: batch * n_dst]
        return out.reshape(batch, n_dst, self.out_features)

    def _head_reference(
        self,
        head: int,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        n_dst: int,
        h_src: Tensor,
        h_dst: Tensor,
        time_feat: Optional[Tensor],
        w_src: Tensor,
        w_dst: Tensor,
        attn_src: Tensor,
        attn_dst: Tensor,
        w_time: Optional[Tensor] = None,
    ) -> Tensor:
        """One head's Eq. 4-5 aggregation composed from autograd primitives.

        The readable specification of the attention head and the oracle for
        the fused kernel below: ``tests/test_nn_attention_fused.py`` asserts
        :meth:`_head` reproduces this composition's output *and* every input
        gradient bit for bit, under both dtype policies.  The production
        paths (plain and checkpointed) always run the fused kernel.
        """
        z_src = h_src @ w_src[head]
        z_dst = h_dst @ w_dst[head]
        msg = z_src.take_rows(src_index)
        if time_feat is not None:
            msg = msg + time_feat @ w_time[head]
        score = (msg * attn_src[head]).sum(axis=-1) + (
            z_dst.take_rows(dst_index) * attn_dst[head]
        ).sum(axis=-1)
        score = score.leaky_relu(self.negative_slope)
        alpha = segment_softmax(score, dst_index, n_dst)
        weighted = msg * alpha.reshape(-1, 1)
        return weighted.segment_sum(dst_index, n_dst)

    def _head(
        self,
        head: int,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        n_dst: int,
        h_src: Tensor,
        h_dst: Tensor,
        time_feat: Optional[Tensor],
        w_src: Tensor,
        w_dst: Tensor,
        attn_src: Tensor,
        attn_dst: Tensor,
        w_time: Optional[Tensor] = None,
    ) -> Tensor:
        """Fused one-pass kernel for one head: QK -> segment softmax -> sum.

        Computes exactly what :meth:`_head_reference` composes out of ~15
        autograd nodes, but as a *single* graph node with a hand-derived
        vector-Jacobian product.  Wins:

        * the per-edge intermediates that the composed graph keeps alive for
          backward (projections, score products, shifted scores, weighted
          messages) become transient scratch -- only ``msg``, the gathered
          ``z_dst`` rows, and three ``(edges,)`` softmax vectors survive to
          the backward closure;
        * scratch buffers are reused in place (the score/shifted-exp chain
          runs through two ``(edges,)`` buffers instead of six).

        Bit-exactness contract: every forward array expression and every
        backward accumulation replicates the composed graph's NumPy idioms
        operation for operation (same ``np.add.at`` scatters, same
        ``swapaxes`` matmul transposes, same broadcast-then-reduce shapes,
        same two-operand gradient-sum order -- IEEE addition of two operands
        is commutative bitwise), so losses, gradients, and the float64
        GOLDEN_DENSE fingerprints are unchanged.  Like the reference, every
        tensor argument receives exactly one gradient contribution per call,
        which keeps per-head checkpoint units bit-identical too.
        """
        hs, hd = h_src.data, h_dst.data
        ws, wd = w_src.data[head], w_dst.data[head]
        a_s, a_d = attn_src.data[head], attn_dst.data[head]
        tf = None if time_feat is None else time_feat.data
        wt = None if w_time is None else w_time.data[head]

        # --- forward: one pass, scratch reused -------------------------
        z_src = hs @ ws
        z_dst = hd @ wd
        z_src_shape, z_dst_shape = z_src.shape, z_dst.shape
        msg = z_src[src_index]
        if tf is not None:
            np.add(msg, tf @ wt, out=msg)
        zd_g = z_dst[dst_index]
        del z_src, z_dst
        score = (msg * a_s).sum(axis=-1)
        np.add(score, (zd_g * a_d).sum(axis=-1), out=score)
        scale = np.where(score > 0, 1.0, self.negative_slope).astype(
            score.dtype, copy=False
        )
        np.multiply(score, scale, out=score)
        # Segment softmax, replicating _segment_softmax_impl expression by
        # expression (the detached per-segment max shift, the 1e-30 guard).
        seg_max = np.full((n_dst,), -np.inf, dtype=score.dtype)
        np.maximum.at(seg_max, dst_index, score)
        seg_max = np.where(np.isfinite(seg_max), seg_max, 0.0)
        shifted = score - seg_max[dst_index]
        exp = np.exp(shifted, out=shifted)
        denom = np.zeros((n_dst,), dtype=exp.dtype)
        np.add.at(denom, dst_index, exp)
        np.add(denom, np.asarray(1e-30, dtype=exp.dtype), out=denom)
        denom_g = denom[dst_index]
        alpha = exp / denom_g
        weighted = msg * alpha[:, None]
        out = np.zeros((n_dst, msg.shape[1]), dtype=msg.dtype)
        np.add.at(out, dst_index, weighted)
        del weighted, score, denom

        parents = [h_src, h_dst]
        if time_feat is not None:
            parents.append(time_feat)
        parents.extend([w_src, w_dst, attn_src, attn_dst])
        if w_time is not None:
            parents.append(w_time)

        # --- backward: all VJPs derived once per seed, cached until the
        # engine has collected every parent's slot (checkpoint-style).
        cache: dict = {}
        state = {"pending": sum(1 for t in parents if t.requires_grad)}

        def _grads(g: np.ndarray) -> list:
            if "grads" in cache:
                return cache["grads"]
            g_w = g[dst_index]
            # alpha <- weighted-mul; exp <- div + denom paths (2-op sums).
            g_alpha = (g_w * msg).sum(axis=(1,), keepdims=True).reshape(msg.shape[0])
            g_exp = g_alpha / denom_g
            g_denomg = -g_alpha * exp / (denom_g**2)
            g_denom = np.zeros((n_dst,), dtype=exp.dtype)
            np.add.at(g_denom, dst_index, g_denomg)
            g_exp = g_exp + g_denom[dst_index]
            g_score = (g_exp * exp) * scale
            # Score products: broadcast the per-edge grad over head_dim.
            g_col = np.expand_dims(g_score, -1)
            g_msg = g_w * alpha[:, None] + np.broadcast_to(g_col, msg.shape) * a_s
            g_attn_src_h = (np.broadcast_to(g_col, msg.shape) * msg).sum(axis=0)
            g_zdg = np.broadcast_to(g_col, zd_g.shape) * a_d
            g_attn_dst_h = (np.broadcast_to(g_col, zd_g.shape) * zd_g).sum(axis=0)
            # dst projection chain.
            g_z_dst = np.zeros(z_dst_shape, dtype=g.dtype)
            np.add.at(g_z_dst, dst_index, g_zdg)
            g_h_dst = g_z_dst @ np.swapaxes(wd, -1, -2)
            g_wd_h = np.swapaxes(hd, -1, -2) @ g_z_dst
            # src projection (+ optional time) chain.
            g_z_src = np.zeros(z_src_shape, dtype=g.dtype)
            np.add.at(g_z_src, src_index, g_msg)
            g_h_src = g_z_src @ np.swapaxes(ws, -1, -2)
            g_ws_h = np.swapaxes(hs, -1, -2) @ g_z_src
            grads = [g_h_src, g_h_dst]
            if tf is not None:
                grads.append(g_msg @ np.swapaxes(wt, -1, -2))
            grads.append(_scatter_head(w_src.data, head, g_ws_h))
            grads.append(_scatter_head(w_dst.data, head, g_wd_h))
            grads.append(_scatter_head(attn_src.data, head, g_attn_src_h))
            grads.append(_scatter_head(attn_dst.data, head, g_attn_dst_h))
            if wt is not None:
                grads.append(
                    _scatter_head(w_time.data, head, np.swapaxes(tf, -1, -2) @ g_msg)
                )
            cache["grads"] = grads
            return grads

        def make_fn(i: int):
            def backward_fn(g: np.ndarray) -> np.ndarray:
                value = _grads(g)[i]
                state["pending"] -= 1
                if state["pending"] == 0:
                    cache.clear()
                return value

            return backward_fn

        return Tensor._from_op(
            out, tuple(parents), tuple(make_fn(i) for i in range(len(parents))),
            "tga_head",
        )

    def _forward_flat(
        self,
        h_src: Tensor,
        h_dst: Tensor,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        delta_t: Optional[np.ndarray],
        n_dst: int,
    ) -> Tensor:
        """Shared per-head attention kernel over a flat edge list.

        In checkpoint mode the time encoding and each head become
        recompute-in-backward units (:func:`repro.autograd.checkpoint`):
        the O(edges * head_dim) intermediates of at most *one head* exist at
        any moment of the backward pass, instead of every head of every
        layer staying alive from forward to backward.
        """
        if src_index.shape[0] == 0:
            return (
                Tensor(np.zeros((n_dst, self.out_features), dtype=self.bias.data.dtype))
                + self.bias
            )
        params = [self.w_src, self.w_dst, self.attn_src, self.attn_dst]
        use_checkpoint = (
            self.checkpoint
            and is_grad_enabled()
            and any(t.requires_grad for t in [h_src, h_dst] + params)
        )
        time_feat = None
        if self.time_encoding is not None and delta_t is not None:
            if use_checkpoint:
                time_feat = checkpoint(
                    lambda frequency, phase: _time_encode(
                        delta_t, frequency, phase, self.time_dim
                    ),
                    self.time_encoding.frequency,
                    self.time_encoding.phase,
                )
            else:
                time_feat = self.time_encoding(delta_t)
        head_outputs = []
        for head in range(self.num_heads):
            if use_checkpoint:
                if time_feat is not None:
                    out_h = checkpoint(
                        lambda hs, hd, tf, ws, wd, a_s, a_d, wt, _h=head: self._head(
                            _h, src_index, dst_index, n_dst, hs, hd, tf,
                            ws, wd, a_s, a_d, wt,
                        ),
                        h_src, h_dst, time_feat, *params, self.w_time,
                    )
                else:
                    out_h = checkpoint(
                        lambda hs, hd, ws, wd, a_s, a_d, _h=head: self._head(
                            _h, src_index, dst_index, n_dst, hs, hd, None,
                            ws, wd, a_s, a_d,
                        ),
                        h_src, h_dst, *params,
                    )
            else:
                out_h = self._head(
                    head, src_index, dst_index, n_dst, h_src, h_dst, time_feat,
                    *params, self.w_time,
                )
            head_outputs.append(out_h)
        stacked = concat(head_outputs, axis=1)
        return stacked @ self.w_out + self.bias

    def __repr__(self) -> str:
        return (
            f"TemporalGraphAttention(in={self.in_features}, out={self.out_features}, "
            f"heads={self.num_heads}, head_dim={self.head_dim}, time_dim={self.time_dim})"
        )
