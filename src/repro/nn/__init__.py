"""Neural-network layer library built on :mod:`repro.autograd`."""

from .activations import Dropout, LeakyReLU, ReLU, Sigmoid, Tanh
from .attention import TemporalGraphAttention, TimeEncoding
from .container import ModuleList, Sequential
from .linear import Embedding, Linear, embedding_lookup
from .mlp import MLP
from .module import Module, Parameter
from .norm import LayerNorm
from .rnn import GRUCell, LSTMCell

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "embedding_lookup",
    "MLP",
    "Sequential",
    "ModuleList",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "LayerNorm",
    "TemporalGraphAttention",
    "TimeEncoding",
    "GRUCell",
    "LSTMCell",
]
