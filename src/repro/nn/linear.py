"""Affine layers: Linear and Embedding."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..errors import ConfigError, ShapeError
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Fully-connected layer ``y = x W + b``.

    The layer is applied to the last axis, so inputs may carry arbitrary
    leading batch dimensions: ``(n, in)`` and ``(batch, n, in)`` (the padded
    ego-batch layout) are both supported, producing matching output shapes.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to learn an additive bias term.
    rng:
        Random generator for Xavier-uniform weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigError("Linear features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expects last dim {self.in_features}, got {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Embedding gather on an explicit weight tensor.

    The functional core of :class:`Embedding`, shared with code (the TGAE
    encoder's checkpointed input pipeline) that must run the lookup on leaf
    copies of the weight rather than through the module.
    """
    idx = np.asarray(indices, dtype=np.int64)
    num_embeddings, embedding_dim = weight.shape
    if idx.size and (idx.min() < 0 or idx.max() >= num_embeddings):
        raise IndexError(
            f"embedding index out of range [0, {num_embeddings}): "
            f"[{idx.min()}, {idx.max()}]"
        )
    return weight.take_rows(idx.reshape(-1)).reshape(*idx.shape, embedding_dim)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used for the paper's default node features ("node identity numbers",
    Sec. IV-B) and by the walk-sequence baselines.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ConfigError("Embedding sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=0.1))

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"
