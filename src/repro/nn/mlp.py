"""Multi-layer perceptron used by the decoder heads (MLP_mu / MLP_sigma)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autograd import Tensor
from ..errors import ConfigError
from .activations import ReLU
from .container import ModuleList
from .linear import Linear
from .module import Module


class MLP(Module):
    """A stack of Linear layers with ReLU activations between them.

    Parameters
    ----------
    sizes:
        ``[in, hidden..., out]`` layer widths; must contain at least two
        entries.
    rng:
        Random generator used for weight initialisation.
    activate_last:
        Whether to apply the activation after the final layer.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        activate_last: bool = False,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ConfigError(f"MLP needs at least [in, out] sizes, got {list(sizes)}")
        rng = rng if rng is not None else np.random.default_rng()
        self.sizes = list(sizes)
        self.activate_last = activate_last
        self.linears = ModuleList(
            [Linear(sizes[i], sizes[i + 1], rng=rng) for i in range(len(sizes) - 1)]
        )
        self.activation = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.linears) - 1
        for i, layer in enumerate(self.linears):
            x = layer(x)
            if i != last or self.activate_last:
                x = self.activation(x)
        return x

    def __repr__(self) -> str:
        return f"MLP({self.sizes})"
