"""Recurrent cells used by the walk-sequence baselines (TIGGER, NetGAN family).

Only cell-level modules are provided; sequence models unroll them explicitly,
which keeps the autograd graph simple and the implementations auditable.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor
from ..errors import ConfigError
from . import init
from .module import Module, Parameter


class GRUCell(Module):
    """Gated recurrent unit cell (Cho et al., 2014)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ConfigError("GRUCell sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.w_ir = Parameter(init.xavier_uniform((input_size, h), rng))
        self.w_hr = Parameter(init.xavier_uniform((h, h), rng))
        self.b_r = Parameter(init.zeros((h,)))
        self.w_iz = Parameter(init.xavier_uniform((input_size, h), rng))
        self.w_hz = Parameter(init.xavier_uniform((h, h), rng))
        self.b_z = Parameter(init.zeros((h,)))
        self.w_in = Parameter(init.xavier_uniform((input_size, h), rng))
        self.w_hn = Parameter(init.xavier_uniform((h, h), rng))
        self.b_n = Parameter(init.zeros((h,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """One step: ``x`` is ``(batch, input)``, ``h`` is ``(batch, hidden)``."""
        r = (x @ self.w_ir + h @ self.w_hr + self.b_r).sigmoid()
        z = (x @ self.w_iz + h @ self.w_hz + self.b_z).sigmoid()
        n = (x @ self.w_in + (r * h) @ self.w_hn + self.b_n).tanh()
        return (1.0 - z) * n + z * h

    def initial_state(self, batch: int) -> Tensor:
        """Zero hidden state for a batch."""
        return Tensor(np.zeros((batch, self.hidden_size)))


class LSTMCell(Module):
    """Long short-term memory cell (Hochreiter & Schmidhuber, 1997)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ConfigError("LSTMCell sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        # Single fused projection for the four gates keeps parameters compact.
        self.w_x = Parameter(init.xavier_uniform((input_size, 4 * h), rng))
        self.w_h = Parameter(init.xavier_uniform((h, 4 * h), rng))
        self.bias = Parameter(init.zeros((4 * h,)))

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """One step; ``state`` is ``(h, c)``. Returns the new ``(h, c)``."""
        h_prev, c_prev = state
        gates = x @ self.w_x + h_prev @ self.w_h + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        """Zero ``(h, c)`` state for a batch."""
        zero = np.zeros((batch, self.hidden_size))
        return Tensor(zero.copy()), Tensor(zero.copy())
