"""Normalisation layers."""

from __future__ import annotations

from typing import Optional

from ..autograd import Tensor
from ..errors import ConfigError
from .module import Module, Parameter

import numpy as np


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable affine.

    Statistics are computed per row of the last axis, so the layer accepts
    arbitrary leading batch dimensions (``(n, dim)``, ``(batch, n, dim)``,
    ...).  An optional boolean ``mask`` marks real rows in padded batches;
    masked (padding) rows are zeroed in the output so garbage values cannot
    leak into downstream reductions.
    """

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if dim <= 0:
            raise ConfigError("LayerNorm dim must be positive")
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        var = (centred * centred).mean(axis=-1, keepdims=True)
        normed = centred / (var + self.eps).sqrt()
        out = normed * self.gamma + self.beta
        if mask is not None:
            keep = np.asarray(mask, dtype=out.data.dtype)[..., None]
            out = out * Tensor(keep)
        return out
