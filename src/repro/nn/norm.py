"""Normalisation layers."""

from __future__ import annotations

from ..autograd import Tensor
from ..errors import ConfigError
from .module import Module, Parameter

import numpy as np


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable affine."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if dim <= 0:
            raise ConfigError("LayerNorm dim must be positive")
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        var = (centred * centred).mean(axis=-1, keepdims=True)
        normed = centred / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta
