"""TIGGER baseline (Gupta et al., AAAI 2022).

TIGGER is a *recurrent maximum-likelihood* model over temporal interaction
walks: an LSTM consumes (node, time-gap) tokens and predicts the next node
and the next time gap; generation runs the recurrence autoregressively and
the emitted walks are assembled into a graph.  This captures TIGGER's
defining traits -- walk-based like TagGen but MLE-trained (no GAN) and with
O(n * M) complexity in the corpus size.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, concat, cross_entropy_with_logits, no_grad, softmax
from ..base import TemporalGraphGenerator
from ..errors import GenerationError
from ..graph.temporal_graph import TemporalGraph
from ..graph.walks import sample_walk_corpus, walks_to_graph
from ..nn import Embedding, Linear, LSTMCell, Module
from ..optim import Adam, clip_grad_norm
from ..rng import stream


class _TiggerModel(Module):
    """LSTM over (node, gap) tokens with node and gap prediction heads."""

    def __init__(
        self,
        num_nodes: int,
        max_gap: int,
        embed_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.num_nodes = num_nodes
        self.max_gap = max_gap
        self.node_emb = Embedding(num_nodes, embed_dim, rng=rng)
        self.gap_emb = Embedding(max_gap + 1, embed_dim, rng=rng)
        self.cell = LSTMCell(2 * embed_dim, hidden_dim, rng=rng)
        self.node_head = Linear(hidden_dim, num_nodes, rng=rng)
        self.gap_head = Linear(hidden_dim, max_gap + 1, rng=rng)

    def step(self, nodes: np.ndarray, gaps: np.ndarray, state):
        """One recurrence step for a batch of walk positions."""
        x = concat([self.node_emb(nodes), self.gap_emb(gaps)], axis=1)
        h, c = self.cell(x, state)
        return self.node_head(h), self.gap_head(h), (h, c)


class TiggerGenerator(TemporalGraphGenerator):
    """Recurrent MLE model over temporal interaction walks."""

    name = "TIGGER"

    def __init__(
        self,
        num_walks: int = 300,
        walk_length: int = 8,
        time_window: int = 3,
        embed_dim: int = 16,
        hidden_dim: int = 32,
        epochs: int = 10,
        batch_size: int = 32,
        learning_rate: float = 5e-3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.time_window = time_window
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.model: Optional[_TiggerModel] = None
        self._start_nodes: Optional[np.ndarray] = None
        self._start_times: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _fit(self, graph: TemporalGraph) -> None:
        rng = np.random.default_rng(self.seed)
        corpus = sample_walk_corpus(
            graph, self.num_walks, self.walk_length, self.time_window, rng,
            time_respecting=True,
        )
        # Pad walks to fixed length for batched recurrence; track lengths.
        max_len = max(nodes.size for nodes, _ in corpus)
        n_walks = len(corpus)
        node_mat = np.zeros((n_walks, max_len), dtype=np.int64)
        gap_mat = np.zeros((n_walks, max_len), dtype=np.int64)
        lengths = np.zeros(n_walks, dtype=np.int64)
        for i, (nodes, times) in enumerate(corpus):
            node_mat[i, : nodes.size] = nodes
            gaps = np.diff(times, prepend=times[0])
            gap_mat[i, : nodes.size] = np.clip(gaps, 0, self.time_window)
            lengths[i] = nodes.size
        self._start_nodes = node_mat[:, 0].copy()
        self._start_times = np.asarray([times[0] for _, times in corpus], dtype=np.int64)

        model = _TiggerModel(
            graph.num_nodes, self.time_window, self.embed_dim, self.hidden_dim, rng
        )
        optimizer = Adam(model.parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            order = rng.permutation(n_walks)
            for start in range(0, n_walks, self.batch_size):
                idx = order[start : start + self.batch_size]
                batch_len = int(lengths[idx].max())
                state = model.cell.initial_state(idx.size)
                total_loss: Optional[Tensor] = None
                steps = 0
                for pos in range(batch_len - 1):
                    active = lengths[idx] > pos + 1
                    if not active.any():
                        break
                    node_logits, gap_logits, state = model.step(
                        node_mat[idx, pos], gap_mat[idx, pos], state
                    )
                    # Mask inactive rows by restricting the loss to them.
                    rows = np.nonzero(active)[0]
                    step_loss = cross_entropy_with_logits(
                        node_logits.take_rows(rows), node_mat[idx[rows], pos + 1]
                    ) + cross_entropy_with_logits(
                        gap_logits.take_rows(rows), gap_mat[idx[rows], pos + 1]
                    )
                    total_loss = step_loss if total_loss is None else total_loss + step_loss
                    steps += 1
                if total_loss is None:
                    continue
                loss = total_loss * (1.0 / max(steps, 1))
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(model.parameters(), 5.0)
                optimizer.step()
        self.model = model

    # ------------------------------------------------------------------
    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        if self.model is None or self._start_nodes is None:
            raise GenerationError("TIGGER model missing after fit")
        graph = self.observed
        rng = (
            np.random.default_rng(seed)
            if seed is not None
            else stream(self.seed, "tigger", "generate")
        )
        walks: List[Tuple[np.ndarray, np.ndarray]] = []
        needed = graph.num_edges
        collected = 0
        batch = 64
        with no_grad():
            while collected < needed:
                starts = rng.integers(0, self._start_nodes.size, size=batch)
                nodes = self._start_nodes[starts]
                times = self._start_times[starts].astype(np.int64)
                gaps = np.zeros(batch, dtype=np.int64)
                seq_nodes = [nodes.copy()]
                seq_times = [times.copy()]
                state = self.model.cell.initial_state(batch)
                for _ in range(self.walk_length - 1):
                    node_logits, gap_logits, state = self.model.step(nodes, gaps, state)
                    node_probs = softmax(node_logits, axis=-1).numpy()
                    gap_probs = softmax(gap_logits, axis=-1).numpy()
                    nodes = np.array(
                        [rng.choice(graph.num_nodes, p=node_probs[i]) for i in range(batch)],
                        dtype=np.int64,
                    )
                    gaps = np.array(
                        [rng.choice(self.time_window + 1, p=gap_probs[i]) for i in range(batch)],
                        dtype=np.int64,
                    )
                    times = np.minimum(times + gaps, graph.num_timestamps - 1)
                    seq_nodes.append(nodes.copy())
                    seq_times.append(times.copy())
                node_arr = np.stack(seq_nodes, axis=1)
                time_arr = np.stack(seq_times, axis=1)
                for i in range(batch):
                    walks.append((node_arr[i], time_arr[i]))
                    collected += node_arr.shape[1] - 1
                    if collected >= needed:
                        break
        return walks_to_graph(
            walks, graph.num_nodes, graph.num_timestamps, target_edges=needed, rng=rng
        )
