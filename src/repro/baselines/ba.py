"""Barabási–Albert baseline (B-A in the paper's tables).

Preferential attachment applied per timestamp: each snapshot's edges are
re-drawn with endpoints biased towards nodes that have accumulated degree in
the *cumulative* generated graph so far.  This captures heavy-tailed degree
(hence decent PLE/mean-degree scores in the paper) while remaining blind to
temporal microstructure.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .common import PerSnapshotGenerator


class BarabasiAlbertGenerator(PerSnapshotGenerator):
    """Per-snapshot preferential attachment with persistent degree state."""

    name = "B-A"

    def _fit(self, graph) -> None:  # type: ignore[override]
        super()._fit(graph)
        # Degree accumulator shared across generated timestamps.
        self._gen_degree = None

    def _fit_snapshot(self, num_nodes: int, timestamp: int, snapshot) -> object:
        return None

    def _generate(self, seed):  # type: ignore[override]
        # Reset the degree accumulator so repeated generate() calls are i.i.d.
        self._gen_degree = np.ones(self.observed.num_nodes, dtype=np.float64)
        return super()._generate(seed)

    def _sample_snapshot(
        self,
        num_nodes: int,
        timestamp: int,
        num_edges: int,
        state: object,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        degree = self._gen_degree
        src = np.empty(num_edges, dtype=np.int64)
        dst = np.empty(num_edges, dtype=np.int64)
        for i in range(num_edges):
            probs = degree / degree.sum()
            u = int(rng.choice(num_nodes, p=probs))
            v = int(rng.choice(num_nodes, p=probs))
            if v == u:
                v = (v + 1) % num_nodes
            src[i], dst[i] = u, v
            degree[u] += 1.0
            degree[v] += 1.0
        return src, dst
