"""TED-style baseline: temporal edge distribution with time-bound communities.

TED (Zheng et al., ICDE 2024 -- cited in the paper's related work, Sec. II-C)
generates temporal graphs "featuring time-bound communities": groups of nodes
that are densely connected *and* active over a bounded time window.  Our
implementation reproduces that defining mechanism on the snapshot substrate:

1. **Community detection** on the time-aggregated graph (greedy modularity,
   via :mod:`networkx`), giving each node a community label.
2. **Time-bound activity profiles**: for every community we estimate its
   per-timestamp edge-count profile -- the "time bound" is the support of
   that profile, so a community only emits edges inside the window where the
   observed graph shows it active.
3. **Temporal edge distribution**: per timestamp, the joint distribution over
   (source community, target community) block pairs is estimated from the
   observed snapshot, with endpoints drawn degree-weighted *within* each
   block (so hubs stay hubs inside their community).

Generation walks the timestamps, samples each snapshot's block pairs from the
per-timestamp distribution, and materialises endpoints.  Like the paper's
non-learning comparators it is fast and scalable but blind to microstructure
beyond the block level -- its characteristic trade-off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..base import TemporalGraphGenerator
from ..graph.temporal_graph import TemporalGraph


def _detect_communities(graph: TemporalGraph, max_communities: int) -> np.ndarray:
    """Label every node with a community id from the aggregated graph.

    Uses greedy modularity maximisation on the undirected time-aggregated
    simple graph; isolated nodes each form their own singleton community
    (capped by ``max_communities`` -- extras fold into the largest block).
    """
    agg = nx.Graph()
    agg.add_nodes_from(range(graph.num_nodes))
    agg.add_edges_from(zip(graph.src.tolist(), graph.dst.tolist()))
    agg.remove_edges_from(nx.selfloop_edges(agg))
    if agg.number_of_edges() == 0:
        return np.zeros(graph.num_nodes, dtype=np.int64)
    communities = nx.algorithms.community.greedy_modularity_communities(agg)
    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    for cid, members in enumerate(communities):
        target = min(cid, max_communities - 1)
        for node in members:
            labels[node] = target
    return labels


class TEDGenerator(TemporalGraphGenerator):
    """Time-bound-community temporal edge distribution generator.

    Parameters
    ----------
    max_communities:
        Upper bound on the number of blocks (communities beyond this fold
        into the last block); keeps the block-pair distribution dense enough
        to estimate on small graphs.
    smoothing:
        Additive smoothing mass for the per-timestamp block-pair
        distribution, so blocks that were active at ``t-1`` and ``t+1`` are
        not hard-zeroed at ``t`` (time bounds are estimated, not assumed
        contiguous).
    """

    name = "TED"

    def __init__(self, max_communities: int = 16, smoothing: float = 0.05) -> None:
        super().__init__()
        if max_communities < 1:
            raise ValueError(f"max_communities must be >= 1, got {max_communities}")
        if smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        self.max_communities = int(max_communities)
        self.smoothing = float(smoothing)
        self._labels: Optional[np.ndarray] = None
        self._members: List[np.ndarray] = []
        self._member_out_weights: List[np.ndarray] = []
        self._member_in_weights: List[np.ndarray] = []
        self._block_counts: Optional[np.ndarray] = None
        self._edge_counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _fit(self, graph: TemporalGraph) -> None:
        labels = _detect_communities(graph, self.max_communities)
        num_blocks = int(labels.max()) + 1 if labels.size else 1
        self._labels = labels
        self._members = [np.where(labels == c)[0] for c in range(num_blocks)]

        out_degree = np.bincount(graph.src, minlength=graph.num_nodes).astype(np.float64)
        in_degree = np.bincount(graph.dst, minlength=graph.num_nodes).astype(np.float64)
        self._member_out_weights = [
            self._stub_weights(out_degree, members) for members in self._members
        ]
        self._member_in_weights = [
            self._stub_weights(in_degree, members) for members in self._members
        ]

        # Per-timestamp (source block, target block) edge counts: the
        # temporal edge distribution.  Its support along t is each block
        # pair's time bound.
        counts = np.zeros(
            (graph.num_timestamps, num_blocks, num_blocks), dtype=np.float64
        )
        np.add.at(counts, (graph.t, labels[graph.src], labels[graph.dst]), 1.0)
        self._block_counts = counts
        self._edge_counts = np.bincount(graph.t, minlength=graph.num_timestamps)

    @staticmethod
    def _stub_weights(degree: np.ndarray, members: np.ndarray) -> np.ndarray:
        """Degree-proportional endpoint weights inside one community."""
        if members.size == 0:
            return np.empty(0, dtype=np.float64)
        weights = degree[members] + 1.0  # +1 keeps silent members reachable
        return weights / weights.sum()

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        graph = self.observed
        assert self._block_counts is not None and self._edge_counts is not None
        rng = np.random.default_rng(seed)
        num_blocks = self._block_counts.shape[1]
        nonempty = np.array([m.size > 0 for m in self._members])

        srcs: List[np.ndarray] = []
        dsts: List[np.ndarray] = []
        ts: List[np.ndarray] = []
        for timestamp in range(graph.num_timestamps):
            count = int(self._edge_counts[timestamp])
            if count == 0:
                continue
            block_probs = self._block_pair_distribution(timestamp, nonempty)
            pair_ids = rng.choice(num_blocks * num_blocks, size=count, p=block_probs)
            src_blocks = pair_ids // num_blocks
            dst_blocks = pair_ids % num_blocks
            src = self._draw_endpoints(src_blocks, self._member_out_weights, rng)
            dst = self._draw_endpoints(dst_blocks, self._member_in_weights, rng)
            dst = self._resolve_self_loops(src, dst, dst_blocks, rng)
            srcs.append(src)
            dsts.append(dst)
            ts.append(np.full(count, timestamp, dtype=np.int64))

        return TemporalGraph(
            graph.num_nodes,
            np.concatenate(srcs) if srcs else np.array([], dtype=np.int64),
            np.concatenate(dsts) if dsts else np.array([], dtype=np.int64),
            np.concatenate(ts) if ts else np.array([], dtype=np.int64),
            num_timestamps=graph.num_timestamps,
            validate=False,
        )

    def _block_pair_distribution(
        self, timestamp: int, nonempty: np.ndarray
    ) -> np.ndarray:
        """Smoothed block-pair categorical for one timestamp.

        Smoothing mass is spread only over pairs of non-empty blocks that are
        active *somewhere* in the observed graph, so the time bound widens by
        at most the smoothing amount instead of dissolving entirely.
        """
        assert self._block_counts is not None
        counts = self._block_counts[timestamp].copy()
        ever_active = self._block_counts.sum(axis=0) > 0
        feasible = ever_active & nonempty[:, None] & nonempty[None, :]
        counts[feasible] += self.smoothing
        flat = counts.reshape(-1)
        total = flat.sum()
        if total <= 0:
            # Degenerate: no feasible pair recorded; fall back to uniform
            # over non-empty block pairs.
            fallback = (nonempty[:, None] & nonempty[None, :]).astype(np.float64)
            flat = fallback.reshape(-1)
            total = flat.sum()
        return flat / total

    def _resolve_self_loops(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        dst_blocks: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Replace self-loop targets with another member of the same block.

        Keeps the block-pair distribution intact (a naive ``+1 mod n`` shift
        would leak edges across community boundaries).  Singleton blocks have
        no alternative member; those rare loops fall back to a uniform
        non-``src`` node.
        """
        out = dst.copy()
        for idx in np.where(src == dst)[0]:
            members = self._members[dst_blocks[idx]]
            alternatives = members[members != src[idx]]
            if alternatives.size:
                out[idx] = rng.choice(alternatives)
            else:
                out[idx] = (src[idx] + 1) % self.observed.num_nodes
        return out

    def _draw_endpoints(
        self,
        blocks: np.ndarray,
        weights: List[np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorised per-block endpoint draw (grouped by block id)."""
        out = np.empty(blocks.size, dtype=np.int64)
        for block in np.unique(blocks):
            members = self._members[block]
            mask = blocks == block
            out[mask] = rng.choice(members, size=int(mask.sum()), p=weights[block])
        return out

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and examples)
    # ------------------------------------------------------------------
    @property
    def community_labels(self) -> np.ndarray:
        """Per-node community id learned at fit time."""
        if self._labels is None:
            raise RuntimeError("TEDGenerator has not been fitted")
        return self._labels

    def community_time_bounds(self) -> Dict[int, Tuple[int, int]]:
        """Observed ``(first_active_t, last_active_t)`` per community.

        A community is active at ``t`` when it participates in any edge
        (either endpoint) at ``t``.  Communities never active are omitted.
        """
        assert self._block_counts is not None
        bounds: Dict[int, Tuple[int, int]] = {}
        num_blocks = self._block_counts.shape[1]
        for block in range(num_blocks):
            activity = (
                self._block_counts[:, block, :].sum(axis=1)
                + self._block_counts[:, :, block].sum(axis=1)
            )
            active_ts = np.where(activity > 0)[0]
            if active_ts.size:
                bounds[block] = (int(active_ts[0]), int(active_ts[-1]))
        return bounds
