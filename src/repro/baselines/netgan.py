"""NetGAN baseline (Bojchevski et al., ICML 2018).

NetGAN learns the distribution of random walks on a static graph and scores
edges by how often the walk model traverses them.  Rendsburg et al. (ICML
2020, cited as [45] by the paper) showed NetGAN's generator is equivalent to
a *low-rank approximation of the walk transition matrix*; we implement that
formulation directly -- a low-rank logit model ``P(v | u) = softmax(U_u V^T)``
trained by maximum likelihood on walks sampled from each snapshot -- which
preserves NetGAN's generative behaviour without the adversarial scaffolding
(the GAN mechanics are exercised by the TGGAN baseline instead).

Applied per snapshot, as the paper does for all static baselines.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..autograd import Tensor, cross_entropy_with_logits, no_grad
from ..nn import Module, Parameter
from ..nn import init as nn_init
from ..optim import Adam
from ..rng import stream
from .common import PerSnapshotGenerator, sample_edges_from_scores


class _WalkModel(Module):
    """Low-rank next-node model: logits(u, :) = U[u] @ V^T."""

    def __init__(self, num_nodes: int, rank: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.u = Parameter(nn_init.normal((num_nodes, rank), rng, std=0.1))
        self.v = Parameter(nn_init.normal((num_nodes, rank), rng, std=0.1))

    def forward(self, current_nodes: np.ndarray) -> Tensor:
        return self.u.take_rows(current_nodes) @ self.v.T

    def full_logits(self) -> Tensor:
        return self.u @ self.v.T


def _sample_static_walks(
    num_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    num_walks: int,
    length: int,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Uniform random walks on the undirected snapshot graph."""
    neighbors: dict = {}
    for s, d in zip(src.tolist(), dst.tolist()):
        neighbors.setdefault(s, []).append(d)
        neighbors.setdefault(d, []).append(s)
    starts = list(neighbors)
    walks: List[np.ndarray] = []
    if not starts:
        return walks
    for _ in range(num_walks):
        node = starts[int(rng.integers(0, len(starts)))]
        walk = [node]
        for _ in range(length - 1):
            nexts = neighbors.get(node)
            if not nexts:
                break
            node = nexts[int(rng.integers(0, len(nexts)))]
            walk.append(node)
        if len(walk) >= 2:
            walks.append(np.asarray(walk, dtype=np.int64))
    return walks


class NetGANGenerator(PerSnapshotGenerator):
    """Per-snapshot low-rank walk model (NetGAN-without-GAN formulation)."""

    name = "NetGAN"

    def __init__(
        self,
        rank: int = 16,
        num_walks: int = 200,
        walk_length: int = 8,
        epochs: int = 20,
        learning_rate: float = 5e-2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.rank = rank
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed

    def _fit_snapshot(self, num_nodes: int, timestamp: int, snapshot) -> object:
        rng = stream(self.seed, "netgan", "snapshot", timestamp)
        walks = _sample_static_walks(
            num_nodes, snapshot.src, snapshot.dst, self.num_walks, self.walk_length, rng
        )
        if not walks:
            return np.ones((num_nodes, num_nodes))
        current = np.concatenate([w[:-1] for w in walks])
        target = np.concatenate([w[1:] for w in walks])
        model = _WalkModel(num_nodes, self.rank, rng)
        optimizer = Adam(model.parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            logits = model(current)
            loss = cross_entropy_with_logits(logits, target)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        # Edge score = visit frequency of u times learned transition u -> v,
        # NetGAN's walk-count score matrix in expectation.
        with no_grad():
            logits = model.full_logits().numpy()
        logits -= logits.max(axis=1, keepdims=True)
        transition = np.exp(logits)
        transition /= transition.sum(axis=1, keepdims=True)
        visit = np.bincount(current, minlength=num_nodes).astype(np.float64)
        visit /= max(visit.sum(), 1.0)
        return transition * visit[:, None]

    def _sample_snapshot(
        self,
        num_nodes: int,
        timestamp: int,
        num_edges: int,
        state: object,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return sample_edges_from_scores(np.asarray(state), num_edges, rng)
