"""Variational Graph Auto-Encoder baseline (Kipf & Welling, 2016).

Per snapshot: a two-layer GCN encoder infers per-node Gaussian posteriors,
the inner-product decoder ``sigmoid(z_u . z_v)`` scores every pair, and the
model is trained with class-weighted BCE + KL.  Applied per timestamp as the
paper prescribes for static baselines.  The dense ``n x n`` score matrix is
the memory behaviour responsible for VGAE's OOM entries in Tables IV-VI.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..autograd import Tensor, binary_cross_entropy_with_logits, kl_standard_normal, no_grad
from ..nn import Module, Parameter
from ..nn import init as nn_init
from ..optim import Adam
from ..rng import stream
from .common import (
    GCNLayer,
    PerSnapshotGenerator,
    normalized_adjacency,
    sample_edges_from_scores,
)


class _VGAEModel(Module):
    """Two-layer GCN encoder + inner-product decoder."""

    def __init__(self, num_nodes: int, hidden: int, latent: int, rng: np.random.Generator) -> None:
        super().__init__()
        # Featureless setting: learnable input embedding (identity features).
        self.features = Parameter(nn_init.normal((num_nodes, hidden), rng, std=0.1))
        self.gcn1 = GCNLayer(hidden, hidden, rng=rng, activation="relu")
        self.gcn_mu = GCNLayer(hidden, latent, rng=rng, activation="none")
        self.gcn_sigma = GCNLayer(hidden, latent, rng=rng, activation="none")
        self._noise = np.random.default_rng(int(rng.integers(0, 2**31)))

    def encode(self, a_hat: Tensor, sample: bool) -> Tuple[Tensor, Tensor, Tensor]:
        h = self.gcn1(a_hat, self.features)
        mu = self.gcn_mu(a_hat, h)
        log_sigma = self.gcn_sigma(a_hat, h).clip(-6.0, 4.0)
        if sample:
            z = mu + log_sigma.exp() * Tensor(self._noise.standard_normal(mu.shape))
        else:
            z = mu
        return z, mu, log_sigma

    def forward(self, a_hat: Tensor, sample: bool = True):
        z, mu, log_sigma = self.encode(a_hat, sample)
        logits = z @ z.T
        return logits, mu, log_sigma


class VGAEGenerator(PerSnapshotGenerator):
    """Per-snapshot VGAE, trained independently for each timestamp."""

    name = "VGAE"

    def __init__(
        self,
        hidden_dim: int = 16,
        latent_dim: int = 8,
        epochs: int = 15,
        learning_rate: float = 1e-2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.latent_dim = latent_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed

    def _fit_snapshot(self, num_nodes: int, timestamp: int, snapshot) -> object:
        rng = stream(self.seed, "vgae", "snapshot", timestamp)
        # The snapshot's cached CSR (shared with metrics and the other GCN
        # baselines fitting on the same graph); densified only at the model
        # boundary (dense GCN + dense BCE target).
        adj_sparse = snapshot.undirected_adjacency()
        a_hat = Tensor(normalized_adjacency(adj_sparse))
        adj = adj_sparse.toarray()
        model = _VGAEModel(num_nodes, self.hidden_dim, self.latent_dim, rng)
        if snapshot.num_edges:
            optimizer = Adam(model.parameters(), lr=self.learning_rate)
            # Class-balanced BCE: positives are rare in sparse snapshots.
            pos = adj.sum()
            weight = np.where(adj > 0, (num_nodes * num_nodes - pos) / max(pos, 1.0), 1.0)
            weight /= weight.mean()
            for _ in range(self.epochs):
                logits, mu, log_sigma = model(a_hat, sample=True)
                loss = binary_cross_entropy_with_logits(logits, adj, weight=weight)
                loss = loss + 1e-3 * kl_standard_normal(mu, log_sigma)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        with no_grad():
            logits, _, _ = model(a_hat, sample=False)
            scores = 1.0 / (1.0 + np.exp(-logits.numpy()))
        return scores

    def _sample_snapshot(
        self,
        num_nodes: int,
        timestamp: int,
        num_edges: int,
        state: object,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return sample_edges_from_scores(np.asarray(state), num_edges, rng)
