"""Shared machinery for the baseline generators.

The static baselines (NetGAN, VGAE, Graphite, SBMGNN, E-R, B-A) are not
temporal models; following Sec. V-B of the paper they are applied per
timestamp ("we separately generate snapshots of the temporal graph at each
timestamp") and the snapshots are concatenated into a temporal graph.
:class:`PerSnapshotGenerator` implements that protocol once; each static
baseline only supplies a per-snapshot ``fit``/``sample`` pair.

:class:`GCNLayer` is the graph-convolution used by the auto-encoder family
(VGAE, Graphite, SBMGNN): symmetric-normalised dense propagation, adequate
for the snapshot sizes these baselines can handle (they are the methods that
go OOM first in the paper's experiments, and the dense representation is
faithful to that behaviour).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor
from ..base import TemporalGraphGenerator
from ..graph.snapshot import Snapshot
from ..graph.temporal_graph import TemporalGraph
from ..nn import Module, Parameter
from ..nn import init as nn_init


def snapshot_dense_adjacency(
    num_nodes: int, src: np.ndarray, dst: np.ndarray, symmetric: bool = True
) -> np.ndarray:
    """Dense snapshot adjacency via the shared ``Snapshot`` CSR builder.

    Debug/test helper for raw edge arrays (deduplicated binary, self-loops
    dropped, optionally symmetrised).  Production baselines fitting on a
    :class:`TemporalGraph` read ``self.observed.snapshot_view(t)`` instead,
    so the graph-level snapshot cache is shared, and densify only at their
    own model boundary.
    """
    snapshot = Snapshot(num_nodes, src, dst)
    if symmetric:
        return snapshot.undirected_adjacency().toarray()
    adj = snapshot.adjacency().copy()
    adj.setdiag(0)
    adj.eliminate_zeros()
    return adj.toarray()


def normalized_adjacency(adj: Union[np.ndarray, sp.spmatrix]) -> np.ndarray:
    """Symmetric normalisation ``D^{-1/2} (A + I) D^{-1/2}`` (Kipf & Welling).

    Accepts a dense array or any scipy sparse matrix; the normalisation runs
    in the input's representation and the result is returned dense, since it
    feeds the dense GCN propagation of :class:`GCNLayer`.
    """
    if sp.issparse(adj):
        n = adj.shape[0]
        a_hat = (adj + sp.identity(n, format="csr")).tocsr()
        degree = np.asarray(a_hat.sum(axis=1)).reshape(-1)
        d_inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
        normed = a_hat.multiply(d_inv_sqrt[:, None]).multiply(d_inv_sqrt[None, :])
        return np.asarray(normed.todense())
    a_hat = adj + np.eye(adj.shape[0])
    degree = a_hat.sum(axis=1)
    d_inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    return a_hat * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]


class GCNLayer(Module):
    """One dense graph-convolution layer ``act(A_hat X W)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        activation: str = "relu",
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.weight = Parameter(nn_init.xavier_uniform((in_features, out_features), rng))
        self.activation = activation

    def forward(self, a_hat: Tensor, x: Tensor) -> Tensor:
        out = a_hat @ (x @ self.weight)
        if self.activation == "relu":
            return out.relu()
        if self.activation == "tanh":
            return out.tanh()
        return out


def sample_edges_from_scores(
    scores: np.ndarray,
    num_edges: int,
    rng: np.random.Generator,
    allow_self_loops: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``num_edges`` distinct directed edges proportionally to ``scores``.

    Used by every dense-score static baseline: scores are flattened into one
    categorical and edges drawn without replacement via Gumbel top-k.
    """
    probs = scores.astype(np.float64).copy()
    if not allow_self_loops:
        np.fill_diagonal(probs, 0.0)
    flat = probs.reshape(-1)
    total = flat.sum()
    if total <= 0:
        flat = np.ones_like(flat)
        if not allow_self_loops:
            flat.reshape(probs.shape)[np.diag_indices(probs.shape[0])] = 0.0
        total = flat.sum()
    flat = flat / total
    count = min(num_edges, int(np.count_nonzero(flat)))
    gumbel = -np.log(-np.log(rng.random(flat.size) + 1e-300) + 1e-300)
    log_p = np.log(np.where(flat > 0, flat, 1.0))
    keys = np.where(flat > 0, log_p + gumbel, -np.inf)
    picked = np.argpartition(-keys, count - 1)[:count]
    n = scores.shape[0]
    return (picked // n).astype(np.int64), (picked % n).astype(np.int64)


class PerSnapshotGenerator(TemporalGraphGenerator):
    """Adapter that runs a static generative model once per timestamp.

    Subclasses implement :meth:`_fit_snapshot` (learn from one snapshot's
    edges) and :meth:`_sample_snapshot` (emit a fixed number of edges).
    State between timestamps is up to the subclass (most are independent).
    """

    def __init__(self) -> None:
        super().__init__()
        self._edge_counts: List[int] = []

    def _fit(self, graph: TemporalGraph) -> None:
        self._edge_counts = []
        self._snapshot_states: List[object] = []
        for timestamp in range(graph.num_timestamps):
            # The graph's cached snapshot view: edge slices and any CSR
            # built on them are shared with every other consumer of the
            # same observed graph, e.g. other baselines in one bench run.
            snapshot = graph.snapshot_view(timestamp)
            self._edge_counts.append(snapshot.num_edges)
            self._snapshot_states.append(
                self._fit_snapshot(graph.num_nodes, timestamp, snapshot)
            )

    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        graph = self.observed
        rng = np.random.default_rng(seed)
        srcs, dsts, ts = [], [], []
        for timestamp in range(graph.num_timestamps):
            count = self._edge_counts[timestamp]
            if count == 0:
                continue
            state = self._snapshot_states[timestamp]
            src, dst = self._sample_snapshot(graph.num_nodes, timestamp, count, state, rng)
            srcs.append(src)
            dsts.append(dst)
            ts.append(np.full(src.size, timestamp, dtype=np.int64))
        return TemporalGraph(
            graph.num_nodes,
            np.concatenate(srcs) if srcs else np.array([], dtype=np.int64),
            np.concatenate(dsts) if dsts else np.array([], dtype=np.int64),
            np.concatenate(ts) if ts else np.array([], dtype=np.int64),
            num_timestamps=graph.num_timestamps,
            validate=False,
        )

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _fit_snapshot(
        self, num_nodes: int, timestamp: int, snapshot: Snapshot
    ) -> object:
        """Learn from one snapshot; returns an opaque per-snapshot state.

        ``snapshot`` is the observed graph's *cached*
        :class:`~repro.graph.snapshot.Snapshot` view of this timestamp: its
        edge arrays and CSR adjacency are the single source of truth, shared
        with every other consumer of the same graph.
        """

    @abc.abstractmethod
    def _sample_snapshot(
        self,
        num_nodes: int,
        timestamp: int,
        num_edges: int,
        state: object,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Emit ``num_edges`` edges for one snapshot."""
