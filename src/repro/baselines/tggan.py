"""TGGAN baseline (Zhang et al., WWW 2021).

TGGAN extends TagGen with a full generative-adversarial framework over
temporal random walks: a recurrent *generator* maps noise to sequences of
(node, time) tokens and a recurrent *discriminator* judges walk validity.
We implement the adversarial loop with the straight-through Gumbel-softmax
relaxation so gradients flow from the discriminator into the generator's
discrete token choices -- the standard trick for walk GANs.

Time-validity is enforced the way TGGAN does: generated time gaps are
non-negative, so walks respect temporal ordering by construction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, binary_cross_entropy_with_logits, no_grad, softmax
from ..base import TemporalGraphGenerator
from ..errors import GenerationError
from ..graph.temporal_graph import TemporalGraph
from ..graph.walks import sample_walk_corpus, walks_to_graph
from ..nn import GRUCell, Linear, Module
from ..optim import Adam, clip_grad_norm
from ..rng import stream


class _Generator(Module):
    """GRU mapping a noise vector to a sequence of node distributions."""

    def __init__(
        self, num_nodes: int, noise_dim: int, hidden_dim: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.noise_proj = Linear(noise_dim, hidden_dim, rng=rng)
        self.cell = GRUCell(hidden_dim, hidden_dim, rng=rng)
        self.node_head = Linear(hidden_dim, num_nodes, rng=rng)
        self.feedback = Linear(num_nodes, hidden_dim, rng=rng)

    def roll(self, noise: Tensor, length: int, temperature: float, rng: np.random.Generator):
        """Unroll ``length`` steps; returns a list of soft one-hot tensors."""
        h = self.noise_proj(noise).tanh()
        x = h
        soft_tokens: List[Tensor] = []
        for _ in range(length):
            h = self.cell(x, h)
            logits = self.node_head(h)
            gumbel = -np.log(-np.log(rng.random(logits.shape) + 1e-300) + 1e-300)
            soft = softmax((logits + Tensor(gumbel)) * (1.0 / temperature), axis=-1)
            soft_tokens.append(soft)
            x = self.feedback(soft).tanh()
        return soft_tokens


class _Discriminator(Module):
    """GRU classifier over (soft or hard) node-token sequences."""

    def __init__(self, num_nodes: int, embed_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.embed = Linear(num_nodes, embed_dim, bias=False, rng=rng)
        self.cell = GRUCell(embed_dim, hidden_dim, rng=rng)
        self.head = Linear(hidden_dim, 1, rng=rng)

    def forward(self, token_seq: List[Tensor]) -> Tensor:
        batch = token_seq[0].shape[0]
        h = self.cell.initial_state(batch)
        for token in token_seq:
            h = self.cell(self.embed(token), h)
        return self.head(h).reshape(batch)


class TGGANGenerator(TemporalGraphGenerator):
    """Adversarially-trained temporal walk generator."""

    name = "TGGAN"

    def __init__(
        self,
        num_walks: int = 200,
        walk_length: int = 6,
        time_window: int = 3,
        noise_dim: int = 8,
        hidden_dim: int = 24,
        embed_dim: int = 16,
        train_steps: int = 40,
        batch_size: int = 16,
        learning_rate: float = 2e-3,
        temperature: float = 0.8,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.time_window = time_window
        self.noise_dim = noise_dim
        self.hidden_dim = hidden_dim
        self.embed_dim = embed_dim
        self.train_steps = train_steps
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.temperature = temperature
        self.seed = seed
        self.generator: Optional[_Generator] = None
        self._start_times: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _fit(self, graph: TemporalGraph) -> None:
        rng = np.random.default_rng(self.seed)
        corpus = sample_walk_corpus(
            graph, self.num_walks, self.walk_length, self.time_window, rng,
            time_respecting=True,
        )
        self._start_times = np.asarray([int(times[0]) for _, times in corpus], dtype=np.int64)
        # Real walks as hard one-hot sequences of fixed length (padded by
        # repeating the last node, which TGGAN's time-validity also allows).
        real_walks = np.zeros((len(corpus), self.walk_length), dtype=np.int64)
        for i, (nodes, _) in enumerate(corpus):
            padded = np.concatenate(
                [nodes, np.full(self.walk_length - nodes.size, nodes[-1], dtype=np.int64)]
            ) if nodes.size < self.walk_length else nodes[: self.walk_length]
            real_walks[i] = padded

        gen = _Generator(graph.num_nodes, self.noise_dim, self.hidden_dim, rng)
        disc = _Discriminator(graph.num_nodes, self.embed_dim, self.hidden_dim, rng)
        g_opt = Adam(gen.parameters(), lr=self.learning_rate)
        d_opt = Adam(disc.parameters(), lr=self.learning_rate)
        eye = np.eye(graph.num_nodes)

        for _ in range(self.train_steps):
            # --- Discriminator step ---------------------------------------
            idx = rng.integers(0, real_walks.shape[0], size=self.batch_size)
            real_seq = [Tensor(eye[real_walks[idx, pos]]) for pos in range(self.walk_length)]
            noise = Tensor(rng.standard_normal((self.batch_size, self.noise_dim)))
            fake_seq = gen.roll(noise, self.walk_length, self.temperature, rng)
            fake_detached = [Tensor(tok.numpy()) for tok in fake_seq]
            d_loss = binary_cross_entropy_with_logits(
                disc(real_seq), np.ones(self.batch_size)
            ) + binary_cross_entropy_with_logits(
                disc(fake_detached), np.zeros(self.batch_size)
            )
            d_opt.zero_grad()
            d_loss.backward()
            clip_grad_norm(disc.parameters(), 5.0)
            d_opt.step()
            # --- Generator step (non-saturating loss) ---------------------
            noise = Tensor(rng.standard_normal((self.batch_size, self.noise_dim)))
            fake_seq = gen.roll(noise, self.walk_length, self.temperature, rng)
            g_loss = binary_cross_entropy_with_logits(
                disc(fake_seq), np.ones(self.batch_size)
            )
            g_opt.zero_grad()
            g_loss.backward()
            clip_grad_norm(gen.parameters(), 5.0)
            g_opt.step()
        self.generator = gen

    # ------------------------------------------------------------------
    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        if self.generator is None or self._start_times is None:
            raise GenerationError("TGGAN generator missing after fit")
        graph = self.observed
        rng = (
            np.random.default_rng(seed)
            if seed is not None
            else stream(self.seed, "tggan", "generate")
        )
        needed = graph.num_edges
        collected = 0
        walks: List[Tuple[np.ndarray, np.ndarray]] = []
        with no_grad():
            while collected < needed:
                noise = Tensor(rng.standard_normal((self.batch_size, self.noise_dim)))
                soft_seq = self.generator.roll(noise, self.walk_length, self.temperature, rng)
                tokens = np.stack([tok.numpy().argmax(axis=1) for tok in soft_seq], axis=1)
                start_t = self._start_times[
                    rng.integers(0, self._start_times.size, size=self.batch_size)
                ]
                for i in range(self.batch_size):
                    # Non-negative time gaps: walks move forward in time.
                    gaps = rng.integers(0, self.time_window + 1, size=self.walk_length - 1)
                    times = np.minimum(
                        start_t[i] + np.concatenate([[0], np.cumsum(gaps)]),
                        graph.num_timestamps - 1,
                    )
                    walks.append((tokens[i], times.astype(np.int64)))
                    collected += self.walk_length - 1
                    if collected >= needed:
                        break
        return walks_to_graph(
            walks, graph.num_nodes, graph.num_timestamps, target_edges=needed, rng=rng
        )
