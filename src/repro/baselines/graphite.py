"""Graphite baseline (Grover, Zweig & Ermon, ICML 2019).

Same variational GCN encoder as VGAE, but the decoder iteratively *refines*
the latent codes through the implicitly-generated graph before the final
inner product: intermediate codes are propagated through the normalised
soft adjacency ``sigmoid(Z Z^T)`` (low-rank message passing), which lets the
decoder express structure beyond a single inner product.  Applied per
snapshot like the other static auto-encoder baselines.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..autograd import Tensor, binary_cross_entropy_with_logits, kl_standard_normal, no_grad
from ..nn import Linear, Module, Parameter
from ..nn import init as nn_init
from ..optim import Adam
from ..rng import stream
from .common import (
    GCNLayer,
    PerSnapshotGenerator,
    normalized_adjacency,
    sample_edges_from_scores,
)


class _GraphiteModel(Module):
    """VGAE encoder + iterative low-rank refinement decoder."""

    def __init__(
        self,
        num_nodes: int,
        hidden: int,
        latent: int,
        rng: np.random.Generator,
        refine_steps: int = 2,
    ) -> None:
        super().__init__()
        self.features = Parameter(nn_init.normal((num_nodes, hidden), rng, std=0.1))
        self.gcn1 = GCNLayer(hidden, hidden, rng=rng, activation="relu")
        self.gcn_mu = GCNLayer(hidden, latent, rng=rng, activation="none")
        self.gcn_sigma = GCNLayer(hidden, latent, rng=rng, activation="none")
        self.refine = Linear(latent, latent, rng=rng)
        self.refine_steps = refine_steps
        self._noise = np.random.default_rng(int(rng.integers(0, 2**31)))

    def forward(self, a_hat: Tensor, sample: bool = True):
        h = self.gcn1(a_hat, self.features)
        mu = self.gcn_mu(a_hat, h)
        log_sigma = self.gcn_sigma(a_hat, h).clip(-6.0, 4.0)
        if sample:
            z = mu + log_sigma.exp() * Tensor(self._noise.standard_normal(mu.shape))
        else:
            z = mu
        # Iterative refinement: propagate Z through the soft adjacency it
        # implies, using the low-rank identity (ZZ^T)X = Z(Z^T X) so the
        # dense matrix is never needed during refinement.
        for _ in range(self.refine_steps):
            norm = (z * z).sum(axis=1, keepdims=True).sqrt() + 1.0
            z_scaled = z / norm
            z = self.refine(z_scaled @ (z_scaled.T @ z)).tanh() + z
        logits = z @ z.T
        return logits, mu, log_sigma


class GraphiteGenerator(PerSnapshotGenerator):
    """Per-snapshot Graphite auto-encoder."""

    name = "Graphite"

    def __init__(
        self,
        hidden_dim: int = 16,
        latent_dim: int = 8,
        epochs: int = 15,
        learning_rate: float = 1e-2,
        refine_steps: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.latent_dim = latent_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.refine_steps = refine_steps
        self.seed = seed

    def _fit_snapshot(self, num_nodes: int, timestamp: int, snapshot) -> object:
        rng = stream(self.seed, "graphite", "snapshot", timestamp)
        adj_sparse = snapshot.undirected_adjacency()
        a_hat = Tensor(normalized_adjacency(adj_sparse))
        adj = adj_sparse.toarray()
        model = _GraphiteModel(
            num_nodes, self.hidden_dim, self.latent_dim, rng, refine_steps=self.refine_steps
        )
        if snapshot.num_edges:
            optimizer = Adam(model.parameters(), lr=self.learning_rate)
            pos = adj.sum()
            weight = np.where(adj > 0, (num_nodes * num_nodes - pos) / max(pos, 1.0), 1.0)
            weight /= weight.mean()
            for _ in range(self.epochs):
                logits, mu, log_sigma = model(a_hat, sample=True)
                loss = binary_cross_entropy_with_logits(logits, adj, weight=weight)
                loss = loss + 1e-3 * kl_standard_normal(mu, log_sigma)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        with no_grad():
            logits, _, _ = model(a_hat, sample=False)
            scores = 1.0 / (1.0 + np.exp(-logits.numpy()))
        return scores

    def _sample_snapshot(
        self,
        num_nodes: int,
        timestamp: int,
        num_edges: int,
        state: object,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return sample_edges_from_scores(np.asarray(state), num_edges, rng)
