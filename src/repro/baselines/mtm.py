"""Motif Transition Model baseline (Liu & Sariyüce, KDD 2023).

Cited in the paper's related work as a "simple and scalable simulator for
dynamic graphs": temporal motifs are not static objects but *evolve* --
an isolated edge grows into a wedge, a wedge closes into a triangle.  The
model estimates the transition rates between motif states from the observed
graph and replays the process.

Our implementation tracks, per timestamp, how many new edges (i) start a
new component-of-two, (ii) attach to an existing edge's endpoint (wedge
creation / star growth), and (iii) close a wedge into a triangle; generation
replays those rates against the evolving generated graph.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..base import TemporalGraphGenerator
from ..graph.temporal_graph import TemporalGraph
from ..rng import stream


class MotifTransitionGenerator(TemporalGraphGenerator):
    """Replay of observed edge->wedge->triangle transition rates."""

    name = "MTM"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        # Per timestamp: (p_new, p_attach, p_close) transition mix.
        self._rates: List[Tuple[float, float, float]] = []
        self._edges_per_t: List[int] = []

    # ------------------------------------------------------------------
    def _fit(self, graph: TemporalGraph) -> None:
        self._rates = []
        self._edges_per_t = []
        adjacency: dict = {}
        touched: set = set()
        for _, src, dst in graph.snapshots():
            new = attach = close = 0
            for u, v in zip(src.tolist(), dst.tolist()):
                if u == v:
                    continue
                u_known = u in touched
                v_known = v in touched
                common = adjacency.get(u, set()) & adjacency.get(v, set())
                if common:
                    close += 1
                elif u_known or v_known:
                    attach += 1
                else:
                    new += 1
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
                touched.add(u)
                touched.add(v)
            total = max(new + attach + close, 1)
            self._rates.append((new / total, attach / total, close / total))
            self._edges_per_t.append(int(src.size))

    # ------------------------------------------------------------------
    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        graph = self.observed
        rng = (
            np.random.default_rng(seed)
            if seed is not None
            else stream(self.seed, "mtm", "generate")
        )
        adjacency: dict = {}
        active: List[int] = []
        srcs: List[int] = []
        dsts: List[int] = []
        ts: List[int] = []

        def add_edge(u: int, v: int, timestamp: int) -> None:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
            if u not in active_set:
                active_set.add(u)
                active.append(u)
            if v not in active_set:
                active_set.add(v)
                active.append(v)
            srcs.append(u)
            dsts.append(v)
            ts.append(timestamp)

        active_set: set = set()
        for timestamp, (p_new, p_attach, p_close) in enumerate(self._rates):
            for _ in range(self._edges_per_t[timestamp]):
                roll = rng.random()
                if roll < p_close and active:
                    # Close a wedge: pick a node, connect two of its neighbours.
                    pivot = active[int(rng.integers(0, len(active)))]
                    neighbours = list(adjacency.get(pivot, ()))
                    if len(neighbours) >= 2:
                        a, b = rng.choice(len(neighbours), size=2, replace=False)
                        add_edge(neighbours[a], neighbours[b], timestamp)
                        continue
                    roll = p_close  # fall through to attach
                if roll < p_close + p_attach and active:
                    # Attach: extend an active node with a fresh partner.
                    anchor = active[int(rng.integers(0, len(active)))]
                    partner = int(rng.integers(0, graph.num_nodes))
                    if partner == anchor:
                        partner = (partner + 1) % graph.num_nodes
                    add_edge(anchor, partner, timestamp)
                    continue
                # New component: two uniform nodes.
                u = int(rng.integers(0, graph.num_nodes))
                v = int(rng.integers(0, graph.num_nodes))
                if v == u:
                    v = (v + 1) % graph.num_nodes
                add_edge(u, v, timestamp)
        return TemporalGraph(
            graph.num_nodes,
            np.asarray(srcs, dtype=np.int64),
            np.asarray(dsts, dtype=np.int64),
            np.asarray(ts, dtype=np.int64),
            num_timestamps=graph.num_timestamps,
            validate=False,
        )
