"""Erdős–Rényi baseline (E-R in the paper's tables).

The simplest model-based generator: for every timestamp, emit the observed
number of edges uniformly at random over ordered node pairs.  Fast and
scalable, but structurally blind -- which is exactly the behaviour the
paper's Tables IV-VI document.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .common import PerSnapshotGenerator


class ErdosRenyiGenerator(PerSnapshotGenerator):
    """Per-snapshot uniform random edges (G(n, m) per timestamp)."""

    name = "E-R"

    def _fit_snapshot(self, num_nodes: int, timestamp: int, snapshot) -> object:
        # G(n, m) has no parameters beyond the edge count, which the adapter
        # already records.
        return None

    def _sample_snapshot(
        self,
        num_nodes: int,
        timestamp: int,
        num_edges: int,
        state: object,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        src = rng.integers(0, num_nodes, size=num_edges)
        dst = rng.integers(0, num_nodes, size=num_edges)
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % num_nodes
        return src.astype(np.int64), dst.astype(np.int64)
