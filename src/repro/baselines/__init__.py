"""The ten comparison methods of Sec. V, behind the common generator API.

========== ============================= ==============================
Name       Class                         Family
========== ============================= ==============================
TIGGER     :class:`TiggerGenerator`      temporal walks, recurrent MLE
DYMOND     :class:`DymondGenerator`      dynamic motif model
TGGAN      :class:`TGGANGenerator`       temporal walk GAN
TagGen     :class:`TagGenGenerator`      temporal walk + discriminator
NetGAN     :class:`NetGANGenerator`      static walk model (per snapshot)
E-R        :class:`ErdosRenyiGenerator`  random graph (per snapshot)
B-A        :class:`BarabasiAlbertGenerator` preferential attachment
VGAE       :class:`VGAEGenerator`        variational GCN auto-encoder
Graphite   :class:`GraphiteGenerator`    iterative-refinement VGAE
SBMGNN     :class:`SBMGNNGenerator`      GNN-parameterised overlapping SBM
========== ============================= ==============================
"""

from typing import Callable, Dict

from ..base import TemporalGraphGenerator
from .ba import BarabasiAlbertGenerator
from .dymond import DymondGenerator
from .er import ErdosRenyiGenerator
from .graphite import GraphiteGenerator
from .mtm import MotifTransitionGenerator
from .netgan import NetGANGenerator
from .rtgen import RTGenGenerator
from .sbmgnn import SBMGNNGenerator
from .taggen import TagGenGenerator
from .ted import TEDGenerator
from .tggan import TGGANGenerator
from .tigger import TiggerGenerator
from .vgae import VGAEGenerator

#: Factory registry in the paper's column order (Tables IV-VI).
BASELINES: Dict[str, Callable[[], TemporalGraphGenerator]] = {
    "TIGGER": TiggerGenerator,
    "DYMOND": DymondGenerator,
    "TGGAN": TGGANGenerator,
    "TagGen": TagGenGenerator,
    "NetGAN": NetGANGenerator,
    "E-R": ErdosRenyiGenerator,
    "B-A": BarabasiAlbertGenerator,
    "VGAE": VGAEGenerator,
    "Graphite": GraphiteGenerator,
    "SBMGNN": SBMGNNGenerator,
}

#: Extra non-learning temporal generators from the paper's related work
#: (Sec. II-C); not part of the paper's comparison tables but useful
#: comparators in their own right.
EXTRA_BASELINES: Dict[str, Callable[[], TemporalGraphGenerator]] = {
    "RTGEN": RTGenGenerator,
    "MTM": MotifTransitionGenerator,
    "TED": TEDGenerator,
}

__all__ = [
    "BASELINES",
    "EXTRA_BASELINES",
    "RTGenGenerator",
    "MotifTransitionGenerator",
    "TEDGenerator",
    "TiggerGenerator",
    "DymondGenerator",
    "TGGANGenerator",
    "TagGenGenerator",
    "NetGANGenerator",
    "ErdosRenyiGenerator",
    "BarabasiAlbertGenerator",
    "VGAEGenerator",
    "GraphiteGenerator",
    "SBMGNNGenerator",
]
