"""RTGEN-style baseline: degree-distribution-evolution generator.

RTGEN++ (Massri et al., FGCS 2023 -- cited in the paper's related work as a
scalable non-learning temporal generator) models how the *degree
distribution* evolves over time and synthesises each snapshot to match it.
Our implementation estimates, per timestamp, the out- and in-degree
sequences of the observed snapshot and regenerates edges with a
configuration-model-style pairing of degree-weighted stubs -- preserving the
degree evolution exactly in expectation while remaining blind to
higher-order and motif structure (its characteristic trade-off).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .common import PerSnapshotGenerator


class RTGenGenerator(PerSnapshotGenerator):
    """Per-snapshot directed configuration model on observed degree sequences."""

    name = "RTGEN"

    def _fit_snapshot(self, num_nodes: int, timestamp: int, snapshot) -> object:
        out_degree = np.bincount(snapshot.src, minlength=num_nodes).astype(np.float64)
        in_degree = np.bincount(snapshot.dst, minlength=num_nodes).astype(np.float64)
        return out_degree, in_degree

    def _sample_snapshot(
        self,
        num_nodes: int,
        timestamp: int,
        num_edges: int,
        state: object,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        out_degree, in_degree = state
        out_total = out_degree.sum()
        in_total = in_degree.sum()
        if out_total == 0 or in_total == 0:
            src = rng.integers(0, num_nodes, size=num_edges)
            dst = rng.integers(0, num_nodes, size=num_edges)
        else:
            # Degree-weighted stub matching: each edge independently draws a
            # source from the out-stub distribution and a target from the
            # in-stub distribution (expected degrees preserved).
            src = rng.choice(num_nodes, size=num_edges, p=out_degree / out_total)
            dst = rng.choice(num_nodes, size=num_edges, p=in_degree / in_total)
        loops = src == dst
        dst = np.where(loops, (dst + 1) % num_nodes, dst)
        return src.astype(np.int64), dst.astype(np.int64)
