"""TagGen baseline (Zhou et al., KDD 2020).

TagGen decomposes the observed temporal graph into *temporal random walks*
over temporal nodes ``(v, t)``, learns their distribution, generates new
walks, filters them with a discriminator, and assembles the surviving walks
into a synthetic graph.  Our reimplementation keeps each of those stages:

1. time-respecting walk sampling within a window (shared walk substrate);
2. a smoothed bigram transition model over temporal nodes -- the O(T^2)
   coupling of node-time pairs that drives TagGen's memory footprint;
3. an MLP discriminator trained to separate observed walks from
   noise-perturbed walks, used to reject implausible generated walks;
4. walk-to-graph assembly down-sampled to the observed edge budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, binary_cross_entropy_with_logits, no_grad
from ..base import TemporalGraphGenerator
from ..errors import GenerationError
from ..graph.temporal_graph import TemporalGraph
from ..graph.walks import sample_walk_corpus, walks_to_graph
from ..nn import MLP, Embedding, Module
from ..optim import Adam
from ..rng import stream

TemporalNodeKey = int  # node * T + t


class _WalkDiscriminator(Module):
    """Mean-pooled embedding MLP scoring walk plausibility."""

    def __init__(self, num_nodes: int, num_timestamps: int, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.node_emb = Embedding(num_nodes, dim, rng=rng)
        self.time_emb = Embedding(num_timestamps, dim, rng=rng)
        self.head = MLP([dim, dim, 1], rng=rng)

    def forward(self, nodes: np.ndarray, times: np.ndarray) -> Tensor:
        feats = self.node_emb(nodes) + self.time_emb(times)  # (len, dim)
        pooled = feats.mean(axis=0).reshape(1, -1)
        return self.head(pooled).reshape(1)


class TagGenGenerator(TemporalGraphGenerator):
    """Temporal-random-walk bigram model with discriminator filtering."""

    name = "TagGen"

    def __init__(
        self,
        num_walks: int = 400,
        walk_length: int = 8,
        time_window: int = 3,
        smoothing: float = 0.05,
        disc_dim: int = 16,
        disc_epochs: int = 5,
        acceptance_quantile: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.time_window = time_window
        self.smoothing = smoothing
        self.disc_dim = disc_dim
        self.disc_epochs = disc_epochs
        self.acceptance_quantile = acceptance_quantile
        self.seed = seed
        self._transitions: Dict[TemporalNodeKey, Tuple[np.ndarray, np.ndarray]] = {}
        self._starts: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._discriminator: Optional[_WalkDiscriminator] = None
        self._threshold: float = -np.inf

    # ------------------------------------------------------------------
    def _key(self, node: int, timestamp: int) -> TemporalNodeKey:
        return node * self.observed.num_timestamps + timestamp

    def _fit(self, graph: TemporalGraph) -> None:
        rng = np.random.default_rng(self.seed)
        corpus = sample_walk_corpus(
            graph,
            self.num_walks,
            self.walk_length,
            self.time_window,
            rng,
            time_respecting=True,
        )
        # --- Bigram transition statistics over temporal nodes -------------
        counts: Dict[TemporalNodeKey, Dict[TemporalNodeKey, float]] = {}
        start_keys: List[TemporalNodeKey] = []
        for nodes, times in corpus:
            start_keys.append(self._key(int(nodes[0]), int(times[0])))
            for i in range(nodes.size - 1):
                a = self._key(int(nodes[i]), int(times[i]))
                b = self._key(int(nodes[i + 1]), int(times[i + 1]))
                counts.setdefault(a, {})[b] = counts.setdefault(a, {}).get(b, 0.0) + 1.0
        self._transitions = {}
        for a, successors in counts.items():
            keys = np.asarray(list(successors), dtype=np.int64)
            values = np.asarray([successors[k] for k in successors], dtype=np.float64)
            values = values + self.smoothing
            self._transitions[a] = (keys, values / values.sum())
        unique_starts, start_counts = np.unique(np.asarray(start_keys), return_counts=True)
        self._starts = (unique_starts, start_counts / start_counts.sum())

        # --- Discriminator: observed walks vs node-shuffled walks ---------
        disc_rng = stream(self.seed, "taggen", "discriminator")
        disc = _WalkDiscriminator(graph.num_nodes, graph.num_timestamps, self.disc_dim, disc_rng)
        optimizer = Adam(disc.parameters(), lr=1e-2)
        sample = corpus[: min(len(corpus), 100)]
        for _ in range(self.disc_epochs):
            for nodes, times in sample:
                fake_nodes = disc_rng.integers(0, graph.num_nodes, size=nodes.size)
                for walk_nodes, walk_times, label in (
                    (nodes, times, 1.0),
                    (fake_nodes, times, 0.0),
                ):
                    logit = disc(walk_nodes, walk_times)
                    loss = binary_cross_entropy_with_logits(logit, np.array([label]))
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
        self._discriminator = disc
        # Acceptance threshold from real-walk score distribution.
        with no_grad():
            scores = [float(disc(nodes, times).item()) for nodes, times in sample]
        self._threshold = float(np.quantile(scores, self.acceptance_quantile))

    # ------------------------------------------------------------------
    def _generate_walk(self, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        assert self._starts is not None
        big_t = self.observed.num_timestamps
        keys, probs = self._starts
        current = int(rng.choice(keys, p=probs))
        walk = [current]
        for _ in range(self.walk_length - 1):
            entry = self._transitions.get(current)
            if entry is None:
                break
            succ_keys, succ_probs = entry
            current = int(rng.choice(succ_keys, p=succ_probs))
            walk.append(current)
        arr = np.asarray(walk, dtype=np.int64)
        return arr // big_t, arr % big_t

    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        graph = self.observed
        rng = (
            np.random.default_rng(seed)
            if seed is not None
            else stream(self.seed, "taggen", "generate")
        )
        disc = self._discriminator
        walks: List[Tuple[np.ndarray, np.ndarray]] = []
        needed_edges = graph.num_edges
        collected_edges = 0
        attempts = 0
        max_attempts = 50 * max(needed_edges // max(self.walk_length - 1, 1), 50)
        with no_grad():
            while collected_edges < needed_edges and attempts < max_attempts:
                attempts += 1
                nodes, times = self._generate_walk(rng)
                if nodes.size < 2:
                    continue
                if disc is not None and float(disc(nodes, times).item()) < self._threshold:
                    continue
                walks.append((nodes, times))
                collected_edges += nodes.size - 1
        if not walks:
            raise GenerationError("TagGen failed to generate any accepted walk")
        return walks_to_graph(
            walks, graph.num_nodes, graph.num_timestamps, target_edges=needed_edges, rng=rng
        )
