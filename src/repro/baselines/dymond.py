"""DYMOND baseline (Zeno, La Fond & Neville, WWW 2021).

DYMOND models a dynamic network as arrivals of *motifs* -- triangles, wedges
and single edges -- each with its own arrival rate, and node "roles" that
govern which nodes participate in which motif positions.  Our
reimplementation estimates, from the observed graph:

* per-timestamp motif mix (how many edges arrive as parts of triangles,
  wedges, and isolated edges), via a greedy motif decomposition of each
  snapshot;
* per-node activity weights (how often each node participates in motifs).

Generation replays the estimated motif mix timestamp by timestamp, sampling
participating nodes by activity weight.  The per-snapshot motif
decomposition is the cubic-flavoured cost centre that makes DYMOND the
slowest learner in the paper's Figure 6.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..base import TemporalGraphGenerator
from ..graph.temporal_graph import TemporalGraph
from ..rng import stream


class DymondGenerator(TemporalGraphGenerator):
    """Motif-arrival model: triangle / wedge / edge rates + node roles."""

    name = "DYMOND"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        # Per timestamp: (num_triangles, num_wedges, num_single_edges).
        self._motif_mix: List[Tuple[int, int, int]] = []
        self._node_weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _fit(self, graph: TemporalGraph) -> None:
        self._motif_mix = []
        participation = np.ones(graph.num_nodes, dtype=np.float64)
        for _, src, dst in graph.snapshots():
            mix = self._decompose_snapshot(src, dst)
            self._motif_mix.append(mix)
            np.add.at(participation, src, 1.0)
            np.add.at(participation, dst, 1.0)
        self._node_weights = participation / participation.sum()

    @staticmethod
    def _decompose_snapshot(src: np.ndarray, dst: np.ndarray) -> Tuple[int, int, int]:
        """Greedy decomposition of a snapshot into triangles, wedges, edges.

        Each undirected edge is assigned to at most one motif: triangles are
        claimed first, remaining edges pair into wedges around shared
        endpoints, leftovers count as single edges.
        """
        edges = set()
        adjacency: Dict[int, set] = {}
        for s, d in zip(src.tolist(), dst.tolist()):
            if s == d:
                continue
            a, b = (s, d) if s < d else (d, s)
            if (a, b) in edges:
                continue
            edges.add((a, b))
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        unused = set(edges)
        triangles = 0
        for a, b in sorted(edges):
            if (a, b) not in unused:
                continue
            common = adjacency.get(a, set()) & adjacency.get(b, set())
            for c in sorted(common):
                e2 = (min(a, c), max(a, c))
                e3 = (min(b, c), max(b, c))
                if e2 in unused and e3 in unused and (a, b) in unused:
                    unused.discard((a, b))
                    unused.discard(e2)
                    unused.discard(e3)
                    triangles += 1
                    break
        # Pair remaining edges into wedges around shared endpoints.
        remaining: Dict[int, List[Tuple[int, int]]] = {}
        for a, b in unused:
            remaining.setdefault(a, []).append((a, b))
            remaining.setdefault(b, []).append((a, b))
        wedge_used = set()
        wedges = 0
        for node in sorted(remaining):
            avail = [e for e in remaining[node] if e not in wedge_used]
            while len(avail) >= 2:
                wedge_used.add(avail.pop())
                wedge_used.add(avail.pop())
                wedges += 1
        singles = len(unused) - len(wedge_used)
        return triangles, wedges, singles

    # ------------------------------------------------------------------
    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        graph = self.observed
        rng = (
            np.random.default_rng(seed)
            if seed is not None
            else stream(self.seed, "dymond", "generate")
        )
        weights = self._node_weights
        assert weights is not None
        srcs: List[int] = []
        dsts: List[int] = []
        ts: List[int] = []

        def pick_nodes(count: int) -> np.ndarray:
            chosen = rng.choice(graph.num_nodes, size=count, replace=False, p=weights)
            return chosen.astype(np.int64)

        for timestamp, (n_tri, n_wedge, n_single) in enumerate(self._motif_mix):
            for _ in range(n_tri):
                a, b, c = pick_nodes(3)
                for u, v in ((a, b), (b, c), (a, c)):
                    srcs.append(int(u))
                    dsts.append(int(v))
                    ts.append(timestamp)
            for _ in range(n_wedge):
                a, b, c = pick_nodes(3)
                for u, v in ((a, b), (b, c)):
                    srcs.append(int(u))
                    dsts.append(int(v))
                    ts.append(timestamp)
            for _ in range(n_single):
                a, b = pick_nodes(2)
                srcs.append(int(a))
                dsts.append(int(b))
                ts.append(timestamp)
        # Match the observed edge budget exactly (motif rounding drifts by
        # a few edges per snapshot).
        src = np.asarray(srcs, dtype=np.int64)
        dst = np.asarray(dsts, dtype=np.int64)
        t = np.asarray(ts, dtype=np.int64)
        target = graph.num_edges
        if src.size > target:
            keep = rng.choice(src.size, size=target, replace=False)
            src, dst, t = src[keep], dst[keep], t[keep]
        elif src.size < target:
            extra = rng.integers(0, max(src.size, 1), size=target - src.size)
            src = np.concatenate([src, src[extra]])
            dst = np.concatenate([dst, dst[extra]])
            t = np.concatenate([t, t[extra]])
        return TemporalGraph(
            graph.num_nodes, src, dst, t, num_timestamps=graph.num_timestamps, validate=False
        )
