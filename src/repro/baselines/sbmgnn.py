"""SBMGNN baseline (Mehta, Duke & Rai, ICML 2019).

A graph neural network parameterising an *overlapping* stochastic
blockmodel: the GCN encoder infers non-negative community memberships
``pi_u`` per node, a learnable block affinity matrix ``B`` couples the
communities, and edge probabilities are ``sigmoid(pi_u^T B pi_v)``.  Applied
per snapshot, like the other static auto-encoder baselines.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..autograd import Tensor, binary_cross_entropy_with_logits, no_grad
from ..nn import Module, Parameter
from ..nn import init as nn_init
from ..optim import Adam
from ..rng import stream
from .common import (
    GCNLayer,
    PerSnapshotGenerator,
    normalized_adjacency,
    sample_edges_from_scores,
)


class _SBMGNNModel(Module):
    """GCN membership encoder + blockmodel decoder."""

    def __init__(
        self, num_nodes: int, hidden: int, communities: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.features = Parameter(nn_init.normal((num_nodes, hidden), rng, std=0.1))
        self.gcn1 = GCNLayer(hidden, hidden, rng=rng, activation="relu")
        self.gcn_pi = GCNLayer(hidden, communities, rng=rng, activation="none")
        # Block affinity initialised towards assortative structure.
        self.block = Parameter(
            0.5 * np.eye(communities) + nn_init.normal((communities, communities), rng, std=0.05)
        )

    def forward(self, a_hat: Tensor):
        h = self.gcn1(a_hat, self.features)
        # Softplus keeps memberships non-negative (overlapping SBM).
        raw = self.gcn_pi(a_hat, h)
        pi = (raw.exp() + 1.0).log()
        sym_block = (self.block + self.block.T) * 0.5
        logits = pi @ sym_block @ pi.T
        return logits, pi


class SBMGNNGenerator(PerSnapshotGenerator):
    """Per-snapshot overlapping-SBM GNN."""

    name = "SBMGNN"

    def __init__(
        self,
        hidden_dim: int = 16,
        num_communities: int = 8,
        epochs: int = 15,
        learning_rate: float = 1e-2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.num_communities = num_communities
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed

    def _fit_snapshot(self, num_nodes: int, timestamp: int, snapshot) -> object:
        rng = stream(self.seed, "sbmgnn", "snapshot", timestamp)
        adj_sparse = snapshot.undirected_adjacency()
        a_hat = Tensor(normalized_adjacency(adj_sparse))
        adj = adj_sparse.toarray()
        model = _SBMGNNModel(num_nodes, self.hidden_dim, self.num_communities, rng)
        if snapshot.num_edges:
            optimizer = Adam(model.parameters(), lr=self.learning_rate)
            pos = adj.sum()
            weight = np.where(adj > 0, (num_nodes * num_nodes - pos) / max(pos, 1.0), 1.0)
            weight /= weight.mean()
            for _ in range(self.epochs):
                logits, _ = model(a_hat)
                loss = binary_cross_entropy_with_logits(logits, adj, weight=weight)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        with no_grad():
            logits, _ = model(a_hat)
            scores = 1.0 / (1.0 + np.exp(-logits.numpy()))
        return scores

    def _sample_snapshot(
        self,
        num_nodes: int,
        timestamp: int,
        num_edges: int,
        state: object,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return sample_edges_from_scores(np.asarray(state), num_edges, rng)
