"""The common interface implemented by every temporal graph generator.

TGAE, all learning-based baselines, and the simple model-based baselines
expose the same two-phase API so the benchmark harness can treat them
uniformly:

* :meth:`TemporalGraphGenerator.fit` learns from an observed
  :class:`~repro.graph.temporal_graph.TemporalGraph`;
* :meth:`TemporalGraphGenerator.generate` samples a new temporal graph over
  the same node universe and timestamp range, with (approximately) the same
  number of temporal edges.
"""

from __future__ import annotations

import abc
from typing import Optional

from .errors import NotFittedError
from .graph.temporal_graph import TemporalGraph


class TemporalGraphGenerator(abc.ABC):
    """Abstract base class for temporal graph generative models."""

    #: Human-readable name used in benchmark tables.
    name: str = "generator"

    def __init__(self) -> None:
        self._observed: Optional[TemporalGraph] = None

    @property
    def is_fitted(self) -> bool:
        return self._observed is not None

    @property
    def observed(self) -> TemporalGraph:
        """The graph this generator was fitted on."""
        if self._observed is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self._observed

    def fit(self, graph: TemporalGraph) -> "TemporalGraphGenerator":
        """Learn the generative distribution of ``graph``.

        Subclasses must call ``super().fit(graph)`` (or set ``_observed``)
        and then perform their own training; returns ``self`` for chaining.
        """
        self._observed = graph
        self._fit(graph)
        return self

    def generate(self, seed: Optional[int] = None) -> TemporalGraph:
        """Sample a synthetic temporal graph mimicking the observed one."""
        if self._observed is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self._generate(seed)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _fit(self, graph: TemporalGraph) -> None:
        """Model-specific training."""

    @abc.abstractmethod
    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        """Model-specific sampling."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(fitted={self.is_fitted})"
