"""TGAE graph generation (Sec. IV-G) and the high-level generator API.

After training, every active temporal node ``(u, t)`` (one that emits at
least one edge at ``t``) is re-encoded from a fresh ego-graph, its decoded
categorical edge distribution forms the rows of the score matrix
``S_{t=1:T}``, and out-edges are drawn *without replacement* per temporal
node until the generated edge count matches the observed graph -- exactly
the assembling procedure of Sec. IV-G, implemented sparsely (row by row)
so no dense ``T x n x n`` tensor is ever materialised.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import no_grad, softmax
from ..base import TemporalGraphGenerator
from ..errors import GenerationError
from ..graph.temporal_graph import TemporalGraph
from .config import TGAEConfig
from .model import TGAEModel
from .sampler import EgoGraphSampler
from .trainer import TrainingHistory, train_tgae


def _sample_rows_without_replacement(
    probs: np.ndarray,
    counts: np.ndarray,
    rng: np.random.Generator,
    forbid: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Row-batched sampling without replacement via vectorised Gumbel top-k.

    Draws ``counts[i]`` distinct column indices from the categorical
    distribution ``probs[i]`` for every row ``i`` in one vectorised pass
    (one Gumbel perturbation + one argsort over the whole matrix), instead
    of one NumPy round-trip per row.

    Parameters
    ----------
    probs:
        ``(rows, n)`` non-negative weights; rows need not be normalised
        (Gumbel top-k is invariant to per-row scaling).
    counts:
        ``(rows,)`` number of distinct draws requested per row; clipped to
        the number of columns with positive allowed mass.
    forbid:
        Optional ``(rows,)`` column index excluded per row (no self-loop
        edges during generation).

    A row whose entire mass sits on forbidden/zero entries falls back to
    uniform sampling over the allowed columns; if no allowed column remains
    at all (e.g. a single-node universe whose only column is forbidden) the
    row yields an empty draw rather than dividing by zero or returning the
    forbidden index.
    """
    p = np.asarray(probs, dtype=np.float64).copy()
    if p.ndim != 2:
        raise GenerationError(f"probs must be 2-D, got shape {p.shape}")
    rows, _ = p.shape
    row_ids = np.arange(rows)
    if forbid is not None:
        forbid = np.asarray(forbid, dtype=np.int64)
        p[row_ids, forbid] = 0.0
    totals = p.sum(axis=1)
    degenerate = totals <= 0
    if degenerate.any():
        # Degenerate rows: fall back to uniform over allowed entries.
        p[degenerate] = 1.0
        if forbid is not None:
            p[row_ids[degenerate], forbid[degenerate]] = 0.0
    allowed = p > 0
    counts = np.minimum(
        np.asarray(counts, dtype=np.int64), allowed.sum(axis=1)
    ).clip(min=0)
    gumbel = -np.log(-np.log(rng.random(p.shape) + 1e-300) + 1e-300)
    with np.errstate(divide="ignore"):
        keys = np.where(allowed, np.log(np.where(allowed, p, 1.0)) + gumbel, -np.inf)
    max_k = int(counts.max()) if counts.size else 0
    if max_k == 0:
        return [np.array([], dtype=np.int64) for _ in range(rows)]
    n = p.shape[1]
    if max_k < n:
        # Top-max_k per row in linear time, then sort only those columns so
        # each row's first counts[i] entries are its true top keys.
        top = np.argpartition(-keys, max_k - 1, axis=1)[:, :max_k]
        within = np.argsort(-np.take_along_axis(keys, top, axis=1), axis=1)
        order = np.take_along_axis(top, within, axis=1)
    else:
        order = np.argsort(-keys, axis=1)
    return [order[i, : counts[i]].astype(np.int64) for i in range(rows)]


def _sample_without_replacement(
    probs: np.ndarray, count: int, rng: np.random.Generator, forbid: Optional[int] = None
) -> np.ndarray:
    """Draw ``count`` distinct indices from one categorical via Gumbel top-k.

    Single-row convenience wrapper around
    :func:`_sample_rows_without_replacement`, inheriting its degenerate-row
    guarantees (uniform fallback; empty draw when every entry is forbidden).
    """
    rows = _sample_rows_without_replacement(
        np.asarray(probs, dtype=np.float64)[None, :],
        np.array([count], dtype=np.int64),
        rng,
        forbid=None if forbid is None else np.array([forbid], dtype=np.int64),
    )
    return rows[0]


class TGAEGenerator(TemporalGraphGenerator):
    """The paper's contribution, packaged behind the common generator API.

    Parameters
    ----------
    config:
        TGAE hyper-parameters; variant configs (Sec. IV-F) plug in here.

    Examples
    --------
    >>> from repro.datasets import load_dataset
    >>> from repro.core import TGAEGenerator, fast_config
    >>> observed = load_dataset("DBLP", scale="small")
    >>> generator = TGAEGenerator(fast_config(epochs=2)).fit(observed)
    >>> synthetic = generator.generate(seed=0)
    >>> synthetic.num_edges == observed.num_edges
    True
    """

    name = "TGAE"

    def __init__(self, config: Optional[TGAEConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else TGAEConfig()
        self.model: Optional[TGAEModel] = None
        self.history: Optional[TrainingHistory] = None
        self._node_features: Optional[np.ndarray] = None

    def fit(self, graph: TemporalGraph, node_features: Optional[np.ndarray] = None):
        """Fit on a temporal graph, optionally with external node features.

        ``node_features`` may be ``(n, d)`` (static) or ``(T, n, d)``
        (per-snapshot ``X^{(t)}``); when omitted the paper's default
        node-identity features are used.
        """
        self._node_features = (
            np.asarray(node_features, dtype=np.float64) if node_features is not None else None
        )
        return super().fit(graph)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _fit(self, graph: TemporalGraph) -> None:
        rng = np.random.default_rng(self.config.seed)
        feature_dim = (
            self._node_features.shape[-1] if self._node_features is not None else 0
        )
        self.model = TGAEModel(
            graph.num_nodes, graph.num_timestamps, self.config, rng=rng,
            feature_dim=feature_dim,
        )
        if self._node_features is not None:
            self.model.encoder.set_external_features(self._node_features)
        self.history = train_tgae(self.model, graph, self.config)

    # ------------------------------------------------------------------
    # Generation (Sec. IV-G)
    # ------------------------------------------------------------------
    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        if self.model is None:
            raise GenerationError("internal error: model missing after fit")
        graph = self.observed
        rng = np.random.default_rng(seed if seed is not None else self.config.seed + 17)

        # Active temporal nodes with their observed out-edge budget d(u, t)
        # and distinct-target count k(u, t).  Generation reproduces both:
        # k distinct targets are drawn without replacement (Sec. IV-G) and
        # the remaining d - k edges repeat those targets, so multi-edge
        # (bursty) structure survives and the total edge count matches.
        out_deg = np.zeros((graph.num_nodes, graph.num_timestamps), dtype=np.int64)
        np.add.at(out_deg, (graph.src, graph.t), 1)
        distinct = np.zeros_like(out_deg)
        unique_triples = np.unique(
            np.stack([graph.src, graph.t, graph.dst], axis=1), axis=0
        )
        np.add.at(distinct, (unique_triples[:, 0], unique_triples[:, 1]), 1)
        active_u, active_t = np.nonzero(out_deg)
        if active_u.size == 0:
            raise GenerationError("observed graph has no edges to imitate")
        centers = np.stack([active_u, active_t], axis=1)
        degrees = out_deg[active_u, active_t]
        distinct_counts = distinct[active_u, active_t]

        sampler = EgoGraphSampler(graph, self.config, rng)
        # Sampled-softmax mode: per-node candidate pools are the node's
        # historical partners plus uniform negatives (O(C) per row).
        partner_pool: dict = {}
        if self.config.candidate_limit > 0:
            for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
                partner_pool.setdefault(u, set()).add(v)
        src_out: List[np.ndarray] = []
        dst_out: List[np.ndarray] = []
        t_out: List[np.ndarray] = []
        chunk = max(self.config.num_initial_nodes, 16)
        self.model.eval()
        with no_grad():
            for start in range(0, centers.shape[0], chunk):
                part = centers[start : start + chunk]
                part_deg = degrees[start : start + chunk]
                part_distinct = distinct_counts[start : start + chunk]
                batch = sampler.batch_for_centers(part)
                candidate_sets = None
                if self.config.candidate_limit > 0:
                    candidate_sets = self._generation_candidates(part, partner_pool, rng)
                # One encoder forward per chunk of temporal nodes (packed
                # ego-parallel layout by default).
                decoded = self.model(
                    batch.computation_batch(self.config.packed_batches),
                    sample=False,
                    candidates=candidate_sets,
                )
                probs = softmax(decoded.logits, axis=-1).numpy()
                if candidate_sets is not None:
                    # Scatter candidate-set probabilities into full rows so
                    # the sampling path below is uniform.
                    full = np.zeros((part.shape[0], graph.num_nodes))
                    rows = np.repeat(np.arange(part.shape[0]), candidate_sets.shape[1])
                    np.add.at(full, (rows, candidate_sets.reshape(-1)), probs.reshape(-1))
                    probs = full
                # All rows of the chunk are drawn in one vectorised pass.
                drawn = _sample_rows_without_replacement(
                    probs, part_distinct, rng, forbid=part[:, 0]
                )
                for row, targets in enumerate(drawn):
                    if targets.size == 0:
                        continue
                    node, timestamp = int(part[row, 0]), int(part[row, 1])
                    extra = int(part_deg[row]) - targets.size
                    if extra > 0:
                        # Multi-edges: repeat drawn targets proportionally to
                        # their decoded probabilities.
                        weight = probs[row][targets]
                        weight = weight / weight.sum() if weight.sum() > 0 else None
                        repeats = rng.choice(targets, size=extra, p=weight)
                        targets = np.concatenate([targets, repeats])
                    src_out.append(np.full(targets.size, node, dtype=np.int64))
                    dst_out.append(targets)
                    t_out.append(np.full(targets.size, timestamp, dtype=np.int64))
        if not src_out:
            raise GenerationError("generation produced no edges")
        generated = TemporalGraph(
            graph.num_nodes,
            np.concatenate(src_out),
            np.concatenate(dst_out),
            np.concatenate(t_out),
            num_timestamps=graph.num_timestamps,
            validate=False,
        )
        return generated

    def _generation_candidates(
        self, centers: np.ndarray, partner_pool: dict, rng: np.random.Generator
    ) -> np.ndarray:
        """Candidate sets for inference: historical partners + negatives."""
        limit = self.config.candidate_limit
        n = self.observed.num_nodes
        out = np.empty((centers.shape[0], limit), dtype=np.int64)
        for row in range(centers.shape[0]):
            node = int(centers[row, 0])
            partners = np.fromiter(partner_pool.get(node, ()), dtype=np.int64)[:limit]
            fill = limit - partners.size
            negatives = rng.integers(0, n, size=fill) if fill > 0 else np.array(
                [], dtype=np.int64
            )
            out[row, : partners.size] = partners
            out[row, partners.size :] = negatives
        return out

    # ------------------------------------------------------------------
    def score_matrix(self, timestamps: Optional[List[int]] = None) -> np.ndarray:
        """Dense score matrix ``S`` rows for inspection (small graphs only).

        Returns an ``(n, T, n)``-shaped array restricted to the requested
        timestamps; mainly a debugging/analysis aid and used by tests to
        check normalisation.
        """
        if self.model is None:
            raise GenerationError("generator is not fitted")
        graph = self.observed
        stamps = timestamps if timestamps is not None else list(range(graph.num_timestamps))
        rng = np.random.default_rng(self.config.seed + 23)
        sampler = EgoGraphSampler(graph, self.config, rng)
        scores = np.zeros((graph.num_nodes, len(stamps), graph.num_nodes))
        with no_grad():
            for j, timestamp in enumerate(stamps):
                centers = np.stack(
                    [np.arange(graph.num_nodes), np.full(graph.num_nodes, timestamp)], axis=1
                )
                batch = sampler.batch_for_centers(centers)
                decoded = self.model(
                    batch.computation_batch(self.config.packed_batches), sample=False
                )
                scores[:, j, :] = softmax(decoded.logits, axis=-1).numpy()
        return scores
