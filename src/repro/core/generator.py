"""The high-level TGAE generator API (Sec. IV-G behind the common interface).

Fitting trains the TGAE model (Sec. IV-C/D); generation delegates to the
streaming :class:`~repro.core.engine.GenerationEngine`, which re-encodes
every active temporal node ``(u, t)`` from a fresh ego-graph, decodes its
categorical edge distribution, and draws out-edges without replacement until
the generated edge count matches the observed graph -- exactly the
assembling procedure of Sec. IV-G, with O(E + n*C) additional memory (no
dense node x node array is ever materialised outside tests).
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..base import TemporalGraphGenerator
from ..errors import GenerationError, GraphFormatError, NotFittedError
from ..graph.temporal_graph import TemporalGraph
from ..rng import stream
from .config import TGAEConfig
from .embed_cache import EmbeddingCache, dirty_temporal_nodes, graph_token
from .engine import (
    GenerationEngine,
    TopKScores,
    sample_rows_without_replacement,
    sample_without_replacement,
)
from .model import TGAEModel
from .parallel import WorkerPool
from .trainer import TrainingHistory, TrainingState, train_tgae

EdgeBatch = Union[TemporalGraph, np.ndarray, Tuple[Sequence[int], Sequence[int], Sequence[int]]]


def _as_edge_arrays(new_edges: EdgeBatch) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalise an edge batch to parallel ``(src, dst, t)`` int64 arrays.

    Accepts a :class:`TemporalGraph`, a ``(src, dst, t)`` triple of
    sequences, or a ``(k, 3)`` array of ``src dst t`` rows.
    """
    if isinstance(new_edges, TemporalGraph):
        return new_edges.src, new_edges.dst, new_edges.t
    if isinstance(new_edges, tuple) and len(new_edges) == 3:
        return tuple(np.asarray(col, dtype=np.int64).reshape(-1) for col in new_edges)
    array = np.asarray(new_edges, dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 3:
        raise GraphFormatError(
            "new_edges must be a TemporalGraph, a (src, dst, t) triple of "
            f"arrays, or a (k, 3) array of rows; got shape {array.shape}"
        )
    return array[:, 0], array[:, 1], array[:, 2]

# Back-compat aliases: the row samplers started life as private helpers of
# this module and are re-exported for existing importers.
_sample_rows_without_replacement = sample_rows_without_replacement
_sample_without_replacement = sample_without_replacement


class TGAEGenerator(TemporalGraphGenerator):
    """The paper's contribution, packaged behind the common generator API.

    Parameters
    ----------
    config:
        TGAE hyper-parameters; variant configs (Sec. IV-F) plug in here.

    Examples
    --------
    >>> from repro.datasets import load_dataset
    >>> from repro.core import TGAEGenerator, fast_config
    >>> observed = load_dataset("DBLP", scale="small")
    >>> generator = TGAEGenerator(fast_config(epochs=2)).fit(observed)
    >>> synthetic = generator.generate(seed=0)
    >>> synthetic.num_edges == observed.num_edges
    True
    """

    name = "TGAE"

    def __init__(self, config: Optional[TGAEConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else TGAEConfig()
        self.model: Optional[TGAEModel] = None
        self.history: Optional[TrainingHistory] = None
        #: Resume/warm-start handle of the last training run (cumulative
        #: lineage); ``None`` until fitted, or for generators restored from
        #: weights-only (format-v1) checkpoints.
        self.train_state: Optional[TrainingState] = None
        self._node_features: Optional[np.ndarray] = None
        self._pool: Optional[WorkerPool] = None
        #: Persistent inference plumbing: one engine per (model, graph)
        #: pair, and one embedding cache surviving engine rebuilds so
        #: appends can invalidate incrementally instead of recomputing.
        self._engine: Optional[GenerationEngine] = None
        self._embed_cache: Optional[EmbeddingCache] = None

    def fit(
        self,
        graph: TemporalGraph,
        node_features: Optional[np.ndarray] = None,
        verbose: bool = False,
        track_memory: bool = False,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[Any] = None,
    ):
        """Fit on a temporal graph, optionally with external node features.

        ``node_features`` may be ``(n, d)`` (static) or ``(T, n, d)``
        (per-snapshot ``X^{(t)}``); when omitted the paper's default
        node-identity features are used.  ``verbose`` prints one line per
        epoch; ``track_memory`` records per-epoch tracemalloc peaks into
        :attr:`history`; ``checkpoint_every``/``checkpoint_path`` autosave
        an atomically-written resume checkpoint every N epochs (see
        :func:`~repro.core.trainer.train_tgae`).
        """
        self._node_features = (
            np.asarray(node_features, dtype=self.config.np_dtype)
            if node_features is not None
            else None
        )
        self._fit_verbose = verbose
        self._fit_track_memory = track_memory
        self._fit_checkpoint = (checkpoint_every, checkpoint_path)
        return super().fit(graph)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _fit(self, graph: TemporalGraph) -> None:
        self._engine = None
        rng = np.random.default_rng(self.config.seed)
        feature_dim = (
            self._node_features.shape[-1] if self._node_features is not None else 0
        )
        self.model = TGAEModel(
            graph.num_nodes, graph.num_timestamps, self.config, rng=rng,
            feature_dim=feature_dim,
        )
        if self._node_features is not None:
            self.model.encoder.set_external_features(self._node_features)
        checkpoint_every, checkpoint_path = getattr(
            self, "_fit_checkpoint", (None, None)
        )
        self.history = train_tgae(
            self.model, graph, self.config,
            verbose=getattr(self, "_fit_verbose", False),
            track_memory=getattr(self, "_fit_track_memory", False),
            pool=self._active_pool(),
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
        self.train_state = self.history.state

    # ------------------------------------------------------------------
    # Incremental ingestion (append + warm-start)
    # ------------------------------------------------------------------
    def update(
        self,
        new_edges: Optional[EdgeBatch] = None,
        epochs: Optional[int] = None,
        verbose: bool = False,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[Any] = None,
    ) -> "TGAEGenerator":
        """Append observed edges and warm-start training from the current state.

        The online-ingestion path: ``new_edges`` (a :class:`TemporalGraph`,
        a ``(src, dst, t)`` triple, or a ``(k, 3)`` row array) are appended
        to the observed graph via :meth:`TemporalGraph.appended` -- cached
        structures are maintained incrementally, and the node/timestamp
        universe is fixed (the model's embeddings are sized by it), so
        out-of-universe edges are rejected.  Training then continues for
        ``epochs`` epochs (default ``config.epochs``) from the current
        weights, optimizer moments and RNG position (:attr:`train_state`),
        exactly as if the run had never stopped.  With ``new_edges=None``
        this is a pure resume -- the ``fit --resume`` path.  ``epochs=0``
        is the *ingest-only* refresh: the edges are appended and the
        inference plumbing updated, but no training step runs -- the
        serve-time path for a daemon absorbing observations between
        retrains.

        Generators restored from weights-only (format-v1) checkpoints have
        no :attr:`train_state`; they warm-start the weights but run a cold
        optimizer on a fresh RNG lineage.

        The next pooled dispatch after an append republishes the
        shared-memory graph segment automatically: the structure fingerprint
        (``_engine_token``) covers the edge arrays, so the stale segment is
        rebuilt exactly once and then cached again.  The inference
        embedding cache is *not* flushed by an append: only the rows within
        the encoder's ego-radius of a new edge
        (:func:`~repro.core.embed_cache.dirty_temporal_nodes`) are dropped,
        and the surviving rows keep serving hits under the post-append
        graph fingerprint.  (Training epochs change the weights, so any
        ``epochs > 0`` update flushes the cache loudly through its weights
        token on the next call.)
        """
        if self.model is None or self._observed is None:
            raise NotFittedError("update() requires a fitted generator")
        observed = self.observed
        if new_edges is not None:
            new_src, new_dst, new_t = _as_edge_arrays(new_edges)
            observed = observed.appended(
                new_src, new_dst, new_t, num_timestamps=observed.num_timestamps
            )
            cache = self._embed_cache
            if cache is not None and cache.tokens_set:
                cache.invalidate_rows(
                    dirty_temporal_nodes(
                        observed, new_src, new_dst, new_t,
                        radius=self.config.radius,
                        time_window=self.config.time_window,
                    ),
                    graph=graph_token(
                        observed, self.config,
                        self.model.encoder._external_features,
                    ),
                )
        self._observed = observed
        self._engine = None
        if epochs is not None and int(epochs) == 0:
            return self
        config = (
            self.config
            if epochs is None
            else dataclasses.replace(self.config, epochs=int(epochs))
        )
        self.history = train_tgae(
            self.model, observed, config,
            verbose=verbose,
            pool=self._active_pool(),
            resume_from=self.train_state,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
        self.train_state = self.history.state
        return self

    # ------------------------------------------------------------------
    # Persistent worker pool
    # ------------------------------------------------------------------
    def worker_pool(
        self, workers: Optional[int] = None, backend: Optional[str] = None
    ) -> WorkerPool:
        """The generator's persistent worker pool (created lazily).

        Repeated calls return the same open pool as long as the requested
        worker count and backend match, so many-sample workloads
        (significance tests drawing dozens of graphs, ``score_topk``
        sweeps, refits) amortise process startup across calls::

            with generator.worker_pool(workers=4):
                graphs = [generator.generate(seed=s) for s in range(20)]
            # pool processes reaped here

        Outside a ``with`` block, call :meth:`close_pool` (or
        ``pool.close()``) when done; an open pool is also picked up by
        :meth:`generate`, :meth:`score_topk` and :meth:`fit` automatically.
        """
        workers = int(workers if workers is not None else self.config.workers)
        backend = backend if backend is not None else self.config.parallel_backend
        pool = self._pool
        # Compare against the *requested* backend: a pool whose process
        # backend degraded to threads stays valid for "process" requests
        # (rebuilding it would just retry the known-broken backend).
        if (
            pool is None
            or pool.closed
            or pool.workers != workers
            or pool.requested_backend != backend
        ):
            if pool is not None and not pool.closed:
                pool.close()
            self._pool = pool = WorkerPool(
                workers,
                backend,
                shm_dispatch=self.config.shm_dispatch,
                max_shard_retries=self.config.max_shard_retries,
                shard_timeout=self.config.shard_timeout,
            )
        return pool

    def close_pool(self) -> None:
        """Shut down the generator's persistent pool, if one is open."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _active_pool(self, workers: Optional[int] = None) -> Optional[WorkerPool]:
        """The open pool, if compatible with an explicit ``workers`` override."""
        pool = self._pool
        if pool is None or pool.closed:
            return None
        if workers is not None and workers != pool.workers:
            return None
        return pool

    # ------------------------------------------------------------------
    # Generation (Sec. IV-G, streaming)
    # ------------------------------------------------------------------
    def engine(self) -> GenerationEngine:
        """The streaming generation engine over the fitted model.

        Cached per ``(model, graph)`` pair: repeated ``generate`` /
        ``score_topk`` calls reuse one engine (and with it the memoised
        active-centre triple and the warm embedding cache) until a refit
        or an append swaps the underlying graph/model.  When
        ``config.embed_cache`` is on, the engine carries the generator's
        persistent :class:`~repro.core.embed_cache.EmbeddingCache`.
        """
        graph = self.observed  # raises NotFittedError before fit
        if self.model is None:
            raise GenerationError("internal error: model missing after fit")
        if self._engine is None or self._engine.graph is not graph:
            cache = None
            if self.config.embed_cache:
                rows = graph.num_nodes * graph.num_timestamps
                cache = self._embed_cache
                if (
                    cache is None
                    or cache.rows.shape != (rows, self.config.hidden_dim)
                    or cache.rows.dtype != self.config.np_dtype
                ):
                    cache = EmbeddingCache(
                        rows, self.config.hidden_dim, dtype=self.config.np_dtype
                    )
                self._embed_cache = cache
            self._engine = GenerationEngine(
                self.model, graph, self.config, cache=cache
            )
        return self._engine

    def cache_stats(self) -> Optional[dict]:
        """Embedding-cache counters (hits, encodes, flushes, invalidations).

        The health-style report for the inference cache: ``hit_rows`` /
        ``encoded_rows`` / ``encode_calls`` measure encoder work skipped
        vs done, ``flushes`` (+ ``weight_flushes`` / ``graph_flushes``)
        count loud version resets, ``invalidated_rows`` the rows dropped by
        incremental appends.  ``None`` when the cache is disabled or the
        generator has never built an engine.
        """
        cache = self._embed_cache
        return None if cache is None else dict(cache.stats)

    def _generation_rng(self, seed: Optional[int]) -> np.random.Generator:
        """The generation stream: explicit seed, or the named default stream."""
        if seed is not None:
            return np.random.default_rng(seed)
        return stream(self.config.seed, "tgae", "generate")

    def generate(
        self,
        seed: Optional[int] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> TemporalGraph:
        """Sample a synthetic temporal graph mimicking the observed one.

        ``workers``/``chunk_size`` override the config's sharding knobs for
        this call (see :class:`~repro.core.engine.GenerationEngine`); the
        output is bit-identical for every worker count.  An open
        :meth:`worker_pool` is used automatically (unless ``workers``
        explicitly disagrees with its size).
        """
        if self._observed is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self.engine().generate(
            self._generation_rng(seed),
            workers=workers,
            chunk_size=chunk_size,
            pool=self._active_pool(workers),
        )

    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        return self.engine().generate(self._generation_rng(seed))

    def _generation_candidates(
        self,
        centers: np.ndarray,
        rng: np.random.Generator,
        min_distinct: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Candidate sets for inference: historical partners + negatives.

        Vectorised batched assembly on the graph's partner CSR; see
        :meth:`GenerationEngine.candidate_batch`.
        """
        return self.engine().candidate_batch(centers, rng, min_distinct=min_distinct)

    # ------------------------------------------------------------------
    # Score inspection
    # ------------------------------------------------------------------
    def score_topk(
        self,
        k: int,
        timestamps: Optional[List[int]] = None,
        workers: Optional[int] = None,
    ) -> TopKScores:
        """Top-``k`` decoded edge scores as sparse ``(row, col, score)`` triples.

        The scalable replacement for the dense score matrix: sharded
        decoding, O(n * k) output, no ``(n, T, n)`` tensor; ``workers``
        fans the chunks out without changing the triples.  An open
        :meth:`worker_pool` is reused automatically.
        """
        return self.engine().score_topk(
            k, timestamps=timestamps, workers=workers,
            pool=self._active_pool(workers),
        )

    def score_matrix(self, timestamps: Optional[List[int]] = None) -> np.ndarray:
        """Dense score matrix ``S`` rows for inspection.

        **Test-only helper** for small graphs: materialises the
        ``(n, T, n)``-shaped array the tests use to check normalisation.
        Production inspection goes through :meth:`score_topk`.
        """
        if self.model is None:
            raise GenerationError("generator is not fitted")
        graph = self.observed
        stamps = timestamps if timestamps is not None else list(range(graph.num_timestamps))
        engine = self.engine()
        scores = np.zeros((graph.num_nodes, len(stamps), graph.num_nodes))
        self.model.eval()
        for j, timestamp in enumerate(stamps):
            centers = np.stack(
                [np.arange(graph.num_nodes), np.full(graph.num_nodes, timestamp)], axis=1
            )
            scores[:, j, :] = engine.dense_score_rows(centers)
        return scores
