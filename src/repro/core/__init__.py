"""TGAE: the paper's primary contribution (Sec. IV)."""

from .config import NO_TRUNCATION, TGAEConfig, fast_config
from .decoder import DecoderOutput, EgoGraphDecoder
from .embed_cache import (
    EMBED_TILE,
    EmbeddingCache,
    dirty_temporal_nodes,
    graph_token,
    weights_token,
)
from .encoder import TGAEEncoder
from .engine import (
    GenerateChunkTask,
    GenerationEngine,
    TopKChunkTask,
    TopKScores,
    active_temporal_nodes,
    sample_rows_without_replacement,
    sample_without_replacement,
)
from .parallel import (
    WorkerPayload,
    WorkerPool,
    close_shared_pools,
    run_sharded,
    shared_pool,
)
from .generator import TGAEGenerator
from .persistence import load_generator, save_generator, save_training_checkpoint
from .loss import (
    adjacency_target_rows,
    reconstruction_loss,
    tgae_loss,
    tgae_shard_loss,
)
from .model import TGAEModel
from .sampler import EgoGraphSampler, TrainingBatch
from .trainer import (
    TrainShardResult,
    TrainShardTask,
    TrainingHistory,
    TrainingState,
    run_train_shard,
    train_tgae,
)
from .continuous import ContinuousTimeGenerator
from .upscale import UpscaledGenerator, expand_temporal_graph
from .variants import VARIANTS, tgae_full, tgae_g, tgae_n, tgae_p, tgae_t

__all__ = [
    "save_generator",
    "load_generator",
    "save_training_checkpoint",
    "TGAEConfig",
    "fast_config",
    "NO_TRUNCATION",
    "TGAEEncoder",
    "EgoGraphDecoder",
    "DecoderOutput",
    "TGAEModel",
    "EgoGraphSampler",
    "TrainingBatch",
    "train_tgae",
    "TrainingHistory",
    "TrainingState",
    "tgae_loss",
    "reconstruction_loss",
    "adjacency_target_rows",
    "tgae_shard_loss",
    "TrainShardTask",
    "TrainShardResult",
    "run_train_shard",
    "TGAEGenerator",
    "GenerationEngine",
    "GenerateChunkTask",
    "TopKChunkTask",
    "WorkerPayload",
    "WorkerPool",
    "shared_pool",
    "close_shared_pools",
    "run_sharded",
    "TopKScores",
    "EMBED_TILE",
    "EmbeddingCache",
    "dirty_temporal_nodes",
    "graph_token",
    "weights_token",
    "active_temporal_nodes",
    "sample_rows_without_replacement",
    "sample_without_replacement",
    "VARIANTS",
    "tgae_full",
    "tgae_g",
    "tgae_t",
    "tgae_n",
    "tgae_p",
    "ContinuousTimeGenerator",
    "UpscaledGenerator",
    "expand_temporal_graph",
]
