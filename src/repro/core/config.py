"""Configuration for the TGAE model family.

One frozen dataclass collects every hyper-parameter of the paper's Sec. IV,
including the switches that define the four ablation variants of Sec. IV-F.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..errors import ConfigError

#: Sentinel for "no neighbour truncation" (the TGAE-t ablation variant).
NO_TRUNCATION: int = 1_000_000_000


@dataclass(frozen=True)
class TGAEConfig:
    """Hyper-parameters of the Temporal Graph Auto-Encoder.

    Attributes
    ----------
    radius:
        Ego-graph radius ``k`` = number of stacked TGAT layers.
    neighbor_threshold:
        Truncation ``th`` of Alg. 1.  Values ``<= 2`` degenerate ego-graphs
        into temporal random walks (the TGAE-g variant); use
        :data:`NO_TRUNCATION` for the TGAE-t variant.
    time_window:
        Temporal window ``t_N`` of Definition 3.
    embed_dim:
        Width of the node-identity input embedding (the paper's default node
        features are node identities, Sec. IV-B).
    hidden_dim:
        Width ``d_att`` of the TGAT hidden representations.
    latent_dim:
        Width of the variational latent ``Z``.
    num_heads:
        Attention heads ``h_tga`` (Eq. 3).
    time_dim:
        Width of the sinusoidal time encoding inside each TGAT layer.
    num_initial_nodes:
        ``n_s`` -- centre nodes sampled per training step (also the parallel
        batch size ``b`` of the bipartite computation graphs).
    uniform_initial_sampling:
        Replace the Eq. 2 degree-weighted initial sampling with uniform
        sampling (the TGAE-n variant).
    probabilistic:
        When ``False``, use the non-probabilistic decoder of Eq. 8/9
        (the TGAE-p variant): no sigma head, no KL term.
    decode_neighbors:
        Also reconstruct the adjacency rows of first-order neighbours during
        training (depth-2 of the recursive decoding of Alg. 2).
    candidate_limit:
        When positive, the decoder scores only a *candidate set* of roughly
        this many nodes per centre (observed neighbours + uniform negatives)
        instead of the full node universe -- a sampled-softmax approximation
        that removes the O(n) decoder cost per row.  This implements the
        paper's future-work direction of scaling learning-based simulation
        to very large node universes.  ``0`` (default) keeps the exact dense
        decoder of Alg. 2.
    packed_batches:
        When ``True`` (default), training minibatches and Sec. IV-G
        generation run the encoder over padded ego-parallel batches
        (:func:`repro.graph.pack_ego_batch`) -- one vectorised forward per
        batch of temporal nodes, each ego-graph encoded independently
        exactly as in the per-node path.  When ``False``, the original
        merged k-bipartite layout (cross-ego node deduplication, Fig. 4) is
        used instead.
    workers:
        Worker count for the sharded generation engine
        (:mod:`repro.core.parallel`).  ``1`` (default) runs chunks as a
        plain sequential loop; higher values fan chunks out over a pool.
        Output is bit-identical for every worker count because each chunk
        draws from its own spawned seed-sequence child.
    chunk_size:
        Centre rows per generation/score chunk.  ``None`` (default) uses
        ``num_initial_nodes``; must be ``>= 1`` when set.
    parallel_backend:
        ``"process"`` (default; right for CPU-bound NumPy forwards) or
        ``"thread"``.  The process pool degrades to threads automatically
        where process pools are unavailable.
    train_shard_size:
        Centre rows per *training* shard: each epoch's ``n_s`` minibatch is
        partitioned into shards of this many ego-graphs, every shard owns a
        spawned seed-sequence child, and shards run forward+backward
        independently (on the worker pool when ``workers > 1``) before
        their gradients are merged in shard order into one Adam step.
        ``None`` (default) uses ``ceil(num_initial_nodes / 4)``.  The
        partitioning never depends on ``workers``, so training is
        bit-identical for every worker count and backend.
    shm_dispatch:
        Shared-memory dispatch for persistent worker pools (default
        ``True``): model parameters and the graph's CSR arrays are
        published once into ``multiprocessing.shared_memory`` segments and
        per-epoch / per-generate task messages shrink to index arrays plus
        a parameter version -- O(1) in model size.  Bit-identical to the
        pickled-payload path; ``False`` restores it (as does a platform
        without shared-memory support, automatically).
    max_shard_retries:
        How many times a persistent worker pool re-dispatches one shard
        that failed with a transient error (``OSError``, pickling) or a
        worker crash before degrading one rung down the dispatch ladder
        (shm -> pickle -> thread -> sequential).  Retried shards are
        bit-identical -- shards are pure functions of (task, seed child,
        weights).  ``0`` disables in-rung retries (and restores the
        zero-bookkeeping legacy dispatch when no timeout is set either).
    shard_timeout:
        Per-shard wall-clock budget in seconds for pooled dispatch;
        a shard still running past it is counted a straggler and
        re-dispatched (the abandoned original, should it finish, is
        bit-compared against its replacement).  ``None`` (default)
        disables timeouts.
    dtype:
        Floating-point policy for every model tensor: parameters,
        activations, losses, and the shared-memory parameter/feature
        segments.  ``"float32"`` (the production default) halves memory
        bandwidth on the attention/decoder hot paths and the shm dispatch
        footprint; ``"float64"`` is the golden/repro path whose outputs are
        pinned bit-exactly by the GOLDEN_DENSE fingerprints.  The two
        policies agree within tolerance (losses, generated-graph metrics,
        ``score_topk`` rankings -- see ``tests/test_dtype_equivalence.py``);
        integer index arrays and the engine's internal float64 sampling
        scratch are unaffected.
    embed_cache:
        Versioned inference embedding cache (default ``True``): encoder
        embeddings of temporal nodes are cached per ``(u, t)`` across
        ``generate``/``score_topk`` calls, keyed by weights/graph
        fingerprints, so repeat inference against an unchanged fitted
        model is decode-only.  Outputs are bitwise identical with the
        cache on or off (see :mod:`repro.core.embed_cache`); ``False``
        re-encodes every call (lower resident memory, no cross-call
        state).
    checkpoint_attention:
        Activation checkpointing for training: the TGAT layers free their
        per-edge activations (the O(batch * ego^2) tensors that dominate
        training peak memory) after the forward pass and recompute them
        in backward.  Exact -- loss trajectories and gradients are
        bit-identical to the plain path -- at a ~30% training-compute
        overhead.  Inference is unaffected.
    epochs, learning_rate, kl_weight, grad_clip:
        Optimisation settings for Eq. 7.
    seed:
        Seed controlling parameter init and sampling during training.
        Component streams are derived from it through the named
        seed-sequence registry (:mod:`repro.rng`), never by adding ad-hoc
        integer offsets.
    """

    radius: int = 2
    neighbor_threshold: int = 20
    time_window: int = 2
    embed_dim: int = 32
    hidden_dim: int = 32
    latent_dim: int = 16
    num_heads: int = 2
    time_dim: int = 8
    num_initial_nodes: int = 64
    uniform_initial_sampling: bool = False
    probabilistic: bool = True
    decode_neighbors: bool = True
    candidate_limit: int = 0
    packed_batches: bool = True
    workers: int = 1
    chunk_size: Optional[int] = None
    parallel_backend: str = "process"
    train_shard_size: Optional[int] = None
    shm_dispatch: bool = True
    max_shard_retries: int = 2
    shard_timeout: Optional[float] = None
    embed_cache: bool = True
    checkpoint_attention: bool = False
    dtype: str = "float32"
    epochs: int = 30
    learning_rate: float = 5e-3
    kl_weight: float = 1e-3
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.radius < 1:
            raise ConfigError(f"radius must be >= 1, got {self.radius}")
        if self.neighbor_threshold < 1:
            raise ConfigError("neighbor_threshold must be >= 1")
        if self.time_window < 0:
            raise ConfigError("time_window must be >= 0")
        for field_name in ("embed_dim", "hidden_dim", "latent_dim", "num_heads",
                           "num_initial_nodes", "epochs"):
            if getattr(self, field_name) < 1:
                raise ConfigError(f"{field_name} must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if self.kl_weight < 0:
            raise ConfigError("kl_weight must be non-negative")
        if self.candidate_limit < 0:
            raise ConfigError("candidate_limit must be >= 0 (0 = dense decoder)")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigError(
                f"chunk_size must be >= 1 when set, got {self.chunk_size}"
            )
        if self.train_shard_size is not None and self.train_shard_size < 1:
            raise ConfigError(
                f"train_shard_size must be >= 1 when set, got {self.train_shard_size}"
            )
        if self.max_shard_retries < 0:
            raise ConfigError(
                f"max_shard_retries must be >= 0, got {self.max_shard_retries}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ConfigError(
                f"shard_timeout must be positive when set, got {self.shard_timeout}"
            )
        if self.parallel_backend not in ("process", "thread"):
            raise ConfigError(
                "parallel_backend must be 'process' or 'thread', "
                f"got {self.parallel_backend!r}"
            )
        if self.dtype not in ("float32", "float64"):
            raise ConfigError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )

    @property
    def np_dtype(self) -> np.dtype:
        """The policy dtype as a ``numpy.dtype``."""
        return np.dtype(self.dtype)

    # Convenience constructors for the ablation variants (Sec. IV-F).
    def as_random_walk_variant(self) -> "TGAEConfig":
        """TGAE-g: chain-shaped ego-graphs (threshold below 2)."""
        return replace(self, neighbor_threshold=1)

    def as_no_truncation_variant(self) -> "TGAEConfig":
        """TGAE-t: disable neighbour truncation."""
        return replace(self, neighbor_threshold=NO_TRUNCATION)

    def as_uniform_sampling_variant(self) -> "TGAEConfig":
        """TGAE-n: uniform initial node sampling."""
        return replace(self, uniform_initial_sampling=True)

    def as_non_probabilistic_variant(self) -> "TGAEConfig":
        """TGAE-p: deterministic decoder, no KL."""
        return replace(self, probabilistic=False)


def fast_config(**overrides) -> TGAEConfig:
    """A small configuration suitable for tests and CI-scale benchmarks.

    Unlike :class:`TGAEConfig` (production default ``float32``), this test
    profile defaults to the ``float64`` golden path so the pinned fingerprint
    corpus stays bit-stable.  Set ``REPRO_DTYPE=float32`` to sweep the whole
    tier-1 suite under the production policy (a dedicated CI job does).
    """
    defaults = dict(
        radius=2,
        neighbor_threshold=10,
        time_window=2,
        embed_dim=16,
        hidden_dim=16,
        latent_dim=8,
        num_heads=2,
        time_dim=4,
        num_initial_nodes=32,
        epochs=8,
        learning_rate=1e-2,
        dtype=os.environ.get("REPRO_DTYPE", "float64"),
        # REPRO_EMBED_CACHE=off sweeps the tier-1 suite over the uncached
        # inference path (a dedicated CI matrix entry does), mirroring the
        # REPRO_DTYPE policy sweep.
        embed_cache=os.environ.get("REPRO_EMBED_CACHE", "on") != "off",
    )
    defaults.update(overrides)
    return TGAEConfig(**defaults)
