"""Streaming O(E) generation engine (Sec. IV-G without the dense wall).

:class:`GenerationEngine` implements the paper's assembling procedure with a
memory model of O(E + n*C) instead of O(T * n^2):

* active temporal nodes, their out-degree budgets ``d(u, t)`` and distinct
  target counts ``k(u, t)`` come from one vectorised group-by over the edge
  arrays -- no ``(n, T)`` scratch tensors;
* candidate pools are assembled in batch from the graph's cached
  :meth:`~repro.graph.temporal_graph.TemporalGraph.out_partner_groups` CSR
  slices (historical partners + uniform negatives), padded with extra
  distinct negatives whenever a row's pool would under-fill its distinct
  target count;
* edges are sampled *within* the candidate sets (masked Gumbel top-k over
  the ``(chunk, C)`` decoded probabilities) -- the old scatter into full
  ``(chunk, num_nodes)`` rows is gone;
* :meth:`GenerationEngine.score_topk` replaces the dense score matrix with
  chunked sparse ``(row, col, score)`` triples;
* both :meth:`GenerationEngine.generate` and
  :meth:`GenerationEngine.score_topk` are *sharded*: the per-timestamp
  centre set is partitioned into chunks, every chunk owns a spawned
  :class:`~numpy.random.SeedSequence` child (:mod:`repro.rng`), and chunks
  run on a process/thread pool (:mod:`repro.core.parallel`) when
  ``workers > 1``.  Because chunk streams depend only on the root seed and
  the chunk index -- never on execution order -- output is bit-identical
  for every worker count and backend, and ``workers=1`` is a plain
  sequential loop over the same chunks;
* encoder embeddings flow through the versioned inference cache
  (:mod:`repro.core.embed_cache`): public entry points prefill every
  missing canonical tile once, chunks then decode straight from cached
  rows, and repeat calls against unchanged weights/graph skip the encoder
  entirely -- with outputs bitwise identical to the uncached path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..autograd import no_grad, softmax
from ..errors import ConfigError, GenerationError
from ..graph.temporal_graph import TemporalGraph
from ..rng import seed_sequence, spawn_streams
from .config import TGAEConfig
from .embed_cache import EMBED_TILE, EmbeddingCache, graph_token, weights_token
from .model import TGAEModel
from .parallel import WorkerPool, run_sharded
from .sampler import EgoGraphSampler

#: Rejection-sampling rounds before the exact set-difference fallback when
#: padding a deficient candidate row with distinct negatives.
_PAD_ATTEMPTS = 8

#: Rows per candidate-assembly tile.  The CSR gather, the partner-slot mask
#: and the distinct-mask scratch of one tile (~tile * width int64/bool) stay
#: L2-resident instead of streaming ``(rows, width)`` intermediates through
#: memory three times.  A batch of at most this many rows is assembled in a
#: single tile whose RNG call order is exactly the pre-tiling code's, so
#: every chunked caller (chunks default to ``num_initial_nodes`` rows) is
#: bit-identical to the historical path.
_CAND_TILE_ROWS = 256


def sample_rows_without_replacement(
    probs: np.ndarray,
    counts: np.ndarray,
    rng: np.random.Generator,
    forbid: Optional[np.ndarray] = None,
    allowed: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Row-batched sampling without replacement via vectorised Gumbel top-k.

    Draws ``counts[i]`` distinct column indices from the categorical
    distribution ``probs[i]`` for every row ``i`` in one vectorised pass
    (one Gumbel perturbation + one argsort over the whole matrix), instead
    of one NumPy round-trip per row.

    Parameters
    ----------
    probs:
        ``(rows, n)`` non-negative weights; rows need not be normalised
        (Gumbel top-k is invariant to per-row scaling).
    counts:
        ``(rows,)`` number of distinct draws requested per row; clipped to
        the number of columns with positive allowed mass.
    forbid:
        Optional ``(rows,)`` column index excluded per row (no self-loop
        edges during generation).
    allowed:
        Optional ``(rows, n)`` boolean mask; ``False`` columns are excluded.
        This is how the streaming engine masks duplicate candidate slots
        and self-loops when sampling within candidate sets.

    A row whose entire mass sits on forbidden/zero entries falls back to
    uniform sampling over the allowed columns; if no allowed column remains
    at all (e.g. a single-node universe whose only column is forbidden) the
    row yields an empty draw rather than dividing by zero or returning the
    forbidden index.
    """
    p = np.asarray(probs, dtype=np.float64).copy()
    if p.ndim != 2:
        raise GenerationError(f"probs must be 2-D, got shape {p.shape}")
    rows, _ = p.shape
    row_ids = np.arange(rows)
    if forbid is not None:
        forbid = np.asarray(forbid, dtype=np.int64)
        p[row_ids, forbid] = 0.0
    if allowed is not None:
        p[~allowed] = 0.0
    totals = p.sum(axis=1)
    degenerate = totals <= 0
    if degenerate.any():
        # Degenerate rows: fall back to uniform over allowed entries.
        p[degenerate] = 1.0
        if forbid is not None:
            p[row_ids[degenerate], forbid[degenerate]] = 0.0
        if allowed is not None:
            p[~allowed] = 0.0
    positive = p > 0
    counts = np.minimum(
        np.asarray(counts, dtype=np.int64), positive.sum(axis=1)
    ).clip(min=0)
    gumbel = -np.log(-np.log(rng.random(p.shape) + 1e-300) + 1e-300)
    with np.errstate(divide="ignore"):
        keys = np.where(positive, np.log(np.where(positive, p, 1.0)) + gumbel, -np.inf)
    max_k = int(counts.max()) if counts.size else 0
    if max_k == 0:
        return [np.array([], dtype=np.int64) for _ in range(rows)]
    n = p.shape[1]
    if max_k < n:
        # Top-max_k per row in linear time, then sort only those columns so
        # each row's first counts[i] entries are its true top keys.
        top = np.argpartition(-keys, max_k - 1, axis=1)[:, :max_k]
        within = np.argsort(-np.take_along_axis(keys, top, axis=1), axis=1)
        order = np.take_along_axis(top, within, axis=1)
    else:
        order = np.argsort(-keys, axis=1)
    return [order[i, : counts[i]].astype(np.int64) for i in range(rows)]


def sample_without_replacement(
    probs: np.ndarray, count: int, rng: np.random.Generator, forbid: Optional[int] = None
) -> np.ndarray:
    """Draw ``count`` distinct indices from one categorical via Gumbel top-k.

    Single-row convenience wrapper around
    :func:`sample_rows_without_replacement`, inheriting its degenerate-row
    guarantees (uniform fallback; empty draw when every entry is forbidden).
    """
    rows = sample_rows_without_replacement(
        np.asarray(probs, dtype=np.float64)[None, :],
        np.array([count], dtype=np.int64),
        rng,
        forbid=None if forbid is None else np.array([forbid], dtype=np.int64),
    )
    return rows[0]


def distinct_allowed_mask(
    candidates: np.ndarray, forbid_nodes: Optional[np.ndarray] = None
) -> np.ndarray:
    """Boolean mask of the usable slots in per-row candidate sets.

    A slot is usable when it holds the *first* occurrence of its node id in
    the row (duplicate negatives collapse to one slot, so a node can never
    be drawn twice through two slots) and, when ``forbid_nodes`` is given,
    the node differs from the row's centre (no self-loops).
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    order = np.argsort(candidates, axis=1, kind="stable")
    sorted_c = np.take_along_axis(candidates, order, axis=1)
    dup_sorted = np.zeros(candidates.shape, dtype=bool)
    dup_sorted[:, 1:] = sorted_c[:, 1:] == sorted_c[:, :-1]
    dup = np.empty_like(dup_sorted)
    np.put_along_axis(dup, order, dup_sorted, axis=1)
    allowed = ~dup
    if forbid_nodes is not None:
        allowed &= candidates != np.asarray(forbid_nodes, dtype=np.int64)[:, None]
    return allowed


def fold_duplicate_mass(candidates: np.ndarray, probs: np.ndarray) -> np.ndarray:
    """Sum each row's duplicate-slot probabilities onto the first occurrence.

    The softmax over a candidate row normalises across *slots*; when uniform
    negatives collide with partners (or each other) the same node holds mass
    in several slots.  This folds that mass onto the node's first slot and
    zeroes the rest -- exactly the semantics of the old scatter-into-full-rows
    path, where ``np.add.at`` summed duplicate contributions -- so each row
    stays a proper distribution over its distinct candidates.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    rows, width = candidates.shape
    flat = np.asarray(probs, dtype=np.float64).reshape(-1)
    keys = (
        np.arange(rows, dtype=np.int64)[:, None] * np.int64(candidates.max() + 1)
        + candidates
    ).reshape(-1)
    uniq, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=flat)
    first = np.full(uniq.size, flat.size, dtype=np.int64)
    np.minimum.at(first, inverse, np.arange(flat.size))
    folded = np.zeros_like(flat)
    folded[first] = sums
    return folded.reshape(rows, width)


def active_temporal_nodes(
    graph: TemporalGraph,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Active centres with out-degree and distinct-target budgets, in O(E).

    Returns ``(centers, degrees, distinct_counts)`` where ``centers`` is the
    ``(rows, 2)`` array of active ``(u, t)`` pairs sorted ascending (the
    same order the dense ``np.nonzero`` scan used to produce), ``degrees``
    the observed out-degree ``d(u, t)`` and ``distinct_counts`` the number
    of distinct targets ``k(u, t)``.  No ``(n, T)`` scratch array is built.
    """
    if graph.num_edges == 0:
        raise GenerationError("observed graph has no edges to imitate")
    T = np.int64(graph.num_timestamps)
    pair_keys = graph.src * T + graph.t
    uniq_keys, degrees = np.unique(pair_keys, return_counts=True)
    unique_triples = np.unique(
        np.stack([graph.src, graph.t, graph.dst], axis=1), axis=0
    )
    distinct_keys = unique_triples[:, 0] * T + unique_triples[:, 1]
    _, distinct_counts = np.unique(distinct_keys, return_counts=True)
    centers = np.stack([uniq_keys // T, uniq_keys % T], axis=1)
    return centers, degrees.astype(np.int64), distinct_counts.astype(np.int64)


@dataclass
class TopKScores:
    """Sparse top-k decoded scores: parallel ``(node, timestamp, target, score)``.

    The streaming replacement for the dense ``(n, T, n)`` score matrix:
    entry ``i`` says the decoded edge distribution of centre
    ``(node[i], timestamp[i])`` puts probability ``score[i]`` on target
    ``target[i]``, and only the top ``k`` targets per centre are kept.
    """

    node: np.ndarray
    timestamp: np.ndarray
    target: np.ndarray
    score: np.ndarray

    @property
    def nnz(self) -> int:
        """Number of stored triples."""
        return int(self.node.size)


@dataclass(frozen=True)
class GenerateChunkTask:
    """One shard of the generation fan-out.

    Carries only what a worker cannot derive itself: the chunk's centre
    rows with their edge budgets (index arrays, never graph objects) and
    the spawned seed-sequence child that makes the chunk's draws
    independent of execution order.
    """

    index: int
    centers: np.ndarray
    degrees: np.ndarray
    distinct: np.ndarray
    seed_seq: np.random.SeedSequence


@dataclass(frozen=True)
class TopKChunkTask:
    """One shard of the :meth:`GenerationEngine.score_topk` fan-out."""

    index: int
    node_ids: np.ndarray
    timestamp: int
    k: int
    seed_seq: np.random.SeedSequence


class GenerationEngine:
    """Streaming Sec. IV-G assembler over a fitted :class:`TGAEModel`.

    Parameters
    ----------
    model:
        The fitted TGAE model (encoder + decoder).
    graph:
        The observed temporal graph whose edge budgets are imitated.
    config:
        The generator's hyper-parameters; ``candidate_limit > 0`` selects
        the streaming sampled-softmax path, ``0`` the exact dense decoder.
    cache:
        Optional :class:`~repro.core.embed_cache.EmbeddingCache` holding
        per-``(u, t)`` encoder embeddings across calls (writable in the
        parent, a read-only shared-memory attachment in pooled workers).
        ``None`` disables persistence: the engine still encodes through
        the same canonical tiles, just chunk-scoped — outputs are bitwise
        identical either way.
    """

    def __init__(
        self,
        model: TGAEModel,
        graph: TemporalGraph,
        config: TGAEConfig,
        cache: Optional[EmbeddingCache] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.config = config
        self.cache = cache
        self._active: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._weights_token: Optional[str] = None
        self._graph_token: Optional[str] = None

    def active_nodes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached :func:`active_temporal_nodes` triple for this engine's graph.

        The graph is immutable for an engine's lifetime (appends build a
        new graph and a new engine), so the O(E log E) group-by runs once
        instead of on every ``generate`` call.
        """
        if self._active is None:
            self._active = active_temporal_nodes(self.graph)
        return self._active

    # ------------------------------------------------------------------
    # Inference embeddings (canonical tiles + versioned cache)
    # ------------------------------------------------------------------
    def _cache_tokens(self) -> Tuple[str, str]:
        """Current ``(weights, graph)`` fingerprints, memoised per call.

        Public entry points reset :attr:`_weights_token` before dispatch so
        in-place weight mutations are picked up once per call; per-chunk
        consults then reuse the memo (workers reset it on parameter-version
        reloads).  The graph token is constant for the engine's lifetime.
        """
        if self._weights_token is None:
            self._weights_token = weights_token(self.model)
        if self._graph_token is None:
            self._graph_token = graph_token(
                self.graph, self.config, self.model.encoder._external_features
            )
        return self._weights_token, self._graph_token

    def _encode_tile_rows(self, tile_keys: np.ndarray) -> np.ndarray:
        """Encode one canonical tile of universe keys (``u * T + t``).

        The batch always consists of a full tile's consecutive keys in
        ascending order (clipped only at the universe end), so its
        composition — and therefore every BLAS kernel decision inside the
        packed encoder — is a pure function of the graph size and the tile
        index, never of which rows a request actually needed.  Combined
        with the per-centre named truncation streams this makes tile
        encodes bitwise reproducible, which is what lets cache hits, cold
        encodes and cache-off runs agree exactly.
        """
        T = self.graph.num_timestamps
        centers = np.stack([tile_keys // T, tile_keys % T], axis=1)
        sampler = EgoGraphSampler(self.graph, self.config)
        batch = sampler.inference_batch(centers)
        return self.model.encode_inference(
            batch.computation_batch(self.config.packed_batches)
        )

    def chunk_embeddings(self, centers: np.ndarray) -> np.ndarray:
        """Embeddings for explicit ``(u, t)`` centres, cache-aware.

        Hits are copied straight out of the cache; misses (or a disabled /
        stale cache) encode the canonical tiles covering the missing keys
        and, when the cache is writable, persist every tile row for later
        calls.  Consumes no RNG.
        """
        centers = np.asarray(centers, dtype=np.int64)
        T = self.graph.num_timestamps
        keys = centers[:, 0] * np.int64(T) + centers[:, 1]
        out = np.empty((keys.size, self.config.hidden_dim), dtype=self.config.np_dtype)
        cache = self.cache
        usable = cache is not None and cache.ensure(*self._cache_tokens())
        if usable:
            need = ~cache.fill(keys, out)
        else:
            need = np.ones(keys.size, dtype=bool)
        if need.any():
            num_rows = self.graph.num_nodes * T
            for tile in np.unique(keys[need] // EMBED_TILE).tolist():
                start = tile * EMBED_TILE
                tile_keys = np.arange(
                    start, min(start + EMBED_TILE, num_rows), dtype=np.int64
                )
                rows = self._encode_tile_rows(tile_keys)
                if usable:
                    cache.store(tile_keys, rows)
                sel = need & (keys // EMBED_TILE == tile)
                out[sel] = rows[keys[sel] - start]
        return out

    def warm_rows(self, keys: np.ndarray) -> None:
        """Prefill the writable cache for ``keys`` before chunk fan-out.

        Called at the top of every public inference entry point so pooled
        dispatch is decode-only: the parent encodes each missing tile
        exactly once, the shm layer mirrors the segment, and workers (or
        threads) only ever *read*.  No-op without a writable cache.
        """
        cache = self.cache
        if cache is None or not cache.writable:
            return
        self._weights_token = None
        cache.ensure(*self._cache_tokens())
        keys = np.unique(np.asarray(keys, dtype=np.int64))
        missing = keys[~cache.valid[keys]]
        if missing.size == 0:
            return
        num_rows = self.graph.num_nodes * self.graph.num_timestamps
        for tile in np.unique(missing // EMBED_TILE).tolist():
            start = tile * EMBED_TILE
            tile_keys = np.arange(
                start, min(start + EMBED_TILE, num_rows), dtype=np.int64
            )
            cache.store(tile_keys, self._encode_tile_rows(tile_keys))

    # ------------------------------------------------------------------
    # Candidate assembly (vectorised)
    # ------------------------------------------------------------------
    def candidate_batch(
        self,
        centers: np.ndarray,
        rng: np.random.Generator,
        min_distinct: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched candidate sets: historical partners + uniform negatives.

        One vectorised gather from the graph's cached partner CSR replaces
        the old per-row python loop: every row starts with (up to ``width``)
        of its centre's distinct historical out-partners and is completed
        with uniform negatives drawn in a single batched call.

        When ``min_distinct`` is given, the row width grows to
        ``max(candidate_limit, min_distinct.max() + 1)`` and any row whose
        distinct usable slots (first occurrences, centre excluded) still
        fall short of its requirement is padded with extra *distinct*
        uniform negatives -- the fix for the silent under-fill degenerate
        case where a small pool produced fewer targets than observed.
        """
        return self.candidates_with_mask(centers, rng, min_distinct=min_distinct)[0]

    def candidates_with_mask(
        self,
        centers: np.ndarray,
        rng: np.random.Generator,
        min_distinct: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`candidate_batch` plus its usable-slot mask, computed once.

        Returns ``(candidates, allowed)`` where ``allowed`` is the
        :func:`distinct_allowed_mask` of the final candidate array with the
        centres forbidden -- the mask the sampler needs, produced as a
        by-product of the padding pass instead of being recomputed.
        """
        limit = max(self.config.candidate_limit, 1)
        n = self.graph.num_nodes
        nodes = np.asarray(centers[:, 0], dtype=np.int64)
        rows = nodes.size
        width = limit
        needed: Optional[np.ndarray] = None
        if min_distinct is not None:
            needed = np.minimum(np.asarray(min_distinct, dtype=np.int64), n - 1)
            width = max(limit, int(needed.max(initial=0)) + 1)
        offsets, partners = self.graph.out_partner_groups()
        # Cache-blocked assembly: fixed-size row tiles, each fully finished
        # (negatives, CSR gather, hub subsample, distinct mask, padding)
        # before the next starts, so the per-tile scratch stays hot.  A
        # single tile reproduces the untiled RNG call order exactly.
        out = np.empty((rows, width), dtype=np.int64)
        allowed = np.empty((rows, width), dtype=bool)
        cols = np.arange(width)
        for start in range(0, max(rows, 1), _CAND_TILE_ROWS):
            stop = min(start + _CAND_TILE_ROWS, rows)
            self._assemble_tile(
                out[start:stop],
                allowed[start:stop],
                nodes[start:stop],
                None if needed is None else needed[start:stop],
                offsets,
                partners,
                cols,
                rng,
            )
        return out, allowed

    def _assemble_tile(
        self,
        out: np.ndarray,
        allowed: np.ndarray,
        nodes: np.ndarray,
        needed: Optional[np.ndarray],
        offsets: np.ndarray,
        partners: np.ndarray,
        cols: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Assemble one tile of candidate rows in place.

        ``out``/``allowed`` are ``(tile, width)`` views into the batch
        arrays; ``nodes``/``needed`` the matching row slices.  Uniform
        negatives first, then historical partners gathered from the CSR
        prefix, then an unbiased without-replacement subsample for hub rows
        whose pool overflows the width, then the distinct-slot mask and
        deficient-row padding.
        """
        n = self.graph.num_nodes
        width = out.shape[1]
        pool_counts = offsets[nodes + 1] - offsets[nodes]
        take = np.minimum(pool_counts, width)
        out[...] = rng.integers(0, n, size=out.shape, dtype=np.int64)
        if partners.size:
            partner_slot = cols[None, :] < take[:, None]
            gather = np.where(partner_slot, offsets[nodes][:, None] + cols[None, :], 0)
            np.copyto(out, partners[gather], where=partner_slot)
            # Hubs with more partners than slots: an ascending-id prefix would
            # systematically exclude high-id partners, so overflowing rows
            # take an unbiased without-replacement subsample of their pool --
            # batched random keys per pool entry, the `width` smallest keys
            # per row form a uniform subset (no per-row Python round-trips).
            over = np.nonzero(pool_counts > width)[0]
            if over.size:
                over_counts = pool_counts[over]
                max_pool = int(over_counts.max())
                keys = rng.random((over.size, max_pool))
                keys[np.arange(max_pool)[None, :] >= over_counts[:, None]] = np.inf
                pick = np.argpartition(keys, width - 1, axis=1)[:, :width]
                out[over] = partners[offsets[nodes[over]][:, None] + pick]
        allowed[...] = distinct_allowed_mask(out, nodes)
        if needed is not None:
            self._pad_deficient_rows(out, nodes, needed, rng, allowed)

    def _pad_deficient_rows(
        self,
        candidates: np.ndarray,
        nodes: np.ndarray,
        needed: np.ndarray,
        rng: np.random.Generator,
        allowed: np.ndarray,
    ) -> None:
        """Top up rows whose distinct usable candidates fall short (in place).

        Duplicate slots are overwritten with fresh node ids not yet present
        in the row: a few rejection-sampling rounds of uniform negatives,
        then an exact set-difference fallback for tiny universes.  Row
        widths guarantee enough surplus slots (``width >= needed + 1``).
        Both ``candidates`` and its ``allowed`` mask are updated in place.
        """
        n = self.graph.num_nodes
        have = allowed.sum(axis=1)
        for row in np.nonzero(have < needed)[0]:
            missing = int(needed[row] - have[row])
            taken = set(candidates[row].tolist())
            taken.add(int(nodes[row]))
            fresh: List[int] = []
            for _ in range(_PAD_ATTEMPTS):
                if len(fresh) >= missing:
                    break
                for value in rng.integers(0, n, size=4 * missing).tolist():
                    if value not in taken:
                        taken.add(value)
                        fresh.append(value)
                        if len(fresh) == missing:
                            break
            if len(fresh) < missing:
                remaining = np.setdiff1d(
                    np.arange(n), np.fromiter(taken, dtype=np.int64, count=len(taken))
                )
                extra = rng.permutation(remaining)[: missing - len(fresh)]
                fresh.extend(extra.tolist())
            slots = np.nonzero(~allowed[row])[0][: len(fresh)]
            candidates[row, slots] = np.asarray(fresh, dtype=np.int64)
            allowed[row] = distinct_allowed_mask(
                candidates[row : row + 1], nodes[row : row + 1]
            )[0]

    # ------------------------------------------------------------------
    # Chunking / sharding knobs
    # ------------------------------------------------------------------
    def _resolve_chunk(self, override: Optional[int], total: int) -> int:
        """The chunk size to shard ``total`` centres into, validated.

        Precedence: explicit ``override`` argument, then
        ``config.chunk_size``, then ``config.num_initial_nodes``.  A
        non-positive value is a :class:`ConfigError` (the old code silently
        masked these with ``max(..., 16)``); a chunk larger than the centre
        count simply degrades to a single chunk.
        """
        size = override
        if size is None:
            size = self.config.chunk_size
        if size is None:
            size = self.config.num_initial_nodes
        size = int(size)
        if size < 1:
            raise ConfigError(f"chunk size must be >= 1, got {size}")
        if total > 0:
            size = min(size, total)
        return size

    def _resolve_workers(self, override: Optional[int]) -> int:
        workers = int(override if override is not None else self.config.workers)
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        return workers

    # ------------------------------------------------------------------
    # Generation (Sec. IV-G)
    # ------------------------------------------------------------------
    def generate(
        self,
        rng: np.random.Generator,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        backend: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
    ) -> TemporalGraph:
        """Assemble one synthetic graph matching the observed edge budgets.

        Every active temporal node ``(u, t)`` draws its observed number of
        distinct targets without replacement from its decoded distribution;
        the remaining ``d - k`` edge budget repeats those targets
        proportionally to their probabilities so multi-edge (bursty)
        structure survives.  In streaming mode the draw happens inside the
        candidate set -- probabilities are never scattered into full
        ``num_nodes``-wide rows.

        The centre set is sharded into chunks; one root seed drawn from
        ``rng`` spawns a seed-sequence child per chunk *before* dispatch,
        so the generated graph depends only on ``rng``'s state and the
        chunk partitioning -- never on ``workers`` or ``backend``.
        ``workers``/``chunk_size``/``backend`` default to the config knobs;
        ``pool`` dispatches through a persistent
        :class:`~repro.core.parallel.WorkerPool` instead of a throwaway
        executor (amortising startup over repeated calls).
        """
        graph = self.graph
        centers_all, degrees, distinct_counts = self.active_nodes()
        total = centers_all.shape[0]
        chunk = self._resolve_chunk(chunk_size, total)
        workers = self._resolve_workers(workers)
        backend = backend if backend is not None else self.config.parallel_backend
        root = np.random.SeedSequence(int(rng.integers(np.iinfo(np.int64).max)))
        starts = list(range(0, total, chunk))
        children = spawn_streams(root, len(starts))
        tasks = [
            GenerateChunkTask(
                index=i,
                centers=centers_all[start : start + chunk],
                degrees=degrees[start : start + chunk],
                distinct=distinct_counts[start : start + chunk],
                seed_seq=children[i],
            )
            for i, start in enumerate(starts)
        ]
        self.model.eval()
        self.warm_rows(
            centers_all[:, 0] * np.int64(graph.num_timestamps) + centers_all[:, 1]
        )
        results = run_sharded(
            self, "generate", tasks, workers=workers, backend=backend, pool=pool
        )
        src_out = [src for src, _, _ in results if src.size]
        dst_out = [dst for _, dst, _ in results if dst.size]
        t_out = [t for _, _, t in results if t.size]
        if not src_out:
            raise GenerationError("generation produced no edges")
        return TemporalGraph(
            graph.num_nodes,
            np.concatenate(src_out),
            np.concatenate(dst_out),
            np.concatenate(t_out),
            num_timestamps=graph.num_timestamps,
            validate=False,
        )

    def generate_chunk(
        self, task: GenerateChunkTask
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample the edges of one centre chunk; pure given the task.

        Runs in the parent (``workers=1``), in a worker thread, or in a
        worker process against a rebuilt engine -- identically in all
        three, because its only randomness comes from the task's spawned
        seed-sequence child.  Returns ``(src, dst, t)`` arrays (possibly
        empty: an empty centre shard is an explicit no-op).
        """
        empty = np.array([], dtype=np.int64)
        if task.centers.shape[0] == 0:
            return empty, empty, empty
        rng = np.random.default_rng(task.seed_seq)
        streaming = self.config.candidate_limit > 0
        part = task.centers
        part_deg = task.degrees
        part_distinct = task.distinct
        with no_grad():
            # Canonical chunk stream: candidate assembly first, then the
            # RNG-free embedding lookup/encode, then the Gumbel draw -- the
            # order is identical whether every embedding row is a cache hit
            # or a cold tile encode, so outputs cannot depend on cache state.
            if streaming:
                cand, allowed = self.candidates_with_mask(
                    part, rng, min_distinct=part_distinct
                )
            else:
                cand = allowed = None
            embeddings = self.chunk_embeddings(part)
            decoded = self.model.decode_from_embeddings(
                embeddings, part, candidates=cand
            )
            probs = softmax(decoded.logits, axis=-1).numpy()
            if streaming:
                probs = fold_duplicate_mass(cand, probs)
                drawn = sample_rows_without_replacement(
                    probs, part_distinct, rng, allowed=allowed
                )
            else:
                drawn = sample_rows_without_replacement(
                    probs, part_distinct, rng, forbid=part[:, 0]
                )
        # Vectorised edge assembly: one pass collects the per-row target
        # pieces (preserving the historical per-row `rng.choice` call order
        # for multi-edge repeats), then src/t come from a single np.repeat
        # over the per-row counts instead of per-row np.full/concatenate.
        out_counts = np.zeros(len(drawn), dtype=np.int64)
        pieces: List[np.ndarray] = []
        for row, cols in enumerate(drawn):
            if cols.size == 0:
                continue
            targets = cand[row, cols] if cand is not None else cols
            extra = int(part_deg[row]) - targets.size
            pieces.append(targets)
            if extra > 0:
                # Multi-edges: repeat drawn targets proportionally to
                # their decoded probabilities.
                weight = probs[row][cols]
                weight = weight / weight.sum() if weight.sum() > 0 else None
                pieces.append(rng.choice(targets, size=extra, p=weight))
                out_counts[row] = targets.size + extra
            else:
                out_counts[row] = targets.size
        if not pieces:
            return empty, empty, empty
        return (
            np.repeat(part[:, 0].astype(np.int64), out_counts),
            np.concatenate(pieces).astype(np.int64),
            np.repeat(part[:, 1].astype(np.int64), out_counts),
        )

    # ------------------------------------------------------------------
    # Score inspection
    # ------------------------------------------------------------------
    def dense_score_rows(
        self, centers: np.ndarray, sampler: Optional[EgoGraphSampler] = None
    ) -> np.ndarray:
        """Full softmax rows for explicit centres (test/debug helper).

        Always decodes against the whole node universe regardless of
        ``candidate_limit``; used by the small-graph score-matrix helper.
        Embeddings come from the versioned cache when one is attached
        (populating it on miss).  ``sampler`` is accepted for backwards
        compatibility but unused: inference ego-graphs draw from named
        per-centre streams, not a caller-provided generator.
        """
        centers = np.asarray(centers, dtype=np.int64)
        self._weights_token = None
        with no_grad():
            embeddings = self.chunk_embeddings(centers)
            decoded = self.model.decode_from_embeddings(embeddings, centers)
            return softmax(decoded.logits, axis=-1).numpy()

    def score_topk(
        self,
        k: int,
        timestamps: Optional[List[int]] = None,
        chunk: Optional[int] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
    ) -> TopKScores:
        """Chunked top-``k`` decoded scores as sparse triples.

        Shards centres ``(u, t)`` into per-timestamp chunks, decodes each
        chunk once (over candidate sets in streaming mode, the full
        universe otherwise) and keeps only the ``k`` highest-probability
        targets per centre -- peak memory is O(chunk * max(C, n)) while the
        output is O(n * k) triples, never an ``(n, T, n)`` tensor.  Chunks
        draw from seed-sequence children spawned off the named
        ``(seed, "tgae", "score-topk")`` stream, so the triples are
        bit-identical for every worker count and backend.
        """
        if k < 1:
            raise GenerationError(f"k must be >= 1, got {k}")
        graph = self.graph
        stamps = (
            list(timestamps) if timestamps is not None else list(range(graph.num_timestamps))
        )
        step = self._resolve_chunk(chunk, graph.num_nodes)
        workers = self._resolve_workers(workers)
        backend = backend if backend is not None else self.config.parallel_backend
        root = seed_sequence(self.config.seed, "tgae", "score-topk")
        specs = [
            (timestamp, np.arange(start, min(start + step, graph.num_nodes)))
            for timestamp in stamps
            for start in range(0, graph.num_nodes, step)
        ]
        children = spawn_streams(root, len(specs))
        tasks = [
            TopKChunkTask(
                index=i, node_ids=node_ids, timestamp=int(timestamp), k=k,
                seed_seq=children[i],
            )
            for i, (timestamp, node_ids) in enumerate(specs)
        ]
        self.model.eval()
        if specs:
            self.warm_rows(
                np.concatenate(
                    [
                        node_ids * np.int64(graph.num_timestamps) + np.int64(timestamp)
                        for timestamp, node_ids in specs
                    ]
                )
            )
        results = run_sharded(
            self, "topk", tasks, workers=workers, backend=backend, pool=pool
        )
        nodes_out = [nodes for nodes, _, _, _ in results]
        stamps_out = [stamps_ for _, stamps_, _, _ in results]
        targets_out = [targets for _, _, targets, _ in results]
        scores_out = [scores for _, _, _, scores in results]
        return TopKScores(
            node=np.concatenate(nodes_out) if nodes_out else np.empty(0, dtype=np.int64),
            timestamp=(
                np.concatenate(stamps_out) if stamps_out else np.empty(0, dtype=np.int64)
            ),
            target=(
                np.concatenate(targets_out) if targets_out else np.empty(0, dtype=np.int64)
            ),
            score=(
                np.concatenate(scores_out) if scores_out else np.empty(0, dtype=np.float64)
            ),
        )

    def topk_chunk(
        self, task: TopKChunkTask
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Top-``k`` triples for one ``(timestamp, node chunk)`` shard.

        Pure given the task (all randomness from its seed-sequence child);
        returns ``(nodes, timestamps, targets, scores)`` arrays.
        """
        empty = np.array([], dtype=np.int64)
        node_ids = np.asarray(task.node_ids, dtype=np.int64)
        if node_ids.size == 0:
            return empty, empty, empty, np.array([], dtype=np.float64)
        rng = np.random.default_rng(task.seed_seq)
        streaming = self.config.candidate_limit > 0
        part = np.stack([node_ids, np.full(node_ids.size, task.timestamp)], axis=1)
        with no_grad():
            cand = self.candidate_batch(part, rng) if streaming else None
            embeddings = self.chunk_embeddings(part)
            decoded = self.model.decode_from_embeddings(
                embeddings, part, candidates=cand
            )
            probs = softmax(decoded.logits, axis=-1).numpy()
            if streaming:
                # Fold duplicate-slot mass so each target appears once
                # and the row remains a proper distribution.
                probs = fold_duplicate_mass(cand, probs)
        kk = min(task.k, probs.shape[1])
        top = np.argpartition(-probs, kk - 1, axis=1)[:, :kk]
        top_scores = np.take_along_axis(probs, top, axis=1)
        order = np.argsort(-top_scores, axis=1, kind="stable")
        top = np.take_along_axis(top, order, axis=1)
        top_scores = np.take_along_axis(top_scores, order, axis=1)
        columns = (
            np.take_along_axis(cand, top, axis=1) if cand is not None else top
        )
        keep = top_scores > 0
        rows = np.repeat(node_ids, kk).reshape(node_ids.size, kk)
        return (
            rows[keep],
            np.full(int(keep.sum()), task.timestamp, dtype=np.int64),
            columns[keep],
            top_scores[keep],
        )
