"""Continuous-time generation: the Sec. III extension, end to end.

The paper models temporal graphs as snapshot series but states the approach
"can be extended to process and generate graphs that reflect the temporal
changes among all time stamps".  This module delivers that extension as an
API: :class:`ContinuousTimeGenerator` accepts a raw
:class:`~repro.graph.event_stream.EventStream`, bins it for the wrapped
snapshot generator (TGAE or any baseline), and lifts the generated snapshots
back to continuous time.

The lift is the part that matters.  A naive uniform smear inside each bin
destroys within-bin temporal texture (burstiness collapses toward the
Poisson value).  Instead, the generator learns each bin's *empirical
within-bin offset distribution* from the observed stream and bootstraps
generated event times from it, so bursty bins stay bursty and quiet bins
stay quiet -- verified against the uniform smear by the tests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..base import TemporalGraphGenerator
from ..errors import ConfigError, NotFittedError
from ..graph.discretize import discretize_timestamps
from ..graph.event_stream import EventStream
from ..graph.temporal_graph import TemporalGraph


class ContinuousTimeGenerator:
    """Fit on an event stream, generate an event stream.

    Parameters
    ----------
    base:
        Any snapshot-level :class:`~repro.base.TemporalGraphGenerator`;
        it sees the binned view and never deals with raw times.
    num_bins:
        Number of snapshots ``T`` used for the discrete view.
    policy:
        Binning policy (``"equal_width"`` or ``"equal_frequency"``), passed
        to :func:`repro.graph.discretize.discretize_timestamps`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.baselines import ErdosRenyiGenerator
    >>> from repro.core.continuous import ContinuousTimeGenerator
    >>> from repro.graph import EventStream
    >>> rng = np.random.default_rng(0)
    >>> stream = EventStream(10, rng.integers(0, 10, 60),
    ...                      rng.integers(0, 10, 60), rng.uniform(0, 5, 60))
    >>> gen = ContinuousTimeGenerator(ErdosRenyiGenerator(), num_bins=5)
    >>> synthetic = gen.fit(stream).generate(seed=0)
    >>> synthetic.num_events == stream.num_events
    True
    """

    def __init__(
        self,
        base: TemporalGraphGenerator,
        num_bins: int = 16,
        policy: str = "equal_width",
    ) -> None:
        if num_bins < 1:
            raise ConfigError(f"num_bins must be >= 1, got {num_bins}")
        if policy not in ("equal_width", "equal_frequency"):
            raise ConfigError(
                f"unknown policy {policy!r}; options: equal_width, equal_frequency"
            )
        self.base = base
        self.num_bins = int(num_bins)
        self.policy = policy
        self.name = f"continuous-{getattr(base, 'name', type(base).__name__)}"
        self._boundaries: Optional[np.ndarray] = None
        self._bin_offsets: Optional[List[np.ndarray]] = None
        self._observed: Optional[EventStream] = None

    @property
    def is_fitted(self) -> bool:
        return self._observed is not None

    # ------------------------------------------------------------------
    def fit(self, stream: EventStream) -> "ContinuousTimeGenerator":
        """Bin the stream, fit the wrapped generator, learn bin offsets."""
        bins, boundaries = discretize_timestamps(
            stream.times, self.num_bins, policy=self.policy
        )
        graph = TemporalGraph(
            stream.num_nodes, stream.src, stream.dst, bins,
            num_timestamps=self.num_bins,
        )
        self.base.fit(graph)
        # Normalised within-bin offsets (in [0, 1]) per bin: the empirical
        # intra-bin arrival profile that the lift bootstraps from.
        offsets: List[np.ndarray] = []
        for b in range(self.num_bins):
            lo, hi = boundaries[b], boundaries[b + 1]
            width = max(hi - lo, 1e-12)
            inside = stream.times[bins == b]
            offsets.append(np.sort((inside - lo) / width))
        self._boundaries = boundaries
        self._bin_offsets = offsets
        self._observed = stream
        return self

    def generate(self, seed: Optional[int] = None) -> EventStream:
        """Generate snapshots with the wrapped model and lift them to times."""
        if self._observed is None or self._boundaries is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        graph = self.base.generate(seed=seed)
        rng = np.random.default_rng(seed)
        assert self._bin_offsets is not None
        times = np.empty(graph.num_edges, dtype=np.float64)
        for b in range(self.num_bins):
            mask = graph.t == b
            count = int(mask.sum())
            if count == 0:
                continue
            lo, hi = self._boundaries[b], self._boundaries[b + 1]
            width = max(hi - lo, 1e-12)
            observed_offsets = self._bin_offsets[b]
            if observed_offsets.size:
                # Bootstrap the empirical intra-bin profile with a small
                # smoothing jitter (half a typical gap) so repeated draws do
                # not collide exactly.
                picks = rng.choice(observed_offsets, size=count)
                jitter_scale = 0.5 / max(observed_offsets.size, 1)
                picks = np.clip(
                    picks + rng.uniform(-jitter_scale, jitter_scale, size=count),
                    0.0,
                    1.0,
                )
            else:
                picks = rng.uniform(0.0, 1.0, size=count)
            times[mask] = lo + picks * width
        return EventStream(graph.num_nodes, graph.src, graph.dst, times)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(base={self.base!r}, T={self.num_bins})"
