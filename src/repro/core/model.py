"""The Temporal Graph Auto-Encoder module: encoder + variational decoder."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..autograd import Tensor, no_grad
from ..graph.bipartite import BipartiteBatch, PackedEgoBatch
from ..nn import Module
from .config import TGAEConfig
from .decoder import DecoderOutput, EgoGraphDecoder
from .encoder import TGAEEncoder


class TGAEModel(Module):
    """End-to-end TGAE: bipartite batch in, edge distributions out.

    The module owns the encoder (Sec. IV-C) and the decoder (Sec. IV-D);
    sampling and training logic live in :mod:`repro.core.sampler` and
    :mod:`repro.core.trainer`, generation in :mod:`repro.core.generator`.
    """

    def __init__(
        self,
        num_nodes: int,
        num_timestamps: int,
        config: TGAEConfig,
        rng: Optional[np.random.Generator] = None,
        feature_dim: int = 0,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.config = config
        self.num_nodes = num_nodes
        self.num_timestamps = num_timestamps
        self.encoder = TGAEEncoder(
            num_nodes, num_timestamps, config, rng=rng, feature_dim=feature_dim
        )
        self.decoder = EgoGraphDecoder(num_nodes, config, rng=rng)
        # Apply the session dtype policy once, after all parameters exist:
        # init draws happen at float64 under every policy, then cast here
        # (a no-op for float64, keeping the golden path bit-identical).
        self.to_dtype(config.np_dtype)

    def forward(
        self,
        batch: Union[BipartiteBatch, PackedEgoBatch],
        sample: bool = True,
        candidates: Optional[np.ndarray] = None,
        noise_rng: Optional[np.random.Generator] = None,
    ) -> DecoderOutput:
        """Encode the batch's centres and decode their edge distributions.

        Parameters
        ----------
        batch:
            Either merged ego-graphs in k-bipartite form
            (:class:`BipartiteBatch`) or the padded ego-parallel layout
            (:class:`PackedEgoBatch`); the packed layout is the vectorised
            hot path used by training and generation.
        sample:
            Forwarded to the decoder: reparameterised latent (training) vs
            posterior mean (inference).
        candidates:
            Optional ``(batch, C)`` candidate sets; when given the decoder
            runs in sampled-softmax mode and the returned logits index into
            the candidate sets instead of the node universe.
        noise_rng:
            Explicit generator for the decoder's reparameterisation noise;
            the sharded trainer passes its per-shard stream here so draws
            never depend on worker scheduling.
        """
        if isinstance(batch, PackedEgoBatch):
            center_nodes = batch.center_nodes
            center_hidden = self.encoder.encode_batch(batch)
        else:
            center_nodes = batch.level_nodes[0][batch.center_index]
            center_hidden = self.encoder.encode_centers(batch)
        center_features = self.encoder.node_features(center_nodes)
        if candidates is not None:
            return self.decoder.forward_candidates(
                center_hidden, center_features, candidates,
                sample=sample, noise_rng=noise_rng,
            )
        return self.decoder(
            center_hidden, center_features, sample=sample, noise_rng=noise_rng
        )

    # ------------------------------------------------------------------
    # Inference-path encode/decode split (embedding cache hot path)
    # ------------------------------------------------------------------
    def encode_inference(
        self, batch: Union[BipartiteBatch, PackedEgoBatch]
    ) -> np.ndarray:
        """Encoder half of the inference forward: centre embeddings as an array.

        Runs the same encoder invocation :meth:`forward` would (packed
        ego-parallel or merged bipartite, by batch type) under ``no_grad``
        and returns the ``(batch, hidden)`` embedding matrix.  Composing it
        with :meth:`decode_from_embeddings` is bitwise-identical to
        ``self(batch, sample=False)`` — the split only exposes the seam the
        embedding cache stores rows across.
        """
        with no_grad():
            if isinstance(batch, PackedEgoBatch):
                hidden = self.encoder.encode_batch(batch)
            else:
                hidden = self.encoder.encode_centers(batch)
        return hidden.numpy()

    def decode_from_embeddings(
        self,
        embeddings: np.ndarray,
        centers: np.ndarray,
        candidates: Optional[np.ndarray] = None,
    ):
        """Decoder half of the inference forward, from cached embeddings.

        ``embeddings`` is a ``(batch, hidden)`` matrix as produced by
        :meth:`encode_inference` (possibly assembled row-by-row from the
        embedding cache), ``centers`` the matching ``(batch, 2)`` temporal
        nodes ``(u, t)`` whose identity/time features the decoder input
        concatenates, ``candidates`` the optional sampled-softmax sets.
        Always the deterministic posterior-mean path (``sample=False``) —
        cache hits must not consume RNG.
        """
        with no_grad():
            center_hidden = Tensor(np.asarray(embeddings))
            center_features = self.encoder.node_features(
                np.asarray(centers, dtype=np.int64)
            )
            if candidates is not None:
                return self.decoder.forward_candidates(
                    center_hidden, center_features, candidates, sample=False
                )
            return self.decoder(center_hidden, center_features, sample=False)
