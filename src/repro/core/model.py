"""The Temporal Graph Auto-Encoder module: encoder + variational decoder."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..graph.bipartite import BipartiteBatch, PackedEgoBatch
from ..nn import Module
from .config import TGAEConfig
from .decoder import DecoderOutput, EgoGraphDecoder
from .encoder import TGAEEncoder


class TGAEModel(Module):
    """End-to-end TGAE: bipartite batch in, edge distributions out.

    The module owns the encoder (Sec. IV-C) and the decoder (Sec. IV-D);
    sampling and training logic live in :mod:`repro.core.sampler` and
    :mod:`repro.core.trainer`, generation in :mod:`repro.core.generator`.
    """

    def __init__(
        self,
        num_nodes: int,
        num_timestamps: int,
        config: TGAEConfig,
        rng: Optional[np.random.Generator] = None,
        feature_dim: int = 0,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.config = config
        self.num_nodes = num_nodes
        self.num_timestamps = num_timestamps
        self.encoder = TGAEEncoder(
            num_nodes, num_timestamps, config, rng=rng, feature_dim=feature_dim
        )
        self.decoder = EgoGraphDecoder(num_nodes, config, rng=rng)
        # Apply the session dtype policy once, after all parameters exist:
        # init draws happen at float64 under every policy, then cast here
        # (a no-op for float64, keeping the golden path bit-identical).
        self.to_dtype(config.np_dtype)

    def forward(
        self,
        batch: Union[BipartiteBatch, PackedEgoBatch],
        sample: bool = True,
        candidates: Optional[np.ndarray] = None,
        noise_rng: Optional[np.random.Generator] = None,
    ) -> DecoderOutput:
        """Encode the batch's centres and decode their edge distributions.

        Parameters
        ----------
        batch:
            Either merged ego-graphs in k-bipartite form
            (:class:`BipartiteBatch`) or the padded ego-parallel layout
            (:class:`PackedEgoBatch`); the packed layout is the vectorised
            hot path used by training and generation.
        sample:
            Forwarded to the decoder: reparameterised latent (training) vs
            posterior mean (inference).
        candidates:
            Optional ``(batch, C)`` candidate sets; when given the decoder
            runs in sampled-softmax mode and the returned logits index into
            the candidate sets instead of the node universe.
        noise_rng:
            Explicit generator for the decoder's reparameterisation noise;
            the sharded trainer passes its per-shard stream here so draws
            never depend on worker scheduling.
        """
        if isinstance(batch, PackedEgoBatch):
            center_nodes = batch.center_nodes
            center_hidden = self.encoder.encode_batch(batch)
        else:
            center_nodes = batch.level_nodes[0][batch.center_index]
            center_hidden = self.encoder.encode_centers(batch)
        center_features = self.encoder.node_features(center_nodes)
        if candidates is not None:
            return self.decoder.forward_candidates(
                center_hidden, center_features, candidates,
                sample=sample, noise_rng=noise_rng,
            )
        return self.decoder(
            center_hidden, center_features, sample=sample, noise_rng=noise_rng
        )
