"""Ablation variants of TGAE (Sec. IV-F, Table VII).

Factory functions return fully-configured :class:`TGAEGenerator` objects:

* :func:`tgae_full`  -- the complete model;
* :func:`tgae_g`     -- ego-graph sampling degraded to temporal random walks
  (threshold below 2 makes every ego-graph a chain);
* :func:`tgae_t`     -- neighbour truncation disabled;
* :func:`tgae_n`     -- uniform initial node sampling (no Eq. 2 re-weighting);
* :func:`tgae_p`     -- non-probabilistic decoder (Eq. 8/9).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .config import TGAEConfig
from .generator import TGAEGenerator


def tgae_full(config: Optional[TGAEConfig] = None) -> TGAEGenerator:
    """The complete TGAE model."""
    gen = TGAEGenerator(config if config is not None else TGAEConfig())
    gen.name = "TGAE"
    return gen


def tgae_g(config: Optional[TGAEConfig] = None) -> TGAEGenerator:
    """TGAE-g: random-walk-shaped ego-graphs."""
    base = config if config is not None else TGAEConfig()
    gen = TGAEGenerator(base.as_random_walk_variant())
    gen.name = "TGAE-g"
    return gen


def tgae_t(config: Optional[TGAEConfig] = None) -> TGAEGenerator:
    """TGAE-t: no neighbour truncation."""
    base = config if config is not None else TGAEConfig()
    gen = TGAEGenerator(base.as_no_truncation_variant())
    gen.name = "TGAE-t"
    return gen


def tgae_n(config: Optional[TGAEConfig] = None) -> TGAEGenerator:
    """TGAE-n: uniform initial node sampling."""
    base = config if config is not None else TGAEConfig()
    gen = TGAEGenerator(base.as_uniform_sampling_variant())
    gen.name = "TGAE-n"
    return gen


def tgae_p(config: Optional[TGAEConfig] = None) -> TGAEGenerator:
    """TGAE-p: non-probabilistic decoder."""
    base = config if config is not None else TGAEConfig()
    gen = TGAEGenerator(base.as_non_probabilistic_variant())
    gen.name = "TGAE-p"
    return gen


#: Variant registry used by the Table VII ablation benchmark.
VARIANTS: Dict[str, Callable[[Optional[TGAEConfig]], TGAEGenerator]] = {
    "TGAE": tgae_full,
    "TGAE-g": tgae_g,
    "TGAE-t": tgae_t,
    "TGAE-n": tgae_n,
    "TGAE-p": tgae_p,
}
