"""Upscaled generation: simulate graphs *larger* than the observed one.

The paper closes with "in the future, we aim to scale the learning-based
approaches to simulate large graphs with billion nodes".  A generator fitted
on an n-node graph natively reproduces the same universe; this module adds
the standard expansion step used by scalable simulators (R-MAT-style
oversampling, TrillionG): every observed node becomes ``factor`` *clones*,
and every generated edge ``(u, v, t)`` spawns ``factor`` edges whose
endpoints are drawn uniformly among the clones of ``u`` and ``v``.

Properties of the expansion (asserted by the tests):

* node count and edge count scale exactly by ``factor``;
* every clone's expected (out-/in-)degree equals its prototype's degree, so
  the degree *distribution* is preserved (PLE in particular);
* per-timestamp edge counts scale exactly by ``factor``, so the temporal
  activity profile is preserved;
* community/block structure is inherited because clones of connected
  prototypes stay preferentially connected.

What is intentionally *not* preserved: exact motif counts (a triangle's
corners now spread over ``factor**3`` clone combinations), which is the
usual trade-off of clone-based expansion and is documented in the bench.

:class:`UpscaledGenerator` composes with any fitted
:class:`~repro.base.TemporalGraphGenerator` (TGAE or any baseline), keeping
the two-phase ``fit``/``generate`` API.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..base import TemporalGraphGenerator
from ..errors import ConfigError, GenerationError
from ..graph.temporal_graph import TemporalGraph
from ..rng import seed_sequence


def expand_temporal_graph(
    graph: TemporalGraph,
    factor: int,
    seed: "Optional[int | np.random.SeedSequence]" = None,
) -> TemporalGraph:
    """Clone-expand a temporal graph by an integer ``factor``.

    Node ``u`` of the input becomes clones ``u * factor .. u * factor +
    factor - 1``; each input edge spawns ``factor`` output edges at the same
    timestamp with endpoints drawn uniformly among the clones (self-loops
    between distinct clones of the same prototype are allowed -- prototypes
    with true self-loops excepted, those are redrawn once to differ).
    """
    if factor < 1:
        raise ConfigError(f"expansion factor must be >= 1, got {factor}")
    if factor == 1:
        return graph.copy()
    rng = np.random.default_rng(seed)
    m = graph.num_edges
    src = np.repeat(graph.src, factor) * factor + rng.integers(
        0, factor, size=m * factor
    )
    dst = np.repeat(graph.dst, factor) * factor + rng.integers(
        0, factor, size=m * factor
    )
    t = np.repeat(graph.t, factor)
    # Clones of a self-loop prototype collapse to true self-loops sometimes;
    # nudge those to a sibling clone.
    loops = src == dst
    if np.any(loops):
        offset = 1 + rng.integers(0, max(factor - 1, 1), size=int(loops.sum()))
        prototype = dst[loops] // factor
        dst[loops] = prototype * factor + (dst[loops] % factor + offset) % factor
    return TemporalGraph(
        graph.num_nodes * factor, src, dst, t,
        num_timestamps=graph.num_timestamps, validate=False,
    )


class UpscaledGenerator(TemporalGraphGenerator):
    """Wrap any generator to emit graphs ``factor`` times larger.

    Parameters
    ----------
    base:
        The generator whose learned distribution is expanded.  It is fitted
        on the observed graph as usual; only its *output* is expanded.
    factor:
        Integer node-count multiplier (>= 1).

    Examples
    --------
    >>> from repro.core import TGAEGenerator, fast_config
    >>> from repro.core.upscale import UpscaledGenerator
    >>> from repro.datasets import load_dataset
    >>> observed = load_dataset("DBLP", scale="small")
    >>> big = UpscaledGenerator(TGAEGenerator(fast_config(epochs=2)), factor=4)
    >>> graph = big.fit(observed).generate(seed=0)
    >>> graph.num_nodes == observed.num_nodes * 4
    True
    """

    def __init__(self, base: TemporalGraphGenerator, factor: int) -> None:
        super().__init__()
        if factor < 1:
            raise ConfigError(f"expansion factor must be >= 1, got {factor}")
        self.base = base
        self.factor = int(factor)
        self.name = f"{getattr(base, 'name', type(base).__name__)}x{factor}"

    def _fit(self, graph: TemporalGraph) -> None:
        self.base.fit(graph)

    def _generate(self, seed: Optional[int]) -> TemporalGraph:
        generated = self.base.generate(seed=seed)
        if generated.num_edges == 0:
            raise GenerationError("base generator produced an empty graph")
        # Named child stream of the user seed -- an integer offset here
        # would collide with the base generator's own stream for some seeds.
        expand_seed = None if seed is None else seed_sequence(seed, "upscale", "expand")
        return expand_temporal_graph(generated, self.factor, seed=expand_seed)
