"""TGAE encoder: stacked temporal graph attention over bipartite batches.

Implements Sec. IV-C.  Node input features default to learned node-identity
embeddings plus a timestamp embedding; ``k`` TGAT layers then push messages
from the hop-``k`` periphery of the merged ego-graphs down to the centre
nodes through the k-bipartite computation graphs (Fig. 4), producing one
hidden vector ``h_{u^t}`` per centre temporal node (Eq. 3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, checkpoint, is_grad_enabled
from ..graph.bipartite import BipartiteBatch, PackedEgoBatch
from ..nn import (
    Embedding,
    Linear,
    Module,
    ModuleList,
    TemporalGraphAttention,
    embedding_lookup,
)
from .config import TGAEConfig


class TGAEEncoder(Module):
    """Encode centre temporal nodes of a :class:`BipartiteBatch`.

    Parameters
    ----------
    num_nodes, num_timestamps:
        Size of the node universe / timestamp range of the observed graph;
        the encoder learns one identity embedding per node and per timestamp.
    config:
        Model hyper-parameters.
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        num_nodes: int,
        num_timestamps: int,
        config: TGAEConfig,
        rng: Optional[np.random.Generator] = None,
        feature_dim: int = 0,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.config = config
        self.num_nodes = num_nodes
        self.num_timestamps = num_timestamps
        self.node_embedding = Embedding(num_nodes, config.embed_dim, rng=rng)
        self.time_embedding = Embedding(num_timestamps, config.embed_dim, rng=rng)
        self.input_proj = Linear(config.embed_dim, config.hidden_dim, rng=rng)
        # Optional external node features X (Sec. III: "topology structure
        # with/w.o. node features"); projected into the embedding space and
        # added to the identity features.
        self.feature_dim = feature_dim
        self.feature_proj = (
            Linear(feature_dim, config.embed_dim, rng=rng) if feature_dim > 0 else None
        )
        self._external_features: Optional[np.ndarray] = None
        self.layers = ModuleList(
            [
                TemporalGraphAttention(
                    in_features=config.hidden_dim,
                    out_features=config.hidden_dim,
                    num_heads=config.num_heads,
                    time_dim=config.time_dim,
                    rng=rng,
                    checkpoint=config.checkpoint_attention,
                )
                for _ in range(config.radius)
            ]
        )

    # ------------------------------------------------------------------
    def set_external_features(self, features: Optional[np.ndarray]) -> None:
        """Attach an external feature matrix.

        ``features`` is either ``(num_nodes, feature_dim)`` (static) or
        ``(num_timestamps, num_nodes, feature_dim)`` (the per-snapshot
        ``X^{(t)}`` of Alg. 1).
        """
        if features is None:
            self._external_features = None
            return
        features = np.asarray(features, dtype=self.config.np_dtype)
        if self.feature_proj is None:
            raise ValueError("encoder was built without feature support (feature_dim=0)")
        if features.ndim == 2:
            expected = (self.num_nodes, self.feature_dim)
        elif features.ndim == 3:
            expected = (self.num_timestamps, self.num_nodes, self.feature_dim)
        else:
            raise ValueError(f"features must be 2-D or 3-D, got shape {features.shape}")
        if features.shape != expected:
            raise ValueError(f"features shape {features.shape} != expected {expected}")
        self._external_features = features

    def node_features(self, temporal_nodes: np.ndarray) -> Tensor:
        """Input features for ``(node_id, timestamp)`` rows (Sec. IV-B).

        The paper's default features are node identities; we add a timestamp
        embedding so occurrences of the same node at different times are
        distinguishable, which the snapshot-indexed feature matrix
        ``X^{(t)}`` of Alg. 1 provides in the original formulation.  When an
        external feature matrix is attached, its projection is added.

        ``temporal_nodes`` may carry leading batch dimensions -- ``(n, 2)``
        and the padded ``(batch, n, 2)`` layout are both supported.
        """
        feat_w = self.feature_proj.weight if self.feature_proj is not None else None
        feat_b = self.feature_proj.bias if self.feature_proj is not None else None
        return self._features_impl(
            temporal_nodes,
            self.node_embedding.weight,
            self.time_embedding.weight,
            feat_w,
            feat_b,
        )

    # ------------------------------------------------------------------
    # Per-level input pipeline (checkpointable)
    # ------------------------------------------------------------------
    def _input_params(self) -> list:
        params = [
            self.node_embedding.weight,
            self.time_embedding.weight,
            self.input_proj.weight,
            self.input_proj.bias,
        ]
        if self.feature_proj is not None:
            params += [self.feature_proj.weight, self.feature_proj.bias]
        return params

    def _features_impl(
        self,
        temporal_nodes: np.ndarray,
        node_w: Tensor,
        time_w: Tensor,
        feat_w: Optional[Tensor] = None,
        feat_b: Optional[Tensor] = None,
    ) -> Tensor:
        """The Sec. IV-B feature computation on explicit parameter tensors.

        The single kernel behind both :meth:`node_features` (module
        parameters) and the checkpointed input pipeline (leaf copies), so
        the two can never drift apart.
        """
        ids = temporal_nodes[..., 0]
        times = temporal_nodes[..., 1]
        out = embedding_lookup(node_w, ids) + embedding_lookup(time_w, times)
        if self._external_features is not None and feat_w is not None:
            if self._external_features.ndim == 2:
                rows = self._external_features[ids]
            else:
                rows = self._external_features[times, ids]
            out = out + (Tensor(rows) @ feat_w + feat_b)
        return out

    def _input_impl(
        self,
        temporal_nodes: np.ndarray,
        node_w: Tensor,
        time_w: Tensor,
        proj_w: Tensor,
        proj_b: Tensor,
        feat_w: Optional[Tensor] = None,
        feat_b: Optional[Tensor] = None,
    ) -> Tensor:
        """``input_proj(node_features(...))`` as a pure function of its parameters."""
        out = self._features_impl(temporal_nodes, node_w, time_w, feat_w, feat_b)
        return out @ proj_w + proj_b

    def _level_input(self, temporal_nodes: np.ndarray) -> Tensor:
        """Projected input features of one bipartite level's node table.

        With ``config.checkpoint_attention`` (and gradients recording), the
        whole pipeline -- two embedding gathers, the optional external
        feature projection, and ``input_proj`` -- becomes one
        recompute-in-backward unit, so only the final ``(rows, hidden)``
        tensor stays alive per level instead of the ~5 per-row
        intermediates.  Exact: same full-shape operations either way.
        """
        params = self._input_params()
        if (
            self.config.checkpoint_attention
            and is_grad_enabled()
            and any(p.requires_grad for p in params)
        ):
            return checkpoint(
                lambda *tensors: self._input_impl(temporal_nodes, *tensors), *params
            )
        return self._input_impl(temporal_nodes, *params)

    def forward(self, batch: BipartiteBatch) -> Tensor:
        """Return hidden vectors for the *centre* nodes, ``(n_centers, hidden)``.

        One TGAT layer is applied per bipartite level, from the outermost
        (hop ``k``) inward; level nesting guarantees every target also
        receives its own previous representation through its self-loop edge.
        """
        radius = batch.radius
        # Representations of the outermost level's nodes.
        current = self._level_input(batch.level_nodes[radius])
        for level in range(radius, 0, -1):
            layer = self.layers[radius - level]
            edges = batch.levels[level - 1]
            target_nodes = batch.level_nodes[level - 1]
            target_feats = self._level_input(target_nodes)
            current = layer(
                h_src=current,
                h_dst=target_feats,
                src_index=edges.src_index,
                dst_index=edges.dst_index,
                delta_t=edges.delta_t,
            )
        return current

    def encode_centers(self, batch: BipartiteBatch) -> Tensor:
        """Hidden vectors aligned with the original ego-graph order."""
        return self.forward(batch).take_rows(batch.center_index)

    def encode_batch(self, packed: PackedEgoBatch) -> Tensor:
        """Encode a padded ego-parallel batch in one vectorised forward.

        Returns ``(batch, hidden)`` centre representations, one per packed
        ego-graph, numerically matching a sequential per-ego
        :meth:`encode_centers` call (each ego-graph stays independent; no
        cross-ego node merging takes place).
        """
        radius = packed.radius
        current = self._level_input(packed.level_nodes[radius])
        for level in range(radius, 0, -1):
            layer = self.layers[radius - level]
            edges = packed.levels[level - 1]
            target_feats = self._level_input(packed.level_nodes[level - 1])
            current = layer(
                h_src=current,
                h_dst=target_feats,
                src_index=edges.src_index,
                dst_index=edges.dst_index,
                delta_t=edges.delta_t,
                edge_mask=edges.edge_mask,
            )
        # Level 0 holds exactly the centre of each ego-graph.
        return current.reshape(packed.batch_size, self.config.hidden_dim)
