"""Versioned per-``(node, t)`` inference embedding cache.

Encoder embeddings at inference time are pure functions of
``(model weights, observed graph, config)``: the decoder consumes the
posterior mean (``sample=False``, no RNG) and — since the inference
ego-graphs draw their truncation sampling from *named per-centre streams*
(``(seed, "tgae", "infer-ego", u, t)``, see
:meth:`repro.core.sampler.EgoGraphSampler.inference_batch`) — the encoder
input is too.  This module caches those embeddings across ``generate`` /
``score_topk`` / ``dense_score_rows`` calls so repeat inference against the
same fitted model skips the encoder entirely and becomes decode-only.

Three design rules make every cache hit *bitwise* equal to a cold encode:

* **Canonical encode tiles.**  The key universe ``key = u * T + t`` over
  ``[0, n*T)`` is partitioned into fixed consecutive-key tiles of
  :data:`EMBED_TILE` rows.  Any encoder invocation on the inference path
  always covers one whole tile (clipped at ``n*T``), regardless of which
  rows were requested — so the batch composition seen by the packed
  encoder (and by BLAS, whose kernels are *not* row-count invariant) is a
  pure function of the graph size and the tile index, never of the
  request.  Cache-off engines run the exact same tiles ephemerally.
* **Version tokens.**  The cache stores a weights fingerprint
  (:func:`weights_token`, the same digest as the shm layer's
  ``_state_token``) and a graph/config fingerprint (:func:`graph_token`).
  :meth:`EmbeddingCache.ensure` loudly flushes on any mismatch and counts
  the reason (``weight_flushes`` / ``graph_flushes``) — a hit can never be
  served across a version boundary.
* **Incremental invalidation.**  After an observed-edge append
  (:meth:`repro.core.generator.TGAEGenerator.update` with ``epochs=0``),
  :func:`dirty_temporal_nodes` walks the incidence CSR backwards from the
  new edges' windowed query points for ``radius - 1`` predecessor steps
  and only those rows are dropped (plus the rows sharing their tiles at
  re-encode time); the clean remainder keeps serving hits under the new
  graph token.

The cache doubles as a shared-memory segment: :meth:`EmbeddingCache.share_arrays`
exposes the row/valid/token arrays for a ``SharedArrayStore`` and
:meth:`EmbeddingCache.attached` wraps a worker's read-only views, with the
token *inside the segment* so a worker can cheaply detect a stale segment
and fall back to ephemeral tile encoding.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Dict, Optional

import numpy as np

from ..graph.temporal_graph import TemporalGraph

#: Rows per canonical encode tile.  This is a determinism contract, not a
#: tuning knob: changing it changes the batch composition of every
#: inference encode and therefore (through BLAS kernel selection) the
#: low-order bits of cached embeddings, which would break the pinned
#: fingerprint corpus.  It is deliberately not configurable.
EMBED_TILE: int = 32

#: Two concatenated sha256 hexdigests: ``weights_token + graph_token``.
_TOKEN_BYTES = 128

_STAT_KEYS = (
    "hit_rows",
    "encoded_rows",
    "encode_calls",
    "flushes",
    "weight_flushes",
    "graph_flushes",
    "invalidated_rows",
    "stale_misses",
)


def weights_token(model: Any) -> str:
    """Fingerprint of the model's weight values (sorted-name sha256).

    Byte-for-byte the same digest the shm dispatch layer uses as its
    ``_state_token`` — the cache and the worker-pool republish logic agree
    on what "the weights changed" means.
    """
    digest = hashlib.sha256()
    for name, param in sorted(model.named_parameters()):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(param.data).tobytes())
    return digest.hexdigest()


def graph_token(
    graph: TemporalGraph,
    config: Any,
    external_features: Optional[np.ndarray] = None,
) -> str:
    """Fingerprint of everything besides the weights that embeddings see.

    Covers the edge arrays, the ``(n, T)`` universe, the full config repr
    (radius/threshold/window/seed shape the inference ego-graphs and their
    named truncation streams) and any external node features.
    """
    digest = hashlib.sha256()
    digest.update(repr(config).encode())
    digest.update(f"{graph.num_nodes}:{graph.num_timestamps}".encode())
    for arr in (graph.src, graph.dst, graph.t):
        digest.update(np.ascontiguousarray(arr).tobytes())
    if external_features is not None:
        digest.update(np.ascontiguousarray(external_features).tobytes())
    return digest.hexdigest()


def _token_array(weights: str, graph: str) -> np.ndarray:
    """Pack the two hexdigests into the 128-byte segment token array."""
    packed = (weights + graph).encode("ascii")
    if len(packed) != _TOKEN_BYTES:
        raise ValueError(f"expected two sha256 hexdigests, got {len(packed)} bytes")
    return np.frombuffer(packed, dtype=np.uint8).copy()


class EmbeddingCache:
    """Per-``(node, t)`` encoder embeddings, versioned by weights/graph tokens.

    Parameters
    ----------
    num_rows:
        Size of the temporal-node universe, ``num_nodes * num_timestamps``;
        row ``u * T + t`` holds the embedding of temporal node ``(u, t)``.
    hidden_dim:
        Encoder output width.
    dtype:
        The session dtype policy (``config.np_dtype``).

    A writable cache owns its arrays and is mutated by exactly one parent
    engine (`store`/`invalidate_rows`/`flush` serialise on an internal
    lock; concurrent thread-rung *reads* are safe because the owning
    engine prefills before fan-out).  :meth:`attached` builds the
    read-only worker-side flavour over shared-memory views: it never
    mutates the segment, and it validates the segment's embedded token
    pair before serving a single row, so a stale segment degrades to
    ephemeral re-encoding instead of wrong bits.
    """

    def __init__(self, num_rows: int, hidden_dim: int, dtype: Any) -> None:
        self.rows = np.zeros((int(num_rows), int(hidden_dim)), dtype=np.dtype(dtype))
        self.valid = np.zeros(int(num_rows), dtype=bool)
        self._token = np.zeros(_TOKEN_BYTES, dtype=np.uint8)
        self.writable = True
        #: Monotone mutation counter: the shm layer republishes / in-place
        #: updates the shared segment only when this moved since the last
        #: sync, so an all-hit dispatch costs zero segment copies.
        self.mutations = 0
        self.stats: Dict[str, int] = {key: 0 for key in _STAT_KEYS}
        self._lock = threading.Lock()

    @classmethod
    def attached(cls, views: Dict[str, np.ndarray]) -> "EmbeddingCache":
        """Wrap a worker's read-only shared-memory views of a parent cache."""
        cache = cls.__new__(cls)
        cache.rows = views["rows"]
        cache.valid = views["valid"]
        cache._token = views["token"]
        cache.writable = False
        cache.mutations = 0
        cache.stats = {key: 0 for key in _STAT_KEYS}
        cache._lock = threading.Lock()
        return cache

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    @property
    def tokens_set(self) -> bool:
        """Whether the cache has ever been bound to a (weights, graph) pair."""
        return bool(self._token.any())

    def _matches(self, weights: str, graph: str) -> bool:
        return bool(np.array_equal(self._token, _token_array(weights, graph)))

    def ensure(self, weights: str, graph: str) -> bool:
        """Bind the cache to a token pair; ``True`` when rows may be served.

        A writable cache that holds a *different* pair is loudly flushed
        (every row invalidated, ``flushes`` plus the per-reason counter
        bumped) and rebound — it always returns ``True``.  A read-only
        attached cache cannot rebind: a mismatch (stale shared segment)
        returns ``False`` and the caller re-encodes ephemerally.
        """
        with self._lock:
            if self._matches(weights, graph):
                return True
            if not self.writable:
                self.stats["stale_misses"] += 1
                return False
            if self.tokens_set:
                self.stats["flushes"] += 1
                current = self._token.tobytes().decode("ascii")
                if current[:64] != weights:
                    self.stats["weight_flushes"] += 1
                if current[64:] != graph:
                    self.stats["graph_flushes"] += 1
                self.valid[:] = False
            self._token[:] = _token_array(weights, graph)
            self.mutations += 1
            return True

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def fill(self, keys: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Copy cached rows for ``keys`` into ``out``; returns the hit mask."""
        hit = self.valid[keys]
        if hit.any():
            out[hit] = self.rows[keys[hit]]
            self.stats["hit_rows"] += int(hit.sum())
        return hit

    def store(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert freshly encoded rows (no-op on a read-only attachment)."""
        if not self.writable:
            return
        with self._lock:
            self.rows[keys] = values
            self.valid[keys] = True
            self.stats["encoded_rows"] += int(keys.size)
            self.stats["encode_calls"] += 1
            self.mutations += 1

    def invalidate_rows(
        self, keys: np.ndarray, graph: Optional[str] = None
    ) -> int:
        """Drop specific rows, optionally rebinding the graph-token half.

        The incremental-ingest path: after an observed-edge append the
        dirty ego-neighbourhood rows are dropped and ``graph`` (the token
        of the *post-append* graph) replaces the stored graph fingerprint,
        so the surviving rows keep serving hits without a flush.  Returns
        the number of previously valid rows dropped.
        """
        if not self.writable:
            raise ValueError("cannot invalidate rows of a read-only attached cache")
        keys = np.asarray(keys, dtype=np.int64)
        with self._lock:
            dropped = int(self.valid[keys].sum())
            self.valid[keys] = False
            self.stats["invalidated_rows"] += dropped
            if graph is not None and self.tokens_set:
                self._token[64:] = np.frombuffer(
                    graph.encode("ascii"), dtype=np.uint8
                )
            self.mutations += 1
        return dropped

    def flush(self) -> None:
        """Drop every row and unbind the token pair (explicit full reset)."""
        if not self.writable:
            raise ValueError("cannot flush a read-only attached cache")
        with self._lock:
            self.valid[:] = False
            self._token[:] = 0
            self.stats["flushes"] += 1
            self.mutations += 1

    # ------------------------------------------------------------------
    # Shared-memory publication
    # ------------------------------------------------------------------
    def share_arrays(self) -> Dict[str, np.ndarray]:
        """The arrays a ``SharedArrayStore`` segment publishes to workers.

        The token rides *inside* the segment so attached workers validate
        staleness against the segment contents themselves — a worker whose
        locally computed tokens disagree simply gets ``ensure() -> False``
        and re-encodes, never a silently wrong row.
        """
        return {"rows": self.rows, "valid": self.valid, "token": self._token}


def dirty_temporal_nodes(
    graph: TemporalGraph,
    new_src: np.ndarray,
    new_dst: np.ndarray,
    new_t: np.ndarray,
    radius: int,
    time_window: int,
) -> np.ndarray:
    """Universe keys whose inference embedding may change after an append.

    Walks backwards from the appended edges on the *post-append* graph's
    incidence CSR.  A centre ``(u, t)``'s ego-graph issues windowed
    neighbour queries at layer depths ``0 .. radius-1``; its embedding can
    only move if some reachable query point ``(x, s)`` sees a new edge —
    i.e. ``x`` is an endpoint of an appended edge at time ``te`` with
    ``|s - te| <= time_window`` (presence alone matters: it perturbs the
    truncation-sampling input even when the new edge is not drawn).  Level
    0 is exactly those windowed query points; each further level adds the
    predecessors ``(p, s_p)`` whose query could have produced a frontier
    node ``(x, s)`` as a child — ``p`` a partner of ``x`` at event time
    exactly ``s`` with ``|s - s_p| <= time_window``.  The union over all
    ``radius`` levels is a sound superset of the changed rows (append-only
    edits never un-reach a query point).  Returns sorted ``u * T + t``
    keys.
    """
    T = int(graph.num_timestamps)
    nodes = np.concatenate(
        [np.asarray(new_src, dtype=np.int64), np.asarray(new_dst, dtype=np.int64)]
    )
    times = np.concatenate(
        [np.asarray(new_t, dtype=np.int64), np.asarray(new_t, dtype=np.int64)]
    )
    frontier = set()
    for x, te in zip(nodes.tolist(), times.tolist()):
        for s in range(max(te - time_window, 0), min(te + time_window, T - 1) + 1):
            frontier.add((x, s))
    dirty = set(frontier)
    for _ in range(max(int(radius) - 1, 0)):
        next_frontier = set()
        for x, s in frontier:
            partners, event_times = graph.incident_events(int(x))
            preds = np.unique(partners[event_times == s])
            for p in preds.tolist():
                lo, hi = max(s - time_window, 0), min(s + time_window, T - 1)
                for s_p in range(lo, hi + 1):
                    key = (p, s_p)
                    if key not in dirty:
                        dirty.add(key)
                        next_frontier.add(key)
        if not next_frontier:
            break
        frontier = next_frontier
    keys = np.fromiter(
        (x * T + s for x, s in dirty), dtype=np.int64, count=len(dirty)
    )
    keys.sort()
    return keys
