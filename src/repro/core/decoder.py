"""TGAE variational ego-graph decoder (Sec. IV-D, Alg. 2).

Two MLP heads infer the parameters ``mu`` and ``sigma`` of the latent prior
from the input features of the sampled centre nodes; a reparameterised
sample ``Z = mu + sigma * noise`` is added to the encoder's hidden variable
``h_{u^t}``, and edge probabilities over the whole node universe are read
out through ``softmax(h W_dec + b_dec)`` -- exactly the ``EdgeProbability``
routine of Alg. 2 in batched form.

The non-probabilistic variant (TGAE-p, Eq. 8) bypasses the sigma head and
the sampling step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..nn import MLP, Module, Parameter
from ..nn import init as nn_init
from ..rng import stream
from .config import TGAEConfig


@dataclass
class DecoderOutput:
    """Decoded quantities for a batch of centre nodes.

    Attributes
    ----------
    logits:
        ``(batch, num_nodes)`` unnormalised edge scores; ``softmax`` over the
        last axis yields the categorical edge distribution of Alg. 2.
    mu, log_sigma:
        Variational posterior parameters (``log_sigma`` is ``None`` for the
        non-probabilistic variant).
    latent:
        The (sampled or deterministic) latent actually used for decoding.
    """

    logits: Tensor
    mu: Tensor
    log_sigma: Optional[Tensor]
    latent: Tensor


class EgoGraphDecoder(Module):
    """Variational decoder producing per-node edge distributions."""

    def __init__(
        self,
        num_nodes: int,
        config: TGAEConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else stream(config.seed, "tgae", "decoder-init")
        self.config = config
        self.num_nodes = num_nodes
        hidden = config.hidden_dim
        latent = config.latent_dim
        self.mlp_mu = MLP([config.embed_dim, hidden, latent], rng=rng)
        self.mlp_sigma = MLP([config.embed_dim, hidden, latent], rng=rng) if config.probabilistic else None
        # Project latent into the hidden space so it can be added to h_{u^t}
        # ("h <- h_ut + Z(v,:)" of Alg. 2 with a width adapter).
        self.latent_proj = Parameter(nn_init.xavier_uniform((latent, hidden), rng))
        self.w_dec = Parameter(nn_init.xavier_uniform((hidden, num_nodes), rng))
        self.b_dec = Parameter(nn_init.zeros((num_nodes,)))
        # Named stream, not a seed offset: offsets collide across components
        # the moment seeds are reused (see repro.rng).
        self._noise_rng = stream(config.seed, "tgae", "decoder-noise")

    def _latent(
        self,
        center_features: Tensor,
        sample: bool,
        noise_rng: Optional[np.random.Generator],
    ):
        """Posterior parameters and the latent actually used for decoding.

        ``noise_rng`` supplies the reparameterisation noise; ``None`` falls
        back to the decoder's own named stream.  The sharded trainer passes
        each shard's spawned seed-sequence child here so the draws depend on
        the shard, never on which worker (or how many) executed it.
        """
        mu = self.mlp_mu(center_features)
        log_sigma: Optional[Tensor] = None
        if self.config.probabilistic and self.mlp_sigma is not None:
            log_sigma = self.mlp_sigma(center_features).clip(-6.0, 4.0)
            if sample:
                rng = noise_rng if noise_rng is not None else self._noise_rng
                # Draw at float64 (generator-native) so the stream is
                # policy-independent, then cast once to the session dtype.
                noise = rng.standard_normal(mu.shape).astype(
                    mu.data.dtype, copy=False
                )
                latent = mu + log_sigma.exp() * Tensor(noise)
            else:
                latent = mu
        else:
            latent = mu
        return mu, log_sigma, latent

    def forward(
        self,
        center_hidden: Tensor,
        center_features: Tensor,
        sample: bool = True,
        noise_rng: Optional[np.random.Generator] = None,
    ) -> DecoderOutput:
        """Decode a batch of centres.

        Parameters
        ----------
        center_hidden:
            ``(batch, hidden)`` encoder outputs ``h_{u^t}``.
        center_features:
            ``(batch, embed)`` input features ``X_ego`` of the centres, from
            which the latent posterior parameters are inferred (Alg. 2 lines
            2-3).
        sample:
            Draw the reparameterised latent; when ``False`` (inference time)
            the mean ``mu`` is used.
        noise_rng:
            Explicit generator for the reparameterisation noise (``None``:
            the decoder's own named stream).
        """
        mu, log_sigma, latent = self._latent(center_features, sample, noise_rng)
        h = center_hidden + latent @ self.latent_proj
        logits = h @ self.w_dec + self.b_dec
        return DecoderOutput(logits=logits, mu=mu, log_sigma=log_sigma, latent=latent)

    def forward_candidates(
        self,
        center_hidden: Tensor,
        center_features: Tensor,
        candidates: np.ndarray,
        sample: bool = True,
        noise_rng: Optional[np.random.Generator] = None,
    ) -> DecoderOutput:
        """Sampled-softmax decoding over per-centre candidate sets.

        ``candidates`` is a ``(batch, C)`` integer array of node ids; only
        those ``C`` columns of ``W_dec`` are scored, so the cost per row is
        O(C) instead of O(n).  The returned ``logits`` have shape
        ``(batch, C)`` and index *into the candidate set*, not the node
        universe.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        batch, width = candidates.shape
        mu, log_sigma, latent = self._latent(center_features, sample, noise_rng)
        h = center_hidden + latent @ self.latent_proj  # (batch, hidden)
        flat = candidates.reshape(-1)
        # Columns of W_dec gathered per candidate: (batch*C, hidden).
        w_cols = self.w_dec.T.take_rows(flat).reshape(batch, width, -1)
        bias = self.b_dec.take_rows(flat).reshape(batch, width)
        logits = (w_cols * h.reshape(batch, 1, -1)).sum(axis=-1) + bias
        return DecoderOutput(logits=logits, mu=mu, log_sigma=log_sigma, latent=latent)
