"""Training-batch construction: Alg. 1 sampling + Fig. 4 merging + targets.

One :class:`TrainingBatch` bundles everything a TGAE optimisation step needs:
the merged bipartite computation graphs for ``n_s`` degree-weighted centre
nodes and the observed adjacency rows those centres must reconstruct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..graph.bipartite import (
    BipartiteBatch,
    PackedEgoBatch,
    build_bipartite_batch,
    pack_ego_batch,
)
from ..graph.ego_graph import (
    EgoGraph,
    ego_graph_batch,
    sample_ego_graph,
    sample_initial_nodes,
)
from ..graph.temporal_graph import TemporalGraph
from ..rng import stream
from .config import TGAEConfig
from .loss import adjacency_target_rows


@dataclass
class TrainingBatch:
    """One mini-batch: sampled ego-graphs + reconstruction targets.

    The sampled ego-graphs are stored raw; the two computation-graph views
    are built lazily and cached on first access:

    * :attr:`bipartite` -- the merged/deduplicated k-bipartite layout of
      Fig. 4 (cross-ego node sharing).
    * :attr:`packed` -- the padded ego-parallel layout consumed by the
      vectorised batched hot path.

    ``candidates`` is populated only in sampled-softmax mode
    (``config.candidate_limit > 0``): a ``(batch, C)`` array of node ids the
    decoder scores instead of the full universe.
    """

    centers: np.ndarray
    target_rows: List[np.ndarray]
    egos: List[EgoGraph] = field(default_factory=list)
    candidates: Optional[np.ndarray] = None
    _bipartite: Optional[BipartiteBatch] = field(default=None, repr=False)
    _packed: Optional[PackedEgoBatch] = field(default=None, repr=False)

    @property
    def bipartite(self) -> BipartiteBatch:
        """Merged k-bipartite view (built on first access)."""
        if self._bipartite is None:
            self._bipartite = build_bipartite_batch(self.egos)
        return self._bipartite

    @property
    def packed(self) -> PackedEgoBatch:
        """Padded ego-parallel view (built on first access)."""
        if self._packed is None:
            self._packed = pack_ego_batch(self.egos)
        return self._packed

    def computation_batch(
        self, packed: bool = True
    ) -> Union[BipartiteBatch, PackedEgoBatch]:
        """The computation-graph view selected by ``packed``."""
        return self.packed if packed else self.bipartite


class EgoGraphSampler:
    """Stateful sampler producing :class:`TrainingBatch` objects.

    Parameters
    ----------
    graph:
        The observed temporal graph.
    config:
        TGAE hyper-parameters (radius, threshold, window, ``n_s`` and the
        TGAE-n uniform-sampling switch).
    rng:
        Random generator driving initial-node and *training* neighbour
        sampling.  May be ``None`` for inference-only samplers:
        :meth:`inference_batch` draws from named per-centre streams and
        never consumes it.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        config: TGAEConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.graph = graph
        self.config = config
        self.rng = rng

    def sample_centers(self, count: int) -> np.ndarray:
        """Draw centre temporal nodes per Eq. 2 (or uniformly for TGAE-n)."""
        return sample_initial_nodes(
            self.graph,
            count,
            self.rng,
            uniform=self.config.uniform_initial_sampling,
        )

    def batch_for_centers(
        self, centers: np.ndarray, target_rows: Optional[List[np.ndarray]] = None
    ) -> TrainingBatch:
        """Build the training batch (ego-graphs + targets) for explicit centres.

        The computation-graph views (merged bipartite / padded packed) are
        materialised lazily by :class:`TrainingBatch`, so callers only pay
        for the layout they actually consume.  ``target_rows`` may carry
        precomputed adjacency rows for the centres (the sharded trainer
        computes them once for the whole epoch batch); ``None`` derives them
        here.
        """
        egos = ego_graph_batch(
            self.graph,
            centers,
            radius=self.config.radius,
            threshold=self.config.neighbor_threshold,
            time_window=self.config.time_window,
            rng=self.rng,
        )
        targets = (
            list(target_rows)
            if target_rows is not None
            else adjacency_target_rows(
                self.graph.src, self.graph.dst, self.graph.t, centers
            )
        )
        candidates = None
        if self.config.candidate_limit > 0:
            candidates = self.build_candidates(centers, targets)
        return TrainingBatch(
            centers=centers, target_rows=targets, egos=egos,
            candidates=candidates,
        )

    def build_candidates(
        self, centers: np.ndarray, target_rows: List[np.ndarray]
    ) -> np.ndarray:
        """Per-centre candidate sets for sampled-softmax decoding.

        Each row holds the centre's observed (positive) targets followed by
        uniform negative samples, padded/truncated to ``candidate_limit``.
        Positives always survive truncation so the reconstruction signal is
        never dropped.
        """
        limit = self.config.candidate_limit
        n = self.graph.num_nodes
        out = np.empty((centers.shape[0], limit), dtype=np.int64)
        for row, targets in enumerate(target_rows):
            positives = np.unique(np.asarray(targets, dtype=np.int64))[:limit]
            fill = limit - positives.size
            negatives = self.rng.integers(0, n, size=fill) if fill > 0 else np.array(
                [], dtype=np.int64
            )
            out[row, : positives.size] = positives
            out[row, positives.size :] = negatives
        return out

    def inference_batch(self, centers: np.ndarray) -> TrainingBatch:
        """Ego-graph batch for explicit centres, without training targets.

        Generation and score inspection only need the computation graphs, so
        this skips the adjacency-row and training-candidate assembly that
        :meth:`batch_for_centers` performs (the generation engine builds its
        own inference candidate sets from the partner CSR).

        Unlike training sampling, each centre's truncation draws come from
        its own *named* stream ``(seed, "tgae", "infer-ego", u, t)`` rather
        than from :attr:`rng` (which is not consumed): the inference
        ego-graph of a temporal node — and hence its encoder embedding —
        is a pure function of ``(weights, graph, config)``, independent of
        which call, chunk or batch requested it.  That purity is what the
        inference embedding cache (:mod:`repro.core.embed_cache`) and its
        canonical encode tiles rest on.
        """
        centers = np.asarray(centers, dtype=np.int64)
        config = self.config
        egos = [
            sample_ego_graph(
                self.graph,
                (int(node), int(timestamp)),
                radius=config.radius,
                threshold=config.neighbor_threshold,
                time_window=config.time_window,
                rng=stream(config.seed, "tgae", "infer-ego", int(node), int(timestamp)),
            )
            for node, timestamp in centers
        ]
        return TrainingBatch(centers=centers, target_rows=[], egos=egos)

    def next_batch(self) -> TrainingBatch:
        """Sample a fresh training batch of ``n_s`` centres."""
        centers = self.sample_centers(self.config.num_initial_nodes)
        return self.batch_for_centers(centers)
