"""Sharded parallel execution of generation and training chunk tasks.

The streaming :class:`~repro.core.engine.GenerationEngine` and the
data-parallel trainer (:mod:`repro.core.trainer`) both split their work into
independent units -- one encoder forward (+ backward, for training) per chunk
of centre temporal nodes -- where every unit owns a spawned
:class:`~numpy.random.SeedSequence` child (see :mod:`repro.rng`), touches
only its own centre rows, and returns plain arrays.  This module fans those
units out across a pool:

* ``backend="process"`` (default) runs chunks in worker *processes* -- the
  right choice for the CPU-bound NumPy forward passes, which the GIL would
  serialise under threads.  Each worker rebuilds the model/graph once from a
  :class:`WorkerPayload` of plain arrays shipped through the pool
  initializer; per-task messages carry only index arrays and a seed-sequence
  child (training shards add the current weights, which change every step).
* ``backend="thread"`` shares the live engine across a thread pool -- the
  fallback for environments where process pools are unavailable (no POSIX
  semaphores, restricted sandboxes); the process backend degrades to it
  automatically.  *Training* shards run backward passes, which accumulate
  into parameter gradients, so the thread backend gives each worker thread
  its own model replica instead of the shared live model.
* ``workers=1`` bypasses pools entirely and runs the chunks as a plain
  in-process loop -- the exact sequential path.

Because chunk streams are spawned from one root before any dispatch and
results are merged in chunk order, the three execution modes are
**bit-identical**: worker count and backend change wall-clock time, never
output.

:class:`WorkerPool` makes the executor *persistent*: one pool outlives many
``generate()`` / ``score_topk()`` calls and every epoch of a training run,
so many-sample workloads (significance tests, top-k sweeps, multi-epoch
training) pay process startup and graph shipping once instead of per call.

Shared-memory dispatch
----------------------

On the process backend a persistent pool additionally publishes everything
large -- the model parameters and the graph's edge/CSR arrays -- into
:mod:`multiprocessing.shared_memory` segments (:class:`SharedArrayStore`:
one writer, N readers).  Workers attach the segments once, by name, through
a ~5 KB :class:`ShmWorkerPayload` of handles; after that, per-epoch and
per-generate dispatch is **O(1) in model size**: task messages carry only
index arrays and seed-sequence children, and a refreshed model (a new epoch,
a refit) is shipped by overwriting the parameter segment *in place* and
bumping a version counter -- no re-pickle, no executor rebuild.  Segments
are fingerprint-keyed: the graph/config/shape *structure* token decides when
workers must be rebuilt, while weight-only changes ride the in-place update
path.  The pool owns the segments and unlinks them on :meth:`WorkerPool.close`
(and on degrade, worker crash, or interpreter exit); teardown is
idempotent and safe to run from ``atexit``.  ``shm_dispatch=False`` (or
``TGAEConfig(shm_dispatch=False)``) restores the plain pickled-payload
dispatch.

Fault tolerance
---------------

Every shard is a pure function of (task, seed-sequence child, weights), so
recovery never risks the bit-identity contract.  Within a rung a persistent
pool retries transient shard failures (bounded, exponential backoff),
re-dispatches stragglers that exceed ``shard_timeout``, and rebuilds a
process executor whose worker crashed (the parent-owned segments survive).
When a rung is exhausted the pool steps down the degradation ladder
``shm -> pickle -> thread -> sequential`` -- permanently and loudly, one
:class:`~repro.errors.DegradeWarning` per step -- with counters exposed on
:attr:`WorkerPool.health`.  All of it is provoked deterministically in tests
through :mod:`repro.faults`.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import multiprocessing
import os
import pickle
import queue
import threading
import time
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..errors import ConfigError, DegradeWarning, PoolError
from ..graph.temporal_graph import TemporalGraph
from .config import TGAEConfig

__all__ = [
    "BACKENDS",
    "LADDER",
    "SharedArrayStore",
    "ShmArraySpec",
    "ShmHandle",
    "ShmWorkerPayload",
    "WorkerPayload",
    "WorkerPool",
    "attach_shared_arrays",
    "payload_from_engine",
    "run_sharded",
    "shared_memory_supported",
    "shared_pool",
    "close_shared_pools",
]

#: Supported executor backends, in order of preference.
BACKENDS = ("process", "thread")

#: Pool-infrastructure failures that trigger the loud degradation ladder.
_POOL_FAILURES = (OSError, BrokenProcessPool, pickle.PicklingError)

#: Shard-level errors worth a bounded in-rung retry before degrading.
#: Deliberately narrower than ``_POOL_FAILURES``: a ``BrokenProcessPool``
#: needs an executor rebuild, not a plain resubmit.
_RETRYABLE_TASK_ERRORS = (OSError, pickle.PicklingError)

#: Byte alignment of arrays inside a shared segment (cache-line friendly).
_SHM_ALIGN = 64

#: The degradation ladder, fastest rung first.  A persistent pool starts on
#: the highest rung its configuration allows and only ever moves down.
LADDER = ("shm", "pickle", "thread", "sequential")


class _RungExhausted(Exception):
    """Internal: one shard burned through ``max_shard_retries`` on a rung.

    Carries the final underlying error so :meth:`WorkerPool.run` can report
    it in the :class:`~repro.errors.DegradeWarning` for the next rung down.
    Never escapes :class:`WorkerPool`.
    """

    def __init__(self, shard: Optional[int], cause: BaseException) -> None:
        super().__init__(str(cause))
        self.shard = shard
        self.cause = cause


#: What the ladder in :meth:`WorkerPool.run` catches before stepping down.
_RUNG_FAILURES = (_RungExhausted,) + _POOL_FAILURES


@dataclass(frozen=True)
class WorkerPayload:
    """Everything a worker process needs, reduced to plain picklable data.

    Shipped once per worker through the pool initializer (cheap under
    ``fork``, a single pickle under ``spawn``); the worker rebuilds the
    model from its ``state_dict`` and the graph from its edge arrays, the
    same way :func:`repro.core.persistence.load_generator` does.  This is
    the non-shared-memory dispatch format; see :class:`ShmWorkerPayload`
    for the O(1)-in-model-size variant.
    """

    state: Dict[str, np.ndarray]
    config: TGAEConfig
    num_nodes: int
    num_timestamps: int
    src: np.ndarray
    dst: np.ndarray
    t: np.ndarray
    external_features: Optional[np.ndarray]


def payload_from_engine(engine: Any) -> WorkerPayload:
    """Flatten a live :class:`~repro.core.engine.GenerationEngine` into arrays."""
    graph = engine.graph
    return WorkerPayload(
        state=engine.model.state_dict(),
        config=engine.config,
        num_nodes=graph.num_nodes,
        num_timestamps=graph.num_timestamps,
        src=graph.src,
        dst=graph.dst,
        t=graph.t,
        external_features=engine.model.encoder._external_features,
    )


# ----------------------------------------------------------------------
# Shared-memory array store (one writer, N readers)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShmArraySpec:
    """Location of one named array inside a shared segment."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ShmHandle:
    """A picklable reference to a shared segment and the arrays it holds.

    A handle is a few hundred bytes regardless of how many megabytes the
    arrays weigh -- this is what makes shm dispatch O(1) in model size.
    Readers turn it back into arrays with :func:`attach_shared_arrays`.
    """

    segment: str
    nbytes: int
    specs: Tuple[ShmArraySpec, ...]


class SharedArrayStore:
    """A writer-owned ``multiprocessing.shared_memory`` segment of named arrays.

    The creating process is the single writer: it lays the arrays out
    contiguously (64-byte aligned) in one segment at construction and may
    later overwrite them in place with :meth:`update` (same keys, shapes
    and dtypes -- the in-place path is how a training run re-publishes its
    weights every epoch without re-shipping anything).  Reader processes
    attach by name through the store's :attr:`handle` and get zero-copy
    read-only NumPy views.

    Only the creating process ever unlinks the segment (:meth:`close` is a
    no-op on the unlink step in forked children), closing is idempotent,
    and every teardown error is swallowed so interpreter-shutdown ordering
    can never raise ``BufferError`` out of an ``atexit`` hook.
    """

    __slots__ = ("handle", "_shm", "_spec_by_key", "_owner_pid")

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        from multiprocessing import shared_memory

        # Assigned before anything that can fail: close() / __del__ on a
        # half-constructed store must be a clean no-op, not an AttributeError.
        self._shm: Optional[Any] = None
        self._owner_pid = os.getpid()
        faults.check("shm-create")
        specs: List[ShmArraySpec] = []
        contiguous: Dict[str, np.ndarray] = {}
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            contiguous[key] = arr
            offset = ((offset + _SHM_ALIGN - 1) // _SHM_ALIGN) * _SHM_ALIGN
            specs.append(ShmArraySpec(key, arr.dtype.str, tuple(arr.shape), offset))
            offset += arr.nbytes
        size = max(offset, 1)
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self.handle = ShmHandle(self._shm.name, size, tuple(specs))
        self._spec_by_key = {spec.key: spec for spec in specs}
        for key, arr in contiguous.items():
            self._write(self._spec_by_key[key], arr)

    def _write(self, spec: ShmArraySpec, arr: np.ndarray) -> None:
        """Copy ``arr`` into its slot; the view is transient so close() stays safe."""
        if self._shm is None:
            raise RuntimeError("shared array store is closed")
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=self._shm.buf, offset=spec.offset
        )
        view[...] = arr
        del view

    def update(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Overwrite stored arrays in place (single-writer refresh path).

        Keys must already exist with matching shape and dtype -- a shape
        change is a *structure* change and requires a fresh store (and
        fresh workers).
        """
        for key, arr in arrays.items():
            spec = self._spec_by_key.get(key)
            if spec is None:
                raise KeyError(f"array {key!r} is not part of this store")
            arr = np.ascontiguousarray(arr)
            if tuple(arr.shape) != spec.shape or arr.dtype.str != spec.dtype:
                raise ValueError(
                    f"array {key!r} changed layout: {arr.dtype.str}{arr.shape} != "
                    f"stored {spec.dtype}{spec.shape}"
                )
            self._write(spec, arr)

    @property
    def closed(self) -> bool:
        """Whether the segment has been released by this process."""
        return self._shm is None

    def close(self) -> None:
        """Release (and, in the owning process, unlink) the segment.

        Idempotent and exception-free by design: it runs from ``atexit``
        hooks, ``finally`` blocks and worker-crash cleanup, where a raising
        teardown would mask the original error or spam interpreter
        shutdown.  A forked child closes its mapping but never unlinks the
        owner's segment.
        """
        shm = getattr(self, "_shm", None)
        if shm is None:
            return
        self._shm = None
        try:
            shm.close()
        except Exception:
            pass
        if os.getpid() != getattr(self, "_owner_pid", -1):
            return
        try:
            shm.unlink()
        except Exception:
            pass

    def __del__(self) -> None:
        # ``__del__`` can run on a store whose __init__ raised, and runs
        # again after an explicit close(); both must stay silent no-ops.
        try:
            self.close()
        except Exception:
            pass


def attach_shared_arrays(handle: ShmHandle) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Attach a reader to a published segment; returns ``(shm, views)``.

    The views are zero-copy and read-only (workers must never write shared
    state); the returned ``SharedMemory`` object must be kept alive as long
    as the views are used.  Readers close but never unlink.
    """
    from multiprocessing import shared_memory

    faults.check("shm-attach")
    shm = shared_memory.SharedMemory(name=handle.segment)
    views: Dict[str, np.ndarray] = {}
    for spec in handle.specs:
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
        )
        view.flags.writeable = False
        views[spec.key] = view
    return shm, views


_SHM_SUPPORTED: Optional[bool] = None


def shared_memory_supported() -> bool:
    """Whether this platform can create POSIX shared-memory segments.

    Probed once per process with a 1-byte segment; a platform that cannot
    (no ``/dev/shm``, sandboxed runtime) silently falls back to the plain
    pickled-payload dispatch.
    """
    global _SHM_SUPPORTED
    if _SHM_SUPPORTED is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _SHM_SUPPORTED = True
        except Exception:
            _SHM_SUPPORTED = False
    return _SHM_SUPPORTED


@dataclass(frozen=True)
class ShmWorkerPayload:
    """The O(1)-in-model-size worker payload: segment handles, not arrays.

    Shipped once per worker through the pool initializer.  The worker
    attaches the ``graph`` and ``params`` segments by name and rebuilds its
    engine from zero-copy views; afterwards each task message carries only
    a parameter *version* -- when it advances, the worker reloads weights
    from the (in-place updated) parameter segment.

    ``embed`` (optional) is the parent's inference embedding cache
    published as a third segment: workers attach it *read-only* and decode
    straight from parent-computed rows instead of re-encoding per chunk.
    The segment embeds its own weights/graph token, so a worker whose
    locally-derived fingerprints disagree treats it as a miss and encodes
    ephemerally -- stale segments degrade, never corrupt.
    """

    config: TGAEConfig
    num_nodes: int
    num_timestamps: int
    feature_dim: int
    graph: ShmHandle
    params: ShmHandle
    version: int
    embed: Optional[ShmHandle] = None


def _shm_graph_arrays(engine: Any) -> Dict[str, np.ndarray]:
    """The graph-side arrays a worker needs: edges, partner CSR, features."""
    graph = engine.graph
    offsets, partners = graph.out_partner_groups()
    arrays = {
        "src": graph.src,
        "dst": graph.dst,
        "t": graph.t,
        "partner_offsets": offsets,
        "partners": partners,
    }
    external = engine.model.encoder._external_features
    if external is not None:
        arrays["external_features"] = external
    return arrays


def _shm_param_arrays(engine: Any) -> Dict[str, np.ndarray]:
    """Current model parameters in deterministic (sorted-name) order."""
    return {name: param.data for name, param in sorted(engine.model.named_parameters())}


def _engine_token(engine: Any, include_state: bool) -> str:
    """Fingerprint of an engine, deciding when shipped workers are stale.

    Generation tasks read the worker's resident weights, so their token
    covers the state arrays; training shards carry the current weights in
    every task message, so their token covers only the graph/config/shape
    structure -- which is what lets one process pool survive a whole
    training run even though the weights change every epoch.  Reads the
    live arrays in place (no ``state_dict`` copy).

    Both flavours hash the graph's edge arrays, so appending observed
    edges (:meth:`TGAEGenerator.update`) changes the token and the next
    pooled dispatch republishes the shared-memory graph segment -- exactly
    once, after which the new token is cached like any other.
    """
    digest = hashlib.sha256()
    graph = engine.graph
    digest.update(repr(engine.config).encode())
    digest.update(f"{graph.num_nodes}:{graph.num_timestamps}".encode())
    for arr in (graph.src, graph.dst, graph.t):
        digest.update(np.ascontiguousarray(arr).tobytes())
    external = engine.model.encoder._external_features
    if external is not None:
        digest.update(np.ascontiguousarray(external).tobytes())
    for name, param in sorted(engine.model.named_parameters()):
        digest.update(name.encode())
        if include_state:
            digest.update(np.ascontiguousarray(param.data).tobytes())
        else:
            digest.update(str(param.data.shape).encode())
    return ("state:" if include_state else "structure:") + digest.hexdigest()


def _state_token(engine: Any) -> str:
    """Fingerprint of the weight values alone (structure hashed separately)."""
    digest = hashlib.sha256()
    for name, param in sorted(engine.model.named_parameters()):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(param.data).tobytes())
    return digest.hexdigest()


def _build_engine(payload: WorkerPayload, graph: Optional[TemporalGraph] = None) -> Any:
    """Rebuild a generation engine (model + graph) from plain arrays.

    ``graph`` short-circuits the graph rebuild for same-process replicas
    (thread-backend training), which can safely share the live read-only
    graph and its caches.
    """
    from .engine import GenerationEngine
    from .model import TGAEModel

    if graph is None:
        graph = TemporalGraph(
            payload.num_nodes,
            payload.src,
            payload.dst,
            payload.t,
            num_timestamps=payload.num_timestamps,
            validate=False,
        )
    feature_dim = (
        payload.external_features.shape[-1]
        if payload.external_features is not None
        else 0
    )
    model = TGAEModel(
        payload.num_nodes, payload.num_timestamps, payload.config,
        feature_dim=feature_dim,
    )
    model.load_state_dict(payload.state)
    if payload.external_features is not None:
        model.encoder.set_external_features(payload.external_features)
    model.eval()
    return GenerationEngine(model, graph, payload.config)


#: Per-process engine rebuilt by :func:`_init_worker`; ``None`` in the parent.
_WORKER_ENGINE: Optional[Any] = None
#: Attached shared segments (kept alive for the views' lifetime) + param views.
_WORKER_SHM: List[Any] = []
_WORKER_PARAM_VIEWS: Optional[Dict[str, np.ndarray]] = None
_WORKER_PARAM_VERSION: Optional[int] = None


def _init_worker(payload: WorkerPayload) -> None:
    """Pool initializer: rebuild the engine once per worker process."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = _build_engine(payload)


def _release_worker_attachments() -> None:
    """Worker ``atexit``: drop engine + views, then close shm mappings quietly."""
    global _WORKER_ENGINE, _WORKER_PARAM_VIEWS
    _WORKER_ENGINE = None
    _WORKER_PARAM_VIEWS = None
    import gc

    gc.collect()
    while _WORKER_SHM:
        shm = _WORKER_SHM.pop()
        try:
            shm.close()
        except Exception:
            pass


def _init_worker_shm(payload: ShmWorkerPayload) -> None:
    """Pool initializer for shm dispatch: attach segments, rebuild the engine.

    The graph's edge and partner-CSR arrays stay zero-copy views into the
    shared segment for the worker's whole life; the model weights are
    *copied* out of the parameter segment (``load_state_dict`` copies), so
    the parent can overwrite that segment between runs without racing
    in-flight forwards.
    """
    global _WORKER_ENGINE, _WORKER_PARAM_VIEWS, _WORKER_PARAM_VERSION
    from .embed_cache import EmbeddingCache
    from .engine import GenerationEngine
    from .model import TGAEModel

    graph_shm, graph_views = attach_shared_arrays(payload.graph)
    param_shm, param_views = attach_shared_arrays(payload.params)
    attachments = [graph_shm, param_shm]
    cache = None
    if payload.embed is not None:
        embed_shm, embed_views = attach_shared_arrays(payload.embed)
        attachments.append(embed_shm)
        cache = EmbeddingCache.attached(embed_views)
    if not _WORKER_SHM:
        atexit.register(_release_worker_attachments)
    _WORKER_SHM[:] = attachments
    graph = TemporalGraph(
        payload.num_nodes,
        graph_views["src"],
        graph_views["dst"],
        graph_views["t"],
        num_timestamps=payload.num_timestamps,
        validate=False,
    )
    # Hand the prebuilt partner CSR straight to the graph cache: workers
    # never redo the O(E log E) group-by the parent already did.
    graph._partner_groups = (
        graph_views["partner_offsets"], graph_views["partners"]
    )
    model = TGAEModel(
        payload.num_nodes, payload.num_timestamps, payload.config,
        feature_dim=payload.feature_dim,
    )
    model.load_state_dict(dict(param_views))
    if "external_features" in graph_views:
        model.encoder.set_external_features(graph_views["external_features"])
    model.eval()
    _WORKER_ENGINE = GenerationEngine(model, graph, payload.config, cache=cache)
    _WORKER_PARAM_VIEWS = param_views
    _WORKER_PARAM_VERSION = payload.version


def _run_on(engine: Any, kind: str, task: Any) -> Any:
    """Execute one chunk task against an engine instance."""
    if engine is None:
        raise RuntimeError("worker engine was not initialised")
    if kind == "generate":
        return engine.generate_chunk(task)
    if kind == "topk":
        return engine.topk_chunk(task)
    if kind == "train":
        from .trainer import run_train_shard

        return run_train_shard(engine, task)
    raise ValueError(f"unknown sharded task kind {kind!r}")


def _shard_index(task: Any) -> Optional[int]:
    """The shard index a task carries, for fault-rule matching."""
    return getattr(task, "index", None)


def _run_remote(kind: str, task: Any, attempt: int = 0) -> Any:
    """Module-level trampoline executed inside pool worker processes."""
    faults.check("shard", index=_shard_index(task), attempt=attempt)
    return _run_on(_WORKER_ENGINE, kind, task)


def _run_remote_shm(kind: str, version: int, task: Any, attempt: int = 0) -> Any:
    """Shm-dispatch trampoline: refresh weights from the segment when stale.

    ``version`` advances whenever the parent rewrote the parameter segment;
    a worker reloads at most once per version, so an epoch of S shards
    costs one weight copy per worker, not per shard.
    """
    global _WORKER_PARAM_VERSION
    faults.check("shard", index=_shard_index(task), attempt=attempt)
    engine = _WORKER_ENGINE
    if engine is None:
        raise RuntimeError("worker engine was not initialised")
    if version != _WORKER_PARAM_VERSION:
        if _WORKER_PARAM_VIEWS is None:
            raise RuntimeError("worker has no attached parameter segment")
        engine.model.load_state_dict(dict(_WORKER_PARAM_VIEWS))
        # New weights invalidate the memoised fingerprint the attached
        # embedding cache is validated against (recomputed lazily, once
        # per version, on the next cache consult).
        engine._weights_token = None
        _WORKER_PARAM_VERSION = version
    return _run_on(engine, kind, task)


def _checked(execute: Callable[[Any], Any], task: Any, attempt: int) -> Any:
    """Thread/sequential-rung shard wrapper: fault check, then execution."""
    faults.check("shard", index=_shard_index(task), attempt=attempt)
    return execute(task)


def _prewarm_graph(graph: TemporalGraph) -> None:
    """Build the shared lazy graph caches before thread fan-out.

    Worker threads then only ever read them: the partner CSR (candidate
    assembly), the incidence structure (ego sampling) and the snapshot time
    order.
    """
    if graph.num_edges:
        graph.out_partner_groups()
        graph.incidence
        graph._snapshot_order_bounds()


def _build_train_replicas(engine: Any, count: int) -> List[Any]:
    """Per-thread model replicas for training shards.

    Backward passes accumulate into parameter gradients, so concurrent
    shards must not share one model.  Replicas share the live (read-only)
    graph; each run checks replicas out of a queue and returns them.
    """
    payload = payload_from_engine(engine)
    return [_build_engine(payload, graph=engine.graph) for _ in range(count)]


def _make_train_replicas(engine: Any, count: int) -> "queue.SimpleQueue":
    """Replica queue for the one-shot thread path (see :func:`_run_threads`)."""
    replicas: "queue.SimpleQueue" = queue.SimpleQueue()
    for replica in _build_train_replicas(engine, count):
        replicas.put(replica)
    return replicas


def _map_with_replicas(
    replicas: "queue.SimpleQueue", kind: str, tasks: Sequence[Any], workers: int
) -> List[Any]:
    def run(task: Any) -> Any:
        replica = replicas.get()
        try:
            return _run_on(replica, kind, task)
        finally:
            replicas.put(replica)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run, tasks))


def _run_threads(engine: Any, kind: str, tasks: Sequence[Any], workers: int) -> List[Any]:
    _prewarm_graph(engine.graph)
    count = min(workers, len(tasks))
    if kind == "train":
        return _map_with_replicas(_make_train_replicas(engine, count), kind, tasks, count)
    with ThreadPoolExecutor(max_workers=count) as pool:
        return list(pool.map(lambda task: _run_on(engine, kind, task), tasks))


def _process_context() -> multiprocessing.context.BaseContext:
    # fork skips model re-pickling and re-import; fall back to the platform
    # default (spawn on macOS/Windows) where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _run_processes(engine: Any, kind: str, tasks: Sequence[Any], workers: int) -> List[Any]:
    payload = payload_from_engine(engine)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        mp_context=_process_context(),
        initializer=_init_worker,
        initargs=(payload,),
    ) as pool:
        return list(pool.map(partial(_run_remote, kind), tasks))


def _pickled_bytes(obj: Any) -> int:
    """Size of ``obj`` on the dispatch wire (for the benchmark gates)."""
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class WorkerPool:
    """A persistent, reusable worker pool for sharded chunk tasks.

    One pool amortises process startup and graph shipping over many
    ``run()`` calls: repeated ``generate()`` draws (significance tests),
    ``score_topk`` sweeps, and every epoch of a training run reuse the same
    worker processes.  On the process backend the pool publishes the model
    parameters and the graph's CSR arrays into shared-memory segments
    (:class:`SharedArrayStore`, enabled by ``shm_dispatch=True`` where the
    platform supports it): workers attach once, per-task messages carry
    only index arrays + a parameter version, and weight changes (every
    training epoch, every refit) are an in-place segment rewrite -- O(1)
    dispatch in model size.  Without shm the pool re-ships a pickled
    payload whenever the fingerprint of what workers need actually changes;
    either way, for training shards -- whose fingerprint ignores weight
    values -- one pool survives a whole optimisation run.

    Usage is either explicit::

        with WorkerPool(workers=4) as pool:
            graph_a = engine.generate(rng_a, pool=pool)
            graph_b = engine.generate(rng_b, pool=pool)

    or through the owning objects: :meth:`repro.core.TGAEGenerator.worker_pool`
    and ``train_tgae(..., workers=N)`` manage a pool for you.  When a rung
    of the dispatch ladder cannot run (no POSIX semaphores, crashed and
    unrebuildable workers, restricted sandbox) the pool steps down
    ``shm -> pickle -> thread -> sequential`` -- loudly, one
    :class:`~repro.errors.DegradeWarning` per step (``backend`` then
    reports the effective backend, ``requested_backend`` the original,
    :attr:`rung` the active rung); results are bit-identical on every rung,
    and any shared segments are unlinked at the moment of degradation.
    Transient per-shard failures are retried in place (``max_shard_retries``,
    exponential backoff) and stragglers re-dispatched (``shard_timeout``)
    before any degrade; :attr:`health` reports the counters.  Concurrent
    ``run()`` calls from different threads serialise on the pool's internal
    lock.
    """

    _ids = itertools.count()

    def __init__(
        self,
        workers: int,
        backend: str = "process",
        shm_dispatch: bool = True,
        track_dispatch: bool = False,
        max_shard_retries: int = 2,
        shard_timeout: Optional[float] = None,
        retry_backoff: float = 0.05,
    ) -> None:
        #: Assigned before any validation so close()/__del__ on a pool whose
        #: __init__ raised stays a clean no-op.
        self.closed = True
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if backend not in BACKENDS:
            raise ConfigError(
                f"parallel backend must be one of {BACKENDS}, got {backend!r}"
            )
        if max_shard_retries < 0:
            raise ConfigError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}"
            )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ConfigError(
                f"shard_timeout must be positive (or None), got {shard_timeout}"
            )
        if retry_backoff < 0:
            raise ConfigError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.workers = workers
        self.max_shard_retries = int(max_shard_retries)
        self.shard_timeout = shard_timeout
        self.retry_backoff = float(retry_backoff)
        self.backend = backend
        self.requested_backend = backend
        self.shm_dispatch = bool(shm_dispatch)
        self.track_dispatch = bool(track_dispatch)
        self.pool_id = f"workerpool-{next(WorkerPool._ids)}"
        self.runs = 0
        self.closed = False
        #: Dispatch accounting (populated when ``track_dispatch=True``):
        #: pickled bytes of task messages / one-time payloads, and counts of
        #: payload publishes and in-place parameter updates.
        self.dispatch_stats: Dict[str, int] = {
            "task_bytes": 0,
            "payload_bytes": 0,
            "payload_publishes": 0,
            "param_updates": 0,
        }
        #: Robustness counters surfaced through :attr:`health`.
        self._health: Dict[str, Any] = {
            "retries": 0,
            "timeouts": 0,
            "redispatches": 0,
            "worker_crashes": 0,
            "stragglers_verified": 0,
            "embed_publishes": 0,
            "embed_updates": 0,
            "degrades": [],
        }
        #: Final ladder rung: no executor at all, shards run in-process.
        self._sequential = False
        self._owner_pid = os.getpid()
        self._executor: Optional[ProcessPoolExecutor] = None
        #: ``(initializer, payload)`` behind the live process executor, kept
        #: so a broken executor can be rebuilt against surviving segments.
        self._active_payload: Optional[Tuple[Callable[..., None], Any]] = None
        self._token: Optional[str] = None
        self._thread_executor: Optional[ThreadPoolExecutor] = None
        self._replicas: Optional[List[Any]] = None
        self._replica_token: Optional[str] = None
        self._stores: Dict[str, SharedArrayStore] = {}
        self._param_version = 0
        self._param_token: Optional[str] = None
        #: Mutation counter of the engine cache behind the live embed
        #: segment at last sync; ``None`` when no embed segment is live.
        self._embed_mutation: Optional[int] = None
        #: (weakref-to-engine, token) cache: the structure token is constant
        #: for an engine's lifetime, so a whole training run hashes the
        #: graph arrays once instead of once per epoch.
        self._structure_cache: Optional[tuple] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def shm_active(self) -> bool:
        """Whether dispatch currently goes through shared-memory segments."""
        return (
            self.shm_dispatch
            and self.backend == "process"
            and shared_memory_supported()
        )

    @property
    def needs_inline_state(self) -> bool:
        """Whether training tasks must carry the weights inline.

        ``False`` on the thread and sequential rungs (replicas / the live
        engine are refreshed from the live model) and under shm dispatch
        (weights ride the shared parameter segment); ``True`` only for the
        plain pickle process rung, where each task message must ship the
        current ``state_dict``.
        """
        if self._sequential or self.backend == "thread":
            return False
        return not self.shm_active

    @property
    def rung(self) -> str:
        """The degradation-ladder rung dispatch currently uses (see ``LADDER``)."""
        return self._rung_locked()

    @property
    def health(self) -> Dict[str, Any]:
        """A structured operational report: rung, knobs, fault counters.

        ``degrades`` lists every ladder step taken (e.g. ``"shm->pickle"``)
        in order; ``retries`` / ``timeouts`` / ``redispatches`` /
        ``worker_crashes`` count recovered incidents, and
        ``stragglers_verified`` counts abandoned originals that finished
        anyway and were bit-compared against their re-dispatched twin.
        ``embed_publishes`` / ``embed_updates`` count inference
        embedding-cache segment creations and in-place mirror syncs.
        """
        report: Dict[str, Any] = {
            "pool_id": self.pool_id,
            "rung": self.rung,
            "backend": self.backend,
            "requested_backend": self.requested_backend,
            "workers": self.workers,
            "runs": self.runs,
            "closed": self.closed,
            "max_shard_retries": self.max_shard_retries,
            "shard_timeout": self.shard_timeout,
        }
        for key, value in self._health.items():
            report[key] = list(value) if isinstance(value, list) else value
        return report

    def shm_segments(self) -> Tuple[str, ...]:
        """Names of the currently published shared segments (tests/debug)."""
        return tuple(
            store.handle.segment
            for store in self._stores.values()
            if not store.closed
        )

    # ------------------------------------------------------------------
    def run(
        self,
        engine: Any,
        kind: str,
        tasks: Sequence[Any],
        collector: Optional[Any] = None,
    ) -> Optional[List[Any]]:
        """Run chunk ``tasks`` against ``engine``; results in task order.

        Without ``collector`` the results come back as a list.  With a
        ``collector`` (an object with ``add(result)`` and ``reset()``),
        results are *streamed* into it in task order as workers finish --
        the consumer's merge work overlaps the remaining shards' compute.

        Failure handling is layered.  *Within* a rung, a shard that dies
        with a transient error (``OSError``/pickling) is retried up to
        ``max_shard_retries`` times with exponential backoff, a shard that
        exceeds ``shard_timeout`` seconds is re-dispatched (the abandoned
        straggler, if it ever finishes, is bit-compared against its
        replacement), and a crashed worker gets the executor rebuilt
        against the surviving shared segments.  Only when a rung is
        *exhausted* does the pool step down the degradation ladder
        shm -> pickle -> thread -> sequential -- permanently, loudly (one
        :class:`~repro.errors.DegradeWarning` per step) and with the
        collector reset so partially-consumed results can never be
        double-counted.  Re-running is safe: each task's draws come from
        its own seed-sequence child, so every recovery path is
        bit-identical to the undisturbed run.
        """
        if self.closed:
            raise PoolError(f"{self.pool_id} has been shut down")
        tasks = list(tasks)
        self.runs += 1
        if not tasks:
            return [] if collector is None else None
        if self.track_dispatch:
            self.dispatch_stats["task_bytes"] += sum(
                _pickled_bytes(task) for task in tasks
            )
        if self.workers == 1 or len(tasks) == 1:
            return self._run_sequential(engine, kind, tasks, collector)
        while True:
            try:
                if self._sequential:
                    return self._run_sequential(engine, kind, tasks, collector)
                if self.backend == "thread":
                    return self._run_on_threads(engine, kind, tasks, collector)
                return self._run_on_processes(engine, kind, tasks, collector)
            except _RUNG_FAILURES as exc:
                cause = exc.cause if isinstance(exc, _RungExhausted) else exc
                if collector is not None:
                    collector.reset()
                self._degrade(cause)

    # ------------------------------------------------------------------
    @staticmethod
    def _consume(iterator: Any, collector: Optional[Any]) -> Optional[List[Any]]:
        """Drain a result iterator into a list or stream it into a collector."""
        if collector is None:
            return list(iterator)
        for result in iterator:
            collector.add(result)
        return None

    def _token_for(self, engine: Any, kind: str) -> str:
        """The staleness token for ``engine``, with the structure flavour cached.

        Engines carrying a writable embedding cache get a distinct token
        suffix: their shm executors own a third (embed) segment, so a
        cache-less engine must not inherit an executor whose workers would
        look for one (and vice versa).  Switching between cached and
        uncached engines on one pool therefore rebuilds the executor once
        per switch -- the same cost as any other structure change.
        """
        include_state = kind != "train"
        if not include_state and self._structure_cache is not None:
            ref, token = self._structure_cache
            if ref() is engine:
                return token
        token = _engine_token(engine, include_state=include_state)
        cache = getattr(engine, "cache", None)
        if cache is not None and getattr(cache, "writable", False):
            token += "+embed"
        if not include_state:
            self._structure_cache = (weakref.ref(engine), token)
        return token

    def _fast_dispatch(self) -> bool:
        """Whether the legacy map-based dispatch (no retry bookkeeping) applies.

        Only when every robustness knob is off and no fault is armed: this
        is the zero-overhead baseline ``benchmarks/bench_fault_overhead.py``
        compares the instrumented path against.
        """
        return (
            self.max_shard_retries == 0
            and self.shard_timeout is None
            and not faults.active()
        )

    def _run_on_processes(
        self, engine: Any, kind: str, tasks: List[Any], collector: Optional[Any] = None
    ) -> Optional[List[Any]]:
        # The whole dispatch holds the lock so a concurrent run() with a
        # different payload token cannot swap the executor out from under
        # this one -- concurrent callers serialise instead.
        with self._lock:
            faults.check("dispatch")
            if self.shm_active:
                self._ensure_shm_executor_locked(engine, kind)
                version = self._param_version

                def submit(task: Any, attempt: int) -> Any:
                    return self._executor.submit(
                        _run_remote_shm, kind, version, task, attempt
                    )

                mapper: Any = partial(_run_remote_shm, kind, version)
            else:
                self._ensure_pickle_executor_locked(engine, kind)

                def submit(task: Any, attempt: int) -> Any:
                    return self._executor.submit(_run_remote, kind, task, attempt)

                mapper = partial(_run_remote, kind)
            if self._fast_dispatch():
                return self._consume(self._executor.map(mapper, tasks), collector)
            return self._consume_futures(
                tasks, submit, self._rebuild_process_executor_locked, collector
            )

    def _ensure_shm_executor_locked(self, engine: Any, kind: str) -> None:
        """Make the shm executor current for ``engine``; caller holds the lock.

        The *structure* token (graph + config + parameter shapes) gates the
        expensive path -- executor rebuild and segment republish; a pure
        weight change is an in-place parameter-segment rewrite plus a
        version bump that rides inside the per-task trampoline arguments.
        Training always rewrites (weights change every step); generation
        rewrites only when the weight fingerprint actually moved.
        """
        structure = self._token_for(engine, kind="train")
        if self._executor is None or structure != self._token:
            self._shutdown_process_executor_locked()
            self._release_stores_locked()
            payload = self._publish_engine_locked(engine)
            self._start_process_executor_locked(_init_worker_shm, payload)
            self._token = structure
            self._param_token = None if kind == "train" else _state_token(engine)
        elif kind == "train":
            self._update_params_locked(engine)
            self._param_token = None
        else:
            state = _state_token(engine)
            if state != self._param_token:
                self._update_params_locked(engine)
                self._param_token = state
            self._sync_embed_locked(engine)

    def _ensure_pickle_executor_locked(self, engine: Any, kind: str) -> None:
        """Make the pickled-payload executor current; caller holds the lock."""
        token = self._token_for(engine, kind)
        if self._executor is None or token != self._token:
            self._shutdown_process_executor_locked()
            payload = payload_from_engine(engine)
            if self.track_dispatch:
                self.dispatch_stats["payload_bytes"] += _pickled_bytes(payload)
                self.dispatch_stats["payload_publishes"] += 1
            self._start_process_executor_locked(_init_worker, payload)
            self._token = token

    def _start_process_executor_locked(
        self, initializer: Callable[..., None], payload: Any
    ) -> None:
        self._active_payload = (initializer, payload)
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_process_context(),
            initializer=initializer,
            initargs=(payload,),
        )

    def _rebuild_process_executor_locked(self) -> None:
        """Replace a broken process executor in place; caller holds the lock.

        A crashed worker poisons the whole ``ProcessPoolExecutor`` but not
        the parent-owned shared segments or the cached initializer payload,
        so the replacement pool re-attaches to what is already published.
        (A stale payload ``version`` only costs each fresh worker one extra
        weight reload -- task messages carry the current version.)
        """
        if self._active_payload is None:
            raise RuntimeError(
                f"{self.pool_id}: no payload cached to rebuild workers from"
            )
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=False)
            except Exception:
                pass
            self._executor = None
        initializer, payload = self._active_payload
        self._start_process_executor_locked(initializer, payload)

    def _consume_futures(
        self,
        tasks: List[Any],
        submit: Callable[[Any, int], Any],
        rebuild: Optional[Callable[[], None]],
        collector: Optional[Any],
    ) -> Optional[List[Any]]:
        """Submit every task, then consume results in task order with recovery.

        The retry/timeout engine shared by the process and thread rungs.
        Consuming in task order keeps the merge bit-identical and lets a
        collector overlap with outstanding shards, exactly like the map
        path it replaces; per-shard ``attempt`` numbers flow into the
        workers so :mod:`repro.faults` rules can target (or spare) retries.
        """
        attempts = [0] * len(tasks)
        futures = self._submit_all(tasks, attempts, submit, rebuild)
        results: Optional[List[Any]] = [] if collector is None else None
        for i in range(len(tasks)):
            result = self._await_shard(i, tasks, futures, attempts, submit, rebuild)
            if results is not None:
                results.append(result)
            else:
                collector.add(result)
        return results

    def _submit_all(
        self,
        tasks: List[Any],
        attempts: List[int],
        submit: Callable[[Any, int], Any],
        rebuild: Optional[Callable[[], None]],
    ) -> List[Any]:
        """Dispatch every shard, surviving a worker crash mid-submission.

        A worker that dies while the parent is still submitting the rest of
        the dispatch poisons the executor, so ``submit`` itself raises
        ``BrokenProcessPool``; that is the same recoverable incident as a
        crash surfaced through a future and takes the same rebuild path
        (every shard re-dispatched at its next attempt number), not the
        degradation ladder.
        """
        while True:
            try:
                return [submit(task, attempts[j]) for j, task in enumerate(tasks)]
            except BrokenProcessPool as exc:
                self._health["worker_crashes"] += 1
                if rebuild is None:
                    raise
                for j in range(len(tasks)):
                    self._bump_attempt(j, attempts, exc)
                rebuild()

    def _await_shard(
        self,
        i: int,
        tasks: List[Any],
        futures: List[Any],
        attempts: List[int],
        submit: Callable[[Any, int], Any],
        rebuild: Optional[Callable[[], None]],
    ) -> Any:
        stale: List[Any] = []
        while True:
            try:
                result = futures[i].result(timeout=self.shard_timeout)
            except FuturesTimeout as exc:
                # Straggler: abandon the in-flight future (it keeps running)
                # and race a re-dispatch against it.
                self._health["timeouts"] += 1
                self._bump_attempt(i, attempts, exc)
                self._health["redispatches"] += 1
                stale.append(futures[i])
                futures[i] = submit(tasks[i], attempts[i])
            except BrokenProcessPool as exc:
                # A worker died abruptly, poisoning the whole executor and
                # every in-flight shard: rebuild it and re-dispatch all
                # unconsumed shards at their next attempt number (which is
                # what keeps an attempt-pinned crash rule from re-firing).
                self._health["worker_crashes"] += 1
                self._bump_attempt(i, attempts, exc)
                if rebuild is None:
                    raise
                rebuild()
                for j in range(i + 1, len(tasks)):
                    attempts[j] += 1
                for j in range(i, len(tasks)):
                    futures[j] = submit(tasks[j], attempts[j])
            except _RETRYABLE_TASK_ERRORS as exc:
                self._health["retries"] += 1
                self._bump_attempt(i, attempts, exc)
                time.sleep(self.retry_backoff * (2 ** (attempts[i] - 1)))
                futures[i] = submit(tasks[i], attempts[i])
            else:
                self._verify_stragglers(i, stale, result)
                return result

    def _bump_attempt(self, i: int, attempts: List[int], exc: BaseException) -> None:
        attempts[i] += 1
        if attempts[i] > self.max_shard_retries:
            raise _RungExhausted(i, exc) from exc

    def _verify_stragglers(self, index: int, stale: List[Any], result: Any) -> None:
        """Bit-compare straggler results that finished despite re-dispatch.

        Shards are pure functions of (task, seed child, weights), so an
        abandoned original that completed anyway must equal its replacement
        bit for bit; divergence means nondeterminism leaked in and is a
        loud failure, never something to paper over.
        """
        for future in stale:
            if (
                not future.done()
                or future.cancelled()
                or future.exception() is not None
            ):
                continue
            original = pickle.dumps(future.result(), protocol=pickle.HIGHEST_PROTOCOL)
            replacement = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            if original != replacement:
                raise PoolError(
                    f"{self.pool_id}: re-dispatched shard {index} diverged from "
                    "its abandoned straggler -- shards must be deterministic"
                )
            self._health["stragglers_verified"] += 1

    def _publish_engine_locked(self, engine: Any) -> ShmWorkerPayload:
        """Create fresh graph/parameter(/embed) segments and the handle payload."""
        stores: Dict[str, SharedArrayStore] = {}
        try:
            stores["graph"] = SharedArrayStore(_shm_graph_arrays(engine))
            stores["params"] = SharedArrayStore(_shm_param_arrays(engine))
            cache = getattr(engine, "cache", None)
            if cache is not None and getattr(cache, "writable", False):
                stores["embed"] = SharedArrayStore(cache.share_arrays())
                self._embed_mutation = cache.mutations
                self._health["embed_publishes"] += 1
        except Exception:
            for store in stores.values():
                store.close()
            raise
        self._stores = stores
        self._param_version += 1
        external = engine.model.encoder._external_features
        payload = ShmWorkerPayload(
            config=engine.config,
            num_nodes=engine.graph.num_nodes,
            num_timestamps=engine.graph.num_timestamps,
            feature_dim=external.shape[-1] if external is not None else 0,
            graph=stores["graph"].handle,
            params=stores["params"].handle,
            version=self._param_version,
            embed=stores["embed"].handle if "embed" in stores else None,
        )
        if self.track_dispatch:
            self.dispatch_stats["payload_bytes"] += _pickled_bytes(payload)
            self.dispatch_stats["payload_publishes"] += 1
        return payload

    def _sync_embed_locked(self, engine: Any) -> None:
        """Mirror the parent's embedding cache into its shared segment.

        An in-place segment rewrite, gated on the cache's monotone
        ``mutations`` counter: an all-hit dispatch (the warm steady state)
        costs zero copies, and only prefills/invalidations/flushes since
        the last sync trigger one.  Workers validate the segment's embedded
        token per chunk, so the update is always observed consistently.
        """
        store = self._stores.get("embed")
        cache = getattr(engine, "cache", None)
        if store is None or cache is None or not getattr(cache, "writable", False):
            return
        if cache.mutations == self._embed_mutation:
            return
        store.update(cache.share_arrays())
        self._embed_mutation = cache.mutations
        self._health["embed_updates"] += 1

    def _update_params_locked(self, engine: Any) -> None:
        """Rewrite the parameter segment in place and advance the version."""
        self._stores["params"].update(_shm_param_arrays(engine))
        self._param_version += 1
        if self.track_dispatch:
            self.dispatch_stats["param_updates"] += 1

    def _run_on_threads(
        self, engine: Any, kind: str, tasks: List[Any], collector: Optional[Any] = None
    ) -> Optional[List[Any]]:
        faults.check("dispatch")
        _prewarm_graph(engine.graph)
        with self._lock:
            if self._thread_executor is None:
                self._thread_executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=self.pool_id,
                )
            executor = self._thread_executor
        if kind != "train":

            def execute(task: Any) -> Any:
                return _run_on(engine, kind, task)

        else:
            with self._lock:
                token = self._token_for(engine, kind)
                if self._replicas is None or token != self._replica_token:
                    self._replicas = _build_train_replicas(engine, self.workers)
                    self._replica_token = token
                elif getattr(tasks[0], "state", None) is None:
                    # Tasks without inline weights expect workers to hold the
                    # *current* weights: refresh cached replicas from the live
                    # model (an exact copy, so the run stays bit-identical).
                    state = engine.model.state_dict()
                    for replica in self._replicas:
                        replica.model.load_state_dict(state)
                replicas: "queue.SimpleQueue" = queue.SimpleQueue()
                for replica in self._replicas:
                    replicas.put(replica)

            def execute(task: Any) -> Any:
                replica = replicas.get()
                try:
                    return _run_on(replica, kind, task)
                finally:
                    replicas.put(replica)

        if self._fast_dispatch():
            return self._consume(executor.map(execute, tasks), collector)

        def submit(task: Any, attempt: int) -> Any:
            return executor.submit(_checked, execute, task, attempt)

        # No rebuild callback: a thread pool has no crashed-worker mode.
        return self._consume_futures(tasks, submit, None, collector)

    def _run_sequential(
        self, engine: Any, kind: str, tasks: List[Any], collector: Optional[Any]
    ) -> Optional[List[Any]]:
        """The bottom rung (and the ``workers=1`` path): a plain in-process loop.

        Still retries transient per-shard errors, but there is nothing to
        degrade to below it -- exhaustion raises
        :class:`~repro.errors.PoolError` instead of stepping down.
        """
        results: Optional[List[Any]] = [] if collector is None else None
        for task in tasks:
            result = self._run_one_retrying(engine, kind, task)
            if results is not None:
                results.append(result)
            else:
                collector.add(result)
        return results

    def _run_one_retrying(self, engine: Any, kind: str, task: Any) -> Any:
        attempt = 0
        while True:
            try:
                return _checked(
                    lambda t: _run_on(engine, kind, t), task, attempt
                )
            except _RETRYABLE_TASK_ERRORS as exc:
                attempt += 1
                self._health["retries"] += 1
                if attempt > self.max_shard_retries:
                    raise PoolError(
                        f"{self.pool_id}: shard failed {attempt} attempts on the "
                        f"sequential rung ({type(exc).__name__}: {exc})"
                    ) from exc
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    def _degrade(self, cause: BaseException) -> None:
        """Step one rung down the ladder, releasing the failed rung's resources."""
        with self._lock:
            from_rung = self._rung_locked()
            if from_rung == "shm":
                # Keep the process backend, drop shared-memory dispatch:
                # segments are unlinked *and* the weight version advanced
                # (in _release_stores_locked) so a future republish can
                # never hand workers a version they think they already have.
                self._shutdown_process_executor_locked()
                self._release_stores_locked()
                self.shm_dispatch = False
            elif from_rung == "pickle":
                self._shutdown_process_executor_locked()
                self._release_stores_locked()
                self.backend = "thread"
            elif from_rung == "thread":
                if self._thread_executor is not None:
                    self._thread_executor.shutdown(wait=True)
                    self._thread_executor = None
                self._sequential = True
            else:
                raise PoolError(
                    f"{self.pool_id}: sequential execution failed "
                    f"({type(cause).__name__}: {cause}); no rung left to degrade to"
                ) from cause
            to_rung = self._rung_locked()
        self._health["degrades"].append(f"{from_rung}->{to_rung}")
        warnings.warn(
            f"{self.pool_id}: {from_rung} dispatch failed "
            f"({type(cause).__name__}: {cause}); degrading {from_rung}->{to_rung} "
            "for the remainder of this pool's life",
            DegradeWarning,
            stacklevel=3,
        )

    def _rung_locked(self) -> str:
        if self._sequential:
            return "sequential"
        if self.backend == "thread":
            return "thread"
        return "shm" if self.shm_active else "pickle"

    # ------------------------------------------------------------------
    def _release_stores_locked(self) -> None:
        """Unlink every published segment; caller must hold ``self._lock``.

        Also advances the weight-version counter past anything ever
        dispatched: if the pool later republishes (a re-promote after a
        degrade, a structure change), surviving or fresh workers can never
        mistake the new segment's contents for a version they already
        loaded and skip the reload.
        """
        for store in self._stores.values():
            store.close()
        self._stores = {}
        self._param_token = None
        self._embed_mutation = None
        self._param_version += 1

    def _shutdown_process_executor_locked(self) -> None:
        """Drop the process executor; caller must hold ``self._lock``."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._token = None
        self._active_payload = None

    def close(self) -> None:
        """Shut down every executor, replica and shared segment.

        Fully idempotent (double-close and ``__del__``-after-close are
        no-ops by state, not by exception swallowing), safe from ``atexit``
        and from forked children (a child never tears down its parent's
        executors or unlinks the parent's segments), and exception-free so
        interpreter-shutdown ordering can never turn cleanup into a crash.
        The pool becomes unusable.
        """
        # getattr: __del__ may run on a pool whose __init__ raised before
        # (or while) attributes were assigned; treat that as already closed.
        if getattr(self, "closed", True):
            return
        self.closed = True
        if os.getpid() != self._owner_pid:
            # Forked child (e.g. inherited atexit hook): the executors and
            # segments belong to the parent; touching them here would rip
            # shared state out from under a live process.
            return
        try:
            with self._lock:
                self._shutdown_process_executor_locked()
                if self._thread_executor is not None:
                    self._thread_executor.shutdown(wait=True)
                    self._thread_executor = None
                self._release_stores_locked()
                self._replicas = None
                self._replica_token = None
                self._structure_cache = None
        except Exception:
            # Interpreter shutdown can break executor internals mid-close;
            # still make sure the shared segments are gone.
            for store in list(self._stores.values()):
                store.close()
            self._stores = {}

    # Context-manager protocol: ``with WorkerPool(4) as pool: ...``
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        # Garbage collection of an unclosed pool must reap its segments;
        # after an explicit close() (the normal case) this is a pure no-op.
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"WorkerPool(id={self.pool_id}, workers={self.workers}, "
            f"backend={self.backend!r}, rung={self.rung}, runs={self.runs}, {state})"
        )


#: Lazily-created module singletons, one per (workers, backend) combination.
_SHARED_POOLS: Dict[Tuple[int, str], WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(workers: int, backend: str = "process") -> WorkerPool:
    """The lazy module-level singleton pool for a (workers, backend) config.

    Callers that cannot own a pool's lifetime (one-line scripts, notebook
    cells) can still amortise startup across calls; the singletons are shut
    down at interpreter exit.
    """
    key = (workers, backend)
    with _SHARED_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None or pool.closed:
            pool = WorkerPool(workers, backend)
            _SHARED_POOLS[key] = pool
        return pool


def close_shared_pools() -> None:
    """Shut down every module-level singleton pool (idempotent)."""
    with _SHARED_LOCK:
        for pool in _SHARED_POOLS.values():
            try:
                pool.close()
            except Exception:
                pass
        _SHARED_POOLS.clear()


atexit.register(close_shared_pools)


def run_sharded(
    engine: Any,
    kind: str,
    tasks: Sequence[Any],
    workers: int,
    backend: str = "process",
    pool: Optional[WorkerPool] = None,
) -> List[Any]:
    """Run chunk ``tasks`` on ``workers`` workers; results in task order.

    ``workers=1`` (or a single task) short-circuits to a plain loop over
    the live engine -- no pool, no payload copy, today's sequential path.
    When ``pool`` is given (and open), dispatch goes through that
    persistent :class:`WorkerPool` -- its worker count, backend and
    shared-memory dispatch mode govern -- instead of building a throwaway
    executor.  The process backend degrades to threads when the platform
    cannot build a process pool (missing semaphores, unpicklable payload);
    the result is bit-identical either way because every task carries its
    own spawned seed-sequence child.
    """
    if backend not in BACKENDS:
        raise ConfigError(
            f"parallel backend must be one of {BACKENDS}, got {backend!r}"
        )
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    tasks = list(tasks)
    if pool is not None and not pool.closed:
        return pool.run(engine, kind, tasks)
    if workers == 1 or len(tasks) <= 1:
        return [_run_on(engine, kind, task) for task in tasks]
    if backend == "thread":
        return _run_threads(engine, kind, tasks, workers)
    try:
        return _run_processes(engine, kind, tasks, workers)
    except _POOL_FAILURES as exc:
        # Pool-infrastructure failures (no POSIX semaphores, forbidden
        # fork, crashed/OOM-killed worker, unpicklable payload).  Domain
        # errors (GenerationError/ConfigError) propagate untouched.  The
        # retry is loud so a dying process backend cannot hide behind a
        # silently slower thread run.
        warnings.warn(
            f"process-pool backend failed ({type(exc).__name__}: {exc}); "
            "retrying on the thread backend",
            DegradeWarning,
            stacklevel=2,
        )
        return _run_threads(engine, kind, tasks, workers)
