"""Sharded parallel execution of generation and training chunk tasks.

The streaming :class:`~repro.core.engine.GenerationEngine` and the
data-parallel trainer (:mod:`repro.core.trainer`) both split their work into
independent units -- one encoder forward (+ backward, for training) per chunk
of centre temporal nodes -- where every unit owns a spawned
:class:`~numpy.random.SeedSequence` child (see :mod:`repro.rng`), touches
only its own centre rows, and returns plain arrays.  This module fans those
units out across a pool:

* ``backend="process"`` (default) runs chunks in worker *processes* -- the
  right choice for the CPU-bound NumPy forward passes, which the GIL would
  serialise under threads.  Each worker rebuilds the model/graph once from a
  :class:`WorkerPayload` of plain arrays shipped through the pool
  initializer; per-task messages carry only index arrays and a seed-sequence
  child (training shards add the current weights, which change every step).
* ``backend="thread"`` shares the live engine across a thread pool -- the
  fallback for environments where process pools are unavailable (no POSIX
  semaphores, restricted sandboxes); the process backend degrades to it
  automatically.  *Training* shards run backward passes, which accumulate
  into parameter gradients, so the thread backend gives each worker thread
  its own model replica instead of the shared live model.
* ``workers=1`` bypasses pools entirely and runs the chunks as a plain
  in-process loop -- the exact sequential path.

Because chunk streams are spawned from one root before any dispatch and
results are merged in chunk order, the three execution modes are
**bit-identical**: worker count and backend change wall-clock time, never
output.

:class:`WorkerPool` makes the executor *persistent*: one pool outlives many
``generate()`` / ``score_topk()`` calls and every epoch of a training run,
so many-sample workloads (significance tests, top-k sweeps, multi-epoch
training) pay process startup and graph shipping once instead of per call.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import multiprocessing
import pickle
import queue
import threading
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..graph.temporal_graph import TemporalGraph
from .config import TGAEConfig

__all__ = [
    "BACKENDS",
    "WorkerPayload",
    "WorkerPool",
    "payload_from_engine",
    "run_sharded",
    "shared_pool",
    "close_shared_pools",
]

#: Supported executor backends, in order of preference.
BACKENDS = ("process", "thread")

#: Pool-infrastructure failures that trigger the loud thread-backend retry.
_POOL_FAILURES = (OSError, BrokenProcessPool, pickle.PicklingError)


@dataclass(frozen=True)
class WorkerPayload:
    """Everything a worker process needs, reduced to plain picklable data.

    Shipped once per worker through the pool initializer (cheap under
    ``fork``, a single pickle under ``spawn``); the worker rebuilds the
    model from its ``state_dict`` and the graph from its edge arrays, the
    same way :func:`repro.core.persistence.load_generator` does.
    """

    state: Dict[str, np.ndarray]
    config: TGAEConfig
    num_nodes: int
    num_timestamps: int
    src: np.ndarray
    dst: np.ndarray
    t: np.ndarray
    external_features: Optional[np.ndarray]


def payload_from_engine(engine: Any) -> WorkerPayload:
    """Flatten a live :class:`~repro.core.engine.GenerationEngine` into arrays."""
    graph = engine.graph
    return WorkerPayload(
        state=engine.model.state_dict(),
        config=engine.config,
        num_nodes=graph.num_nodes,
        num_timestamps=graph.num_timestamps,
        src=graph.src,
        dst=graph.dst,
        t=graph.t,
        external_features=engine.model.encoder._external_features,
    )


def _engine_token(engine: Any, include_state: bool) -> str:
    """Fingerprint of an engine, deciding when shipped workers are stale.

    Generation tasks read the worker's resident weights, so their token
    covers the state arrays; training shards carry the current weights in
    every task message, so their token covers only the graph/config/shape
    structure -- which is what lets one process pool survive a whole
    training run even though the weights change every epoch.  Reads the
    live arrays in place (no ``state_dict`` copy).
    """
    digest = hashlib.sha256()
    graph = engine.graph
    digest.update(repr(engine.config).encode())
    digest.update(f"{graph.num_nodes}:{graph.num_timestamps}".encode())
    for arr in (graph.src, graph.dst, graph.t):
        digest.update(np.ascontiguousarray(arr).tobytes())
    external = engine.model.encoder._external_features
    if external is not None:
        digest.update(np.ascontiguousarray(external).tobytes())
    for name, param in sorted(engine.model.named_parameters()):
        digest.update(name.encode())
        if include_state:
            digest.update(np.ascontiguousarray(param.data).tobytes())
        else:
            digest.update(str(param.data.shape).encode())
    return ("state:" if include_state else "structure:") + digest.hexdigest()


def _build_engine(payload: WorkerPayload, graph: Optional[TemporalGraph] = None) -> Any:
    """Rebuild a generation engine (model + graph) from plain arrays.

    ``graph`` short-circuits the graph rebuild for same-process replicas
    (thread-backend training), which can safely share the live read-only
    graph and its caches.
    """
    from .engine import GenerationEngine
    from .model import TGAEModel

    if graph is None:
        graph = TemporalGraph(
            payload.num_nodes,
            payload.src,
            payload.dst,
            payload.t,
            num_timestamps=payload.num_timestamps,
            validate=False,
        )
    feature_dim = (
        payload.external_features.shape[-1]
        if payload.external_features is not None
        else 0
    )
    model = TGAEModel(
        payload.num_nodes, payload.num_timestamps, payload.config,
        feature_dim=feature_dim,
    )
    model.load_state_dict(payload.state)
    if payload.external_features is not None:
        model.encoder.set_external_features(payload.external_features)
    model.eval()
    return GenerationEngine(model, graph, payload.config)


#: Per-process engine rebuilt by :func:`_init_worker`; ``None`` in the parent.
_WORKER_ENGINE: Optional[Any] = None


def _init_worker(payload: WorkerPayload) -> None:
    """Pool initializer: rebuild the engine once per worker process."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = _build_engine(payload)


def _run_on(engine: Any, kind: str, task: Any) -> Any:
    """Execute one chunk task against an engine instance."""
    if engine is None:
        raise RuntimeError("worker engine was not initialised")
    if kind == "generate":
        return engine.generate_chunk(task)
    if kind == "topk":
        return engine.topk_chunk(task)
    if kind == "train":
        from .trainer import run_train_shard

        return run_train_shard(engine, task)
    raise ValueError(f"unknown sharded task kind {kind!r}")


def _run_remote(kind: str, task: Any) -> Any:
    """Module-level trampoline executed inside pool worker processes."""
    return _run_on(_WORKER_ENGINE, kind, task)


def _prewarm_graph(graph: TemporalGraph) -> None:
    """Build the shared lazy graph caches before thread fan-out.

    Worker threads then only ever read them: the partner CSR (candidate
    assembly), the incidence structure (ego sampling) and the snapshot time
    order.
    """
    if graph.num_edges:
        graph.out_partner_groups()
        graph.incidence
        graph._snapshot_order_bounds()


def _make_train_replicas(engine: Any, count: int) -> "queue.SimpleQueue":
    """Per-thread model replicas for training shards.

    Backward passes accumulate into parameter gradients, so concurrent
    shards must not share one model.  Replicas share the live (read-only)
    graph; each task checks a replica out, loads the task's weights, and
    returns it.
    """
    payload = payload_from_engine(engine)
    replicas: "queue.SimpleQueue" = queue.SimpleQueue()
    for _ in range(count):
        replicas.put(_build_engine(payload, graph=engine.graph))
    return replicas


def _map_with_replicas(
    replicas: "queue.SimpleQueue", kind: str, tasks: Sequence[Any], workers: int
) -> List[Any]:
    def run(task: Any) -> Any:
        replica = replicas.get()
        try:
            return _run_on(replica, kind, task)
        finally:
            replicas.put(replica)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run, tasks))


def _run_threads(engine: Any, kind: str, tasks: Sequence[Any], workers: int) -> List[Any]:
    _prewarm_graph(engine.graph)
    count = min(workers, len(tasks))
    if kind == "train":
        return _map_with_replicas(_make_train_replicas(engine, count), kind, tasks, count)
    with ThreadPoolExecutor(max_workers=count) as pool:
        return list(pool.map(lambda task: _run_on(engine, kind, task), tasks))


def _process_context() -> multiprocessing.context.BaseContext:
    # fork skips model re-pickling and re-import; fall back to the platform
    # default (spawn on macOS/Windows) where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _run_processes(engine: Any, kind: str, tasks: Sequence[Any], workers: int) -> List[Any]:
    payload = payload_from_engine(engine)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        mp_context=_process_context(),
        initializer=_init_worker,
        initargs=(payload,),
    ) as pool:
        return list(pool.map(partial(_run_remote, kind), tasks))


class WorkerPool:
    """A persistent, reusable worker pool for sharded chunk tasks.

    One pool amortises process startup and graph shipping over many
    ``run()`` calls: repeated ``generate()`` draws (significance tests),
    ``score_topk`` sweeps, and every epoch of a training run reuse the same
    worker processes.  The pool re-ships its payload only when the
    fingerprint of what workers need actually changes (a refitted model, a
    different graph); for training shards -- whose weights ride inside each
    task -- the fingerprint ignores weight values, so one pool survives a
    whole optimisation run.

    Usage is either explicit::

        with WorkerPool(workers=4) as pool:
            graph_a = engine.generate(rng_a, pool=pool)
            graph_b = engine.generate(rng_b, pool=pool)

    or through the owning objects: :meth:`repro.core.TGAEGenerator.worker_pool`
    and ``train_tgae(..., workers=N)`` manage a pool for you.  The process
    backend degrades to threads (loudly, once) when the platform cannot run
    process pools (``backend`` then reports the effective backend,
    ``requested_backend`` the original); results are bit-identical either
    way.  Concurrent ``run()`` calls from different threads serialise on the
    pool's internal lock.
    """

    _ids = itertools.count()

    def __init__(self, workers: int, backend: str = "process") -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if backend not in BACKENDS:
            raise ConfigError(
                f"parallel backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.workers = workers
        self.backend = backend
        self.requested_backend = backend
        self.pool_id = f"workerpool-{next(WorkerPool._ids)}"
        self.runs = 0
        self.closed = False
        self._executor: Optional[ProcessPoolExecutor] = None
        self._token: Optional[str] = None
        self._thread_executor: Optional[ThreadPoolExecutor] = None
        self._replicas: Optional["queue.SimpleQueue"] = None
        self._replica_token: Optional[str] = None
        #: (weakref-to-engine, token) cache: the structure token is constant
        #: for an engine's lifetime, so a whole training run hashes the
        #: graph arrays once instead of once per epoch.
        self._structure_cache: Optional[tuple] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def run(self, engine: Any, kind: str, tasks: Sequence[Any]) -> List[Any]:
        """Run chunk ``tasks`` against ``engine``; results in task order."""
        if self.closed:
            raise RuntimeError(f"{self.pool_id} has been shut down")
        tasks = list(tasks)
        self.runs += 1
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1:
            return [_run_on(engine, kind, task) for task in tasks]
        if self.backend == "thread":
            return self._run_on_threads(engine, kind, tasks)
        try:
            return self._run_on_processes(engine, kind, tasks)
        except _POOL_FAILURES as exc:
            # Same loud degradation as the one-shot path -- but permanent,
            # so a persistent pool does not retry a broken process backend
            # on every call.
            warnings.warn(
                f"{self.pool_id}: process backend failed "
                f"({type(exc).__name__}: {exc}); switching to the thread "
                "backend for the remainder of this pool's life",
                RuntimeWarning,
                stacklevel=2,
            )
            self._shutdown_process_executor()
            self.backend = "thread"
            return self._run_on_threads(engine, kind, tasks)

    # ------------------------------------------------------------------
    def _token_for(self, engine: Any, kind: str) -> str:
        """The staleness token for ``engine``, with the structure flavour cached."""
        include_state = kind != "train"
        if not include_state and self._structure_cache is not None:
            ref, token = self._structure_cache
            if ref() is engine:
                return token
        token = _engine_token(engine, include_state=include_state)
        if not include_state:
            self._structure_cache = (weakref.ref(engine), token)
        return token

    def _run_on_processes(self, engine: Any, kind: str, tasks: List[Any]) -> List[Any]:
        # The whole dispatch holds the lock so a concurrent run() with a
        # different payload token cannot swap the executor out from under
        # this one's map -- concurrent callers serialise instead.
        with self._lock:
            token = self._token_for(engine, kind)
            if self._executor is None or token != self._token:
                self._shutdown_process_executor_locked()
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=_process_context(),
                    initializer=_init_worker,
                    initargs=(payload_from_engine(engine),),
                )
                self._token = token
            return list(self._executor.map(partial(_run_remote, kind), tasks))

    def _run_on_threads(self, engine: Any, kind: str, tasks: List[Any]) -> List[Any]:
        _prewarm_graph(engine.graph)
        with self._lock:
            if self._thread_executor is None:
                self._thread_executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=self.pool_id,
                )
            executor = self._thread_executor
        if kind != "train":
            return list(executor.map(lambda task: _run_on(engine, kind, task), tasks))
        with self._lock:
            token = self._token_for(engine, kind)
            if self._replicas is None or token != self._replica_token:
                self._replicas = _make_train_replicas(engine, self.workers)
                self._replica_token = token
            replicas = self._replicas

        def run(task: Any) -> Any:
            replica = replicas.get()
            try:
                return _run_on(replica, kind, task)
            finally:
                replicas.put(replica)

        return list(executor.map(run, tasks))

    # ------------------------------------------------------------------
    def _shutdown_process_executor_locked(self) -> None:
        """Drop the process executor; caller must hold ``self._lock``."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._token = None

    def _shutdown_process_executor(self) -> None:
        with self._lock:
            self._shutdown_process_executor_locked()

    def close(self) -> None:
        """Shut down every executor and replica; the pool becomes unusable."""
        if self.closed:
            return
        self.closed = True
        with self._lock:
            self._shutdown_process_executor_locked()
            if self._thread_executor is not None:
                self._thread_executor.shutdown(wait=True)
                self._thread_executor = None
            self._replicas = None
            self._replica_token = None
            self._structure_cache = None

    # Context-manager protocol: ``with WorkerPool(4) as pool: ...``
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"WorkerPool(id={self.pool_id}, workers={self.workers}, "
            f"backend={self.backend!r}, runs={self.runs}, {state})"
        )


#: Lazily-created module singletons, one per (workers, backend) combination.
_SHARED_POOLS: Dict[Tuple[int, str], WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(workers: int, backend: str = "process") -> WorkerPool:
    """The lazy module-level singleton pool for a (workers, backend) config.

    Callers that cannot own a pool's lifetime (one-line scripts, notebook
    cells) can still amortise startup across calls; the singletons are shut
    down at interpreter exit.
    """
    key = (workers, backend)
    with _SHARED_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None or pool.closed:
            pool = WorkerPool(workers, backend)
            _SHARED_POOLS[key] = pool
        return pool


def close_shared_pools() -> None:
    """Shut down every module-level singleton pool (idempotent)."""
    with _SHARED_LOCK:
        for pool in _SHARED_POOLS.values():
            pool.close()
        _SHARED_POOLS.clear()


atexit.register(close_shared_pools)


def run_sharded(
    engine: Any,
    kind: str,
    tasks: Sequence[Any],
    workers: int,
    backend: str = "process",
    pool: Optional[WorkerPool] = None,
) -> List[Any]:
    """Run chunk ``tasks`` on ``workers`` workers; results in task order.

    ``workers=1`` (or a single task) short-circuits to a plain loop over
    the live engine -- no pool, no payload copy, today's sequential path.
    When ``pool`` is given (and open), dispatch goes through that
    persistent :class:`WorkerPool` -- its worker count and backend govern
    -- instead of building a throwaway executor.  The process backend
    degrades to threads when the platform cannot build a process pool
    (missing semaphores, unpicklable payload); the result is bit-identical
    either way because every task carries its own spawned seed-sequence
    child.
    """
    if backend not in BACKENDS:
        raise ConfigError(
            f"parallel backend must be one of {BACKENDS}, got {backend!r}"
        )
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    tasks = list(tasks)
    if pool is not None and not pool.closed:
        return pool.run(engine, kind, tasks)
    if workers == 1 or len(tasks) <= 1:
        return [_run_on(engine, kind, task) for task in tasks]
    if backend == "thread":
        return _run_threads(engine, kind, tasks, workers)
    try:
        return _run_processes(engine, kind, tasks, workers)
    except _POOL_FAILURES as exc:
        # Pool-infrastructure failures (no POSIX semaphores, forbidden
        # fork, crashed/OOM-killed worker, unpicklable payload).  Domain
        # errors (GenerationError/ConfigError) propagate untouched.  The
        # retry is loud so a dying process backend cannot hide behind a
        # silently slower thread run.
        warnings.warn(
            f"process-pool backend failed ({type(exc).__name__}: {exc}); "
            "retrying on the thread backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_threads(engine, kind, tasks, workers)
