"""Sharded parallel execution of generation-engine chunk tasks.

The streaming :class:`~repro.core.engine.GenerationEngine` already splits
its work -- one encoder forward + candidate decode per chunk of active
temporal nodes -- into independent units: every chunk owns a spawned
:class:`~numpy.random.SeedSequence` child (see :mod:`repro.rng`), touches
only its own centre rows, and returns plain arrays.  This module fans those
units out across a pool:

* ``backend="process"`` (default) runs chunks in worker *processes* -- the
  right choice for the CPU-bound NumPy forward passes, which the GIL would
  serialise under threads.  Each worker rebuilds the model/graph once from a
  :class:`WorkerPayload` of plain arrays shipped through the pool
  initializer; per-task messages carry only index arrays and a seed-sequence
  child, never graph or model objects.
* ``backend="thread"`` shares the live engine across a thread pool -- the
  fallback for environments where process pools are unavailable (no POSIX
  semaphores, restricted sandboxes); the process backend degrades to it
  automatically.
* ``workers=1`` bypasses pools entirely and runs the chunks as a plain
  in-process loop -- the exact sequential path.

Because chunk streams are spawned from one root before any dispatch and
results are merged in chunk order, the three execution modes are
**bit-identical**: worker count and backend change wall-clock time, never
output.
"""

from __future__ import annotations

import multiprocessing
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..graph.temporal_graph import TemporalGraph
from .config import TGAEConfig

__all__ = ["BACKENDS", "WorkerPayload", "payload_from_engine", "run_sharded"]

#: Supported executor backends, in order of preference.
BACKENDS = ("process", "thread")


@dataclass(frozen=True)
class WorkerPayload:
    """Everything a worker process needs, reduced to plain picklable data.

    Shipped once per worker through the pool initializer (cheap under
    ``fork``, a single pickle under ``spawn``); the worker rebuilds the
    model from its ``state_dict`` and the graph from its edge arrays, the
    same way :func:`repro.core.persistence.load_generator` does.
    """

    state: Dict[str, np.ndarray]
    config: TGAEConfig
    num_nodes: int
    num_timestamps: int
    src: np.ndarray
    dst: np.ndarray
    t: np.ndarray
    external_features: Optional[np.ndarray]


def payload_from_engine(engine: Any) -> WorkerPayload:
    """Flatten a live :class:`~repro.core.engine.GenerationEngine` into arrays."""
    graph = engine.graph
    return WorkerPayload(
        state=engine.model.state_dict(),
        config=engine.config,
        num_nodes=graph.num_nodes,
        num_timestamps=graph.num_timestamps,
        src=graph.src,
        dst=graph.dst,
        t=graph.t,
        external_features=engine.model.encoder._external_features,
    )


#: Per-process engine rebuilt by :func:`_init_worker`; ``None`` in the parent.
_WORKER_ENGINE: Optional[Any] = None


def _init_worker(payload: WorkerPayload) -> None:
    """Pool initializer: rebuild the engine once per worker process."""
    global _WORKER_ENGINE
    from .engine import GenerationEngine
    from .model import TGAEModel

    graph = TemporalGraph(
        payload.num_nodes,
        payload.src,
        payload.dst,
        payload.t,
        num_timestamps=payload.num_timestamps,
        validate=False,
    )
    feature_dim = (
        payload.external_features.shape[-1]
        if payload.external_features is not None
        else 0
    )
    model = TGAEModel(
        payload.num_nodes, payload.num_timestamps, payload.config,
        feature_dim=feature_dim,
    )
    model.load_state_dict(payload.state)
    if payload.external_features is not None:
        model.encoder.set_external_features(payload.external_features)
    model.eval()
    _WORKER_ENGINE = GenerationEngine(model, graph, payload.config)


def _run_on(engine: Any, kind: str, task: Any) -> Any:
    """Execute one chunk task against an engine instance."""
    if engine is None:
        raise RuntimeError("worker engine was not initialised")
    if kind == "generate":
        return engine.generate_chunk(task)
    if kind == "topk":
        return engine.topk_chunk(task)
    raise ValueError(f"unknown sharded task kind {kind!r}")


def _run_remote(kind: str, task: Any) -> Any:
    """Module-level trampoline executed inside pool worker processes."""
    return _run_on(_WORKER_ENGINE, kind, task)


def _run_threads(engine: Any, kind: str, tasks: Sequence[Any], workers: int) -> List[Any]:
    # Pre-build the shared lazy graph caches before fan-out so worker
    # threads only ever read them: the partner CSR (candidate assembly),
    # the incidence structure (ego sampling) and the snapshot time order.
    if engine.graph.num_edges:
        engine.graph.out_partner_groups()
        engine.graph.incidence
        engine.graph._snapshot_order_bounds()
    with ThreadPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(lambda task: _run_on(engine, kind, task), tasks))


def _run_processes(engine: Any, kind: str, tasks: Sequence[Any], workers: int) -> List[Any]:
    payload = payload_from_engine(engine)
    # fork skips model re-pickling and re-import; fall back to the platform
    # default (spawn on macOS/Windows) where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        mp_context=context,
        initializer=_init_worker,
        initargs=(payload,),
    ) as pool:
        return list(pool.map(partial(_run_remote, kind), tasks))


def run_sharded(
    engine: Any,
    kind: str,
    tasks: Sequence[Any],
    workers: int,
    backend: str = "process",
) -> List[Any]:
    """Run chunk ``tasks`` on ``workers`` workers; results in task order.

    ``workers=1`` (or a single task) short-circuits to a plain loop over
    the live engine -- no pool, no payload copy, today's sequential path.
    The process backend degrades to threads when the platform cannot build
    a process pool (missing semaphores, unpicklable payload); the result is
    bit-identical either way because every task carries its own spawned
    seed-sequence child.
    """
    if backend not in BACKENDS:
        raise ConfigError(
            f"parallel backend must be one of {BACKENDS}, got {backend!r}"
        )
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    tasks = list(tasks)
    if workers == 1 or len(tasks) <= 1:
        return [_run_on(engine, kind, task) for task in tasks]
    if backend == "thread":
        return _run_threads(engine, kind, tasks, workers)
    try:
        return _run_processes(engine, kind, tasks, workers)
    except (OSError, BrokenProcessPool, pickle.PicklingError) as exc:
        # Pool-infrastructure failures (no POSIX semaphores, forbidden
        # fork, crashed/OOM-killed worker, unpicklable payload).  Domain
        # errors (GenerationError/ConfigError) propagate untouched.  The
        # retry is loud so a dying process backend cannot hide behind a
        # silently slower thread run.
        warnings.warn(
            f"process-pool backend failed ({type(exc).__name__}: {exc}); "
            "retrying on the thread backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_threads(engine, kind, tasks, workers)
