"""Save / load trained TGAE generators.

Serialisation uses a single ``.npz`` archive holding every model parameter
plus the configuration and graph-universe metadata, so a trained generator
can be shipped to (and re-used by) a consumer that never sees the observed
graph -- the privacy-preserving deployment scenario that motivates graph
simulation in the first place.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Optional, Union

import numpy as np

from ..errors import ConfigError, NotFittedError
from ..graph.temporal_graph import TemporalGraph
from .config import TGAEConfig
from .generator import TGAEGenerator
from .model import TGAEModel

PathLike = Union[str, "os.PathLike[str]"]

_META_KEY = "__meta__"
_FORMAT_VERSION = 1


def save_generator(generator: TGAEGenerator, path: PathLike) -> None:
    """Serialise a fitted :class:`TGAEGenerator` to ``path`` (``.npz``).

    The observed graph's edges are stored as well (they are needed by the
    Sec. IV-G generation procedure, which re-samples ego-graphs from the
    observed structure and reproduces its per-temporal-node edge budget).
    """
    if generator.model is None or not generator.is_fitted:
        raise NotFittedError("cannot save an unfitted generator")
    observed = generator.observed
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": dataclasses.asdict(generator.config),
        "num_nodes": observed.num_nodes,
        "num_timestamps": observed.num_timestamps,
        "name": generator.name,
    }
    arrays = {f"param:{k}": v for k, v in generator.model.state_dict().items()}
    arrays["graph:src"] = observed.src
    arrays["graph:dst"] = observed.dst
    arrays["graph:t"] = observed.t
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_generator(path: PathLike, dtype: Optional[str] = None) -> TGAEGenerator:
    """Restore a generator previously written by :func:`save_generator`.

    The checkpoint records its dtype policy (in the stored config) and the
    parameter arrays are stored at that dtype; loading keeps the stored
    policy by default.  ``dtype`` requests an *explicit* cast to another
    policy (``"float32"``/``"float64"``) -- the config and every parameter
    are converted together, so a loaded model never silently mixes
    precisions.  Checkpoints from before the dtype policy existed carry no
    ``dtype`` field; their policy is inferred from the stored arrays
    (historically always float64).  A checkpoint whose arrays disagree with
    its recorded policy is rejected with :class:`ConfigError`.
    """
    with np.load(path, allow_pickle=False) as archive:
        if _META_KEY not in archive:
            raise ConfigError(f"{path!s} is not a saved TGAE generator")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ConfigError(
                f"unsupported format version {meta.get('format_version')!r}"
            )
        state = {
            key[len("param:"):]: archive[key]
            for key in archive.files
            if key.startswith("param:")
        }
        cfg_dict = dict(meta["config"])
        if "dtype" not in cfg_dict:
            # Pre-policy checkpoint: the stored arrays *are* the policy.
            stored_dtypes = sorted({str(arr.dtype) for arr in state.values()})
            cfg_dict["dtype"] = stored_dtypes[0] if len(stored_dtypes) == 1 else "float64"
        config = TGAEConfig(**cfg_dict)
        mixed = sorted(
            name for name, arr in state.items() if arr.dtype != config.np_dtype
        )
        if mixed:
            raise ConfigError(
                f"checkpoint records dtype={config.dtype!r} but parameters "
                f"{mixed} are stored at a different precision; refusing to "
                "mix silently"
            )
        if dtype is not None:
            try:
                requested = np.dtype(dtype).name
            except TypeError as exc:
                raise ConfigError(f"invalid dtype {dtype!r}") from exc
            # Explicit cross-policy cast: config and parameters move together
            # (TGAEConfig validation rejects anything but float32/float64).
            config = dataclasses.replace(config, dtype=requested)
        generator = TGAEGenerator(config)
        generator.name = meta.get("name", "TGAE")
        observed = TemporalGraph(
            meta["num_nodes"],
            archive["graph:src"],
            archive["graph:dst"],
            archive["graph:t"],
            num_timestamps=meta["num_timestamps"],
            validate=False,
        )
        model = TGAEModel(meta["num_nodes"], meta["num_timestamps"], config)
        model.load_state_dict(state)
        model.eval()
    generator._observed = observed
    generator.model = model
    return generator
