"""Save / load trained TGAE generators.

Serialisation uses a single ``.npz`` archive holding every model parameter
plus the configuration and graph-universe metadata, so a trained generator
can be shipped to (and re-used by) a consumer that never sees the observed
graph -- the privacy-preserving deployment scenario that motivates graph
simulation in the first place.

Format v2 additionally carries the training lineage -- name-keyed optimizer
state slots, the epoch counter, the trainer RNG position and the cumulative
loss curves -- so a loaded generator can resume or warm-start training
(``fit --resume`` / :meth:`TGAEGenerator.update`) bit-identically to a run
that was never interrupted.  v1 archives (weights only) still load; they
just resume with a cold optimizer and a fresh RNG lineage.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from typing import Optional, Union

import numpy as np

from ..errors import ConfigError, NotFittedError
from ..graph.temporal_graph import TemporalGraph
from .config import TGAEConfig
from .generator import TGAEGenerator
from .model import TGAEModel
from .trainer import TrainingState

PathLike = Union[str, "os.PathLike[str]"]

_META_KEY = "__meta__"
_FORMAT_VERSION = 2
#: Every format this loader understands; the writer always emits the newest.
_SUPPORTED_FORMATS = (1, 2)


def save_generator(generator: TGAEGenerator, path: PathLike) -> None:
    """Serialise a fitted :class:`TGAEGenerator` to ``path`` (``.npz``).

    The observed graph's edges are stored as well (they are needed by the
    Sec. IV-G generation procedure, which re-samples ego-graphs from the
    observed structure and reproduces its per-temporal-node edge budget).
    When the generator carries a training lineage (``generator.train_state``)
    the archive additionally records the optimizer slots, epoch counter and
    trainer RNG position -- the format-v2 resume payload.

    The write is *atomic*: the archive is assembled in a same-directory
    temp file and moved into place with ``os.replace``, so a crash or kill
    mid-save (the crash-safe-training scenario of ``checkpoint_every``)
    can never leave a torn or half-written checkpoint at ``path`` -- the
    previous complete checkpoint, if any, survives intact.
    """
    if generator.model is None or not generator.is_fitted:
        raise NotFittedError("cannot save an unfitted generator")
    observed = generator.observed
    train_state: Optional[TrainingState] = getattr(generator, "train_state", None)
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": dataclasses.asdict(generator.config),
        "num_nodes": observed.num_nodes,
        "num_timestamps": observed.num_timestamps,
        "name": generator.name,
        "train_state": None,
    }
    arrays = {f"param:{k}": v for k, v in generator.model.state_dict().items()}
    arrays["graph:src"] = observed.src
    arrays["graph:dst"] = observed.dst
    arrays["graph:t"] = observed.t
    if train_state is not None:
        slots = train_state.optimizer.get("slots", {})
        meta["train_state"] = {
            "epoch": int(train_state.epoch),
            "rng_entropy": int(train_state.rng_entropy),
            "rng_spawn_key": [int(word) for word in train_state.rng_spawn_key],
            "optimizer_step": int(train_state.optimizer.get("step", 0)),
            "optimizer_slots": sorted(slots),
        }
        for slot, per_param in slots.items():
            for name, array in per_param.items():
                arrays[f"optim:{slot}:{name}"] = array
        arrays["train:losses"] = np.asarray(train_state.losses, dtype=np.float64)
        arrays["train:grad_norms"] = np.asarray(train_state.grad_norms, dtype=np.float64)
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    # Replicate np.savez's name handling (it appends ".npz" to bare paths),
    # then write-to-temp + rename so the final name only ever holds a
    # complete archive.
    target = os.fspath(path)
    if not target.endswith(".npz"):
        target += ".npz"
    tmp = f"{target}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    finally:
        if os.path.exists(tmp):
            try:
                os.remove(tmp)
            except OSError:
                pass


def save_training_checkpoint(
    path: PathLike,
    model: TGAEModel,
    graph: TemporalGraph,
    config: TGAEConfig,
    state: TrainingState,
) -> None:
    """Atomically checkpoint an in-flight training run as a full generator.

    Used by ``train_tgae(checkpoint_every=...)``: wraps the live model,
    observed graph and lineage ``state`` in a generator shell and writes a
    normal format-v2 archive, so recovery is just :func:`load_generator`
    followed by a ``resume_from`` run -- no separate checkpoint format to
    maintain or migrate.
    """
    shell = TGAEGenerator(config)
    shell.model = model
    shell._observed = graph
    shell.train_state = state
    save_generator(shell, path)


def load_generator(path: PathLike, dtype: Optional[str] = None) -> TGAEGenerator:
    """Restore a generator previously written by :func:`save_generator`.

    The checkpoint records its dtype policy (in the stored config) and the
    parameter arrays are stored at that dtype; loading keeps the stored
    policy by default.  ``dtype`` requests an *explicit* cast to another
    policy (``"float32"``/``"float64"``) -- the config and every parameter
    are converted together, so a loaded model never silently mixes
    precisions.  Checkpoints from before the dtype policy existed carry no
    ``dtype`` field; their policy is inferred from the stored arrays
    (historically always float64).  A checkpoint whose arrays disagree with
    its recorded policy is rejected with :class:`ConfigError`.

    Format-v2 archives restore the training lineage onto
    ``generator.train_state`` (optimizer moments, epoch counter, RNG
    position), enabling bit-identical resume; v1 archives load weights-only
    with ``train_state=None`` -- a subsequent ``update``/resume then
    warm-starts the weights but runs a cold optimizer on a fresh RNG
    lineage.  Config keys unknown to this version are dropped with a
    ``RuntimeWarning``.
    """
    with np.load(path, allow_pickle=False) as archive:
        if _META_KEY not in archive:
            raise ConfigError(f"{path!s} is not a saved TGAE generator")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        version = meta.get("format_version")
        if version not in _SUPPORTED_FORMATS:
            supported = ", ".join(str(v) for v in _SUPPORTED_FORMATS)
            raise ConfigError(
                f"unsupported format version {version!r}; "
                f"supported versions: {supported}"
            )
        state = {
            key[len("param:"):]: archive[key]
            for key in archive.files
            if key.startswith("param:")
        }
        cfg_dict = dict(meta["config"])
        known_keys = {f.name for f in dataclasses.fields(TGAEConfig)}
        unknown_keys = sorted(set(cfg_dict) - known_keys)
        if unknown_keys:
            # Forward compatibility: a newer writer may have added config
            # fields this version does not know.  Dropping them (loudly) is
            # strictly better than refusing to load the weights.
            warnings.warn(
                f"checkpoint {path!s} carries unknown config keys "
                f"{unknown_keys} (written by a newer version?); ignoring them",
                RuntimeWarning,
                stacklevel=2,
            )
            cfg_dict = {k: v for k, v in cfg_dict.items() if k in known_keys}
        if "dtype" not in cfg_dict:
            # Pre-policy checkpoint: the stored arrays *are* the policy.
            stored_dtypes = sorted({str(arr.dtype) for arr in state.values()})
            cfg_dict["dtype"] = stored_dtypes[0] if len(stored_dtypes) == 1 else "float64"
        config = TGAEConfig(**cfg_dict)
        mixed = sorted(
            name for name, arr in state.items() if arr.dtype != config.np_dtype
        )
        if mixed:
            raise ConfigError(
                f"checkpoint records dtype={config.dtype!r} but parameters "
                f"{mixed} are stored at a different precision; refusing to "
                "mix silently"
            )
        if dtype is not None:
            try:
                requested = np.dtype(dtype).name
            except TypeError as exc:
                raise ConfigError(f"invalid dtype {dtype!r}") from exc
            # Explicit cross-policy cast: config and parameters move together
            # (TGAEConfig validation rejects anything but float32/float64).
            config = dataclasses.replace(config, dtype=requested)
        generator = TGAEGenerator(config)
        generator.name = meta.get("name", "TGAE")
        observed = TemporalGraph(
            meta["num_nodes"],
            archive["graph:src"],
            archive["graph:dst"],
            archive["graph:t"],
            num_timestamps=meta["num_timestamps"],
            validate=False,
        )
        model = TGAEModel(meta["num_nodes"], meta["num_timestamps"], config)
        model.load_state_dict(state)
        model.eval()
        train_state: Optional[TrainingState] = None
        state_meta = meta.get("train_state")
        if state_meta is not None:
            slots = {
                slot: {
                    key[len(f"optim:{slot}:"):]: archive[key]
                    for key in archive.files
                    if key.startswith(f"optim:{slot}:")
                }
                for slot in state_meta["optimizer_slots"]
            }
            train_state = TrainingState(
                epoch=int(state_meta["epoch"]),
                optimizer={
                    "step": int(state_meta["optimizer_step"]),
                    "slots": slots,
                },
                rng_entropy=int(state_meta["rng_entropy"]),
                rng_spawn_key=tuple(int(word) for word in state_meta["rng_spawn_key"]),
                losses=[float(x) for x in archive["train:losses"]],
                grad_norms=[float(x) for x in archive["train:grad_norms"]],
            )
    generator._observed = observed
    generator.model = model
    generator.train_state = train_state
    return generator
