"""Mini-batch training loop for TGAE (Sec. IV-E).

Each epoch draws one batch of ``n_s`` centre ego-graphs (the approximate
objective of Eq. 7 - the paper's trade-off knob between quality and speed),
runs the encoder/decoder, and applies one Adam step with gradient clipping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..graph.temporal_graph import TemporalGraph
from ..optim import Adam, clip_grad_norm
from ..rng import stream
from .config import TGAEConfig
from .loss import tgae_loss
from .model import TGAEModel
from .sampler import EgoGraphSampler


@dataclass
class TrainingHistory:
    """Per-epoch diagnostics collected during :func:`train_tgae`."""

    losses: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> Optional[float]:
        return self.losses[-1] if self.losses else None


def train_tgae(
    model: TGAEModel,
    graph: TemporalGraph,
    config: Optional[TGAEConfig] = None,
    rng: Optional[np.random.Generator] = None,
    verbose: bool = False,
) -> TrainingHistory:
    """Optimise ``model`` on ``graph`` with the Eq. 7 mini-batch objective.

    Returns the loss/gradient history so callers (and tests) can verify the
    optimisation actually made progress.
    """
    config = config if config is not None else model.config
    rng = rng if rng is not None else stream(config.seed, "tgae", "trainer")
    sampler = EgoGraphSampler(graph, config, rng)
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    history = TrainingHistory()
    model.train()
    for epoch in range(config.epochs):
        batch = sampler.next_batch()
        # One encoder forward per minibatch; the packed (padded ego-parallel)
        # layout is the vectorised hot path, the merged bipartite layout the
        # cross-ego-sharing alternative.
        computation = batch.computation_batch(config.packed_batches)
        decoded = model(computation, sample=True, candidates=batch.candidates)
        loss = tgae_loss(
            decoded,
            batch.target_rows,
            kl_weight=config.kl_weight,
            candidates=batch.candidates,
        )
        optimizer.zero_grad()
        loss.backward()
        grad_norm = clip_grad_norm(model.parameters(), config.grad_clip)
        optimizer.step()
        history.losses.append(loss.item())
        history.grad_norms.append(grad_norm)
        if verbose:
            print(f"[tgae] epoch {epoch + 1}/{config.epochs}  loss={loss.item():.4f}")
    model.eval()
    return history
