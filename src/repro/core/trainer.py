"""Data-parallel mini-batch training for TGAE (Sec. IV-E).

Each epoch draws one batch of ``n_s`` centre ego-graphs (the approximate
objective of Eq. 7 - the paper's trade-off knob between quality and speed),
partitions it into fixed-size *shards*, runs forward+backward per shard, and
merges the shard gradients -- in shard order -- into one Adam step with
gradient clipping.

Sharding is what makes training scale on both axes at once:

* **Time**: shards are independent, so ``workers > 1`` fans them out over
  the same process/thread pool the generation engine uses
  (:mod:`repro.core.parallel`).  Every shard owns a spawned
  :class:`~numpy.random.SeedSequence` child driving its ego sampling,
  candidate negatives and reparameterisation noise, and gradients are summed
  in shard order, so the loss/gradient trajectory -- and therefore the final
  weights -- are **bit-identical for every worker count and backend**.
* **Memory**: with ``config.checkpoint_attention`` the TGAT layers free
  their per-edge activations (the O(batch * ego^2) tensors that dominate
  training peak memory) after the forward pass and recompute them during
  backward; checkpointing is exact, so the loss trajectory does not change
  by a single bit.  Smaller ``train_shard_size`` additionally bounds how
  many ego-graphs are ever in flight at once.
"""

from __future__ import annotations

import math
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import faults
from ..errors import ConfigError
from ..graph.ego_graph import sample_initial_nodes
from ..graph.temporal_graph import TemporalGraph
from ..optim import Adam, clip_grad_norm, load_gradients
from ..rng import seed_sequence, spawn_streams
from .config import TGAEConfig
from .loss import adjacency_target_rows, tgae_shard_loss
from .model import TGAEModel
from .parallel import BACKENDS, WorkerPool
from .sampler import EgoGraphSampler

#: Default number of shards an epoch batch is split into when
#: ``config.train_shard_size`` is unset.  Fixed (never derived from the
#: worker count) so the partitioning -- and therefore every draw -- is
#: identical no matter how many workers execute the shards.
DEFAULT_TRAIN_SHARDS = 4


@dataclass
class TrainingState:
    """Everything needed to continue a training run exactly where it stopped.

    Captured at the end of every :func:`train_tgae` call (on the returned
    history's ``state``) and persisted by format-v2 checkpoints.  Feeding it
    back via ``train_tgae(..., resume_from=state)`` re-derives the epoch
    seed-stream from the recorded RNG position and warm-starts the optimizer
    from the recorded moments, so a run split into 5+5 epochs is
    bit-identical to an uninterrupted 10-epoch run -- for any worker count,
    backend and dtype (see docs/ARCHITECTURE.md, "Append / warm-start
    lifecycle").
    """

    #: Number of epochs completed so far, across all runs of this lineage.
    epoch: int
    #: Name-keyed :meth:`~repro.optim.base.Optimizer.state_dict` snapshot.
    optimizer: Dict[str, Any]
    #: ``entropy`` of the run's root :class:`~numpy.random.SeedSequence`.
    rng_entropy: int
    #: ``spawn_key`` of the run's root seed sequence.  Together with the
    #: entropy this pins the root exactly; epoch ``i``'s stream is child
    #: ``i`` of the root no matter how the epochs are batched into runs.
    rng_spawn_key: Tuple[int, ...]
    #: Cumulative per-epoch losses across all runs of this lineage.
    losses: List[float] = field(default_factory=list)
    #: Cumulative per-epoch clipped gradient norms, parallel to ``losses``.
    grad_norms: List[float] = field(default_factory=list)


@dataclass
class TrainingHistory:
    """Per-epoch diagnostics collected during :func:`train_tgae`.

    The per-epoch lists cover *this call only*; ``state`` carries the
    cumulative lineage (prior-run epochs included) for checkpointing.
    """

    losses: List[float] = field(default_factory=list)
    grad_norms: List[float] = field(default_factory=list)
    #: Wall-clock seconds per epoch (always recorded).
    epoch_seconds: List[float] = field(default_factory=list)
    #: Peak traced bytes per epoch; zeros unless ``track_memory`` was on.
    peak_memory_bytes: List[int] = field(default_factory=list)
    #: Resume/warm-start handle captured when the run completes.
    state: Optional[TrainingState] = None

    @property
    def final_loss(self) -> Optional[float]:
        """Loss of the last completed epoch (``None`` before any epoch)."""
        return self.losses[-1] if self.losses else None

    @property
    def total_seconds(self) -> float:
        """Total training wall-clock over all epochs."""
        return float(sum(self.epoch_seconds))

    @property
    def peak_memory(self) -> int:
        """Largest per-epoch traced peak (0 when memory was not tracked)."""
        return max(self.peak_memory_bytes, default=0)


@dataclass(frozen=True)
class TrainShardTask:
    """One shard of an epoch's data-parallel fan-out.

    Mirrors :class:`~repro.core.engine.GenerateChunkTask`: index arrays and
    a spawned seed-sequence child, never live graph or model objects.  The
    global loss normalisers (``recon_scale = 1/active_total``,
    ``kl_scale = 1/batch_rows``) ride along so shard losses and gradients
    are additive; ``state`` carries the current weights only when the pool
    reports :attr:`~repro.core.parallel.WorkerPool.needs_inline_state`
    (plain pickled process dispatch).  It stays ``None`` on the in-process
    sequential path (the live model already has the weights), on the thread
    backend (replicas are refreshed from the live model) and under
    shared-memory dispatch (workers reload from the parameter segment).
    """

    index: int
    centers: np.ndarray
    target_rows: Tuple[np.ndarray, ...]
    recon_scale: float
    kl_scale: float
    seed_seq: np.random.SeedSequence
    state: Optional[Dict[str, np.ndarray]] = None


@dataclass(frozen=True)
class TrainShardResult:
    """What one shard reports back: its loss term and gradient sums."""

    index: int
    loss: float
    grads: Dict[str, np.ndarray]


def run_train_shard(engine, task: TrainShardTask) -> TrainShardResult:
    """Forward+backward for one shard; pure given the task.

    Runs in the parent (``workers=1``), on a thread-pool model replica, or
    in a worker process against a rebuilt engine -- identically in all
    three: ego sampling, candidate negatives and reparameterisation noise
    all come from the task's spawned seed-sequence child, and the weights
    are either the live model's (sequential), the bit-equal copy shipped in
    ``task.state``, or -- under shared-memory dispatch, where ``state`` is
    ``None`` -- the bit-equal copy the worker loaded from the version-stamped
    parameter segment.
    """
    model: TGAEModel = engine.model
    config: TGAEConfig = engine.config
    if task.state is not None:
        model.load_state_dict(task.state)
    rng = np.random.default_rng(task.seed_seq)
    sampler = EgoGraphSampler(engine.graph, config, rng)
    batch = sampler.batch_for_centers(task.centers, target_rows=list(task.target_rows))
    computation = batch.computation_batch(config.packed_batches)
    decoded = model(
        computation, sample=True, candidates=batch.candidates, noise_rng=rng
    )
    loss = tgae_shard_loss(
        decoded,
        batch.target_rows,
        kl_weight=config.kl_weight,
        recon_scale=task.recon_scale,
        kl_scale=task.kl_scale,
        candidates=batch.candidates,
    )
    model.zero_grad()
    if loss.requires_grad:
        loss.backward()
    grads = {
        name: param.grad.copy()
        for name, param in model.named_parameters()
        if param.grad is not None
    }
    return TrainShardResult(index=task.index, loss=loss.item(), grads=grads)


class _EpochShardCollector:
    """Streams shard results into the merged gradient as they arrive.

    Fed by :meth:`WorkerPool.run` in *shard order* (the pool consumes its
    executor map lazily, which yields results in task-submission order), so
    while worker K computes shard K the parent is already summing shard
    K-1's gradients -- the merge overlaps shard compute instead of waiting
    for the full result list.  The accumulation is bit-identical to
    ``merge_gradient_shards`` over the complete list: first occurrence of a
    parameter copies, later occurrences add left-to-right, and the loss sum
    runs in the same order as ``sum(result.loss for result in results)``.
    """

    __slots__ = ("loss", "grads")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Drop everything accumulated so far (pool degrade re-runs all shards)."""
        self.loss: float = 0.0
        self.grads: Dict[str, np.ndarray] = {}

    def add(self, result: TrainShardResult) -> None:
        """Fold one shard's loss and gradients into the running totals."""
        self.loss += result.loss
        for name, grad in result.grads.items():
            if name in self.grads:
                self.grads[name] = self.grads[name] + grad
            else:
                self.grads[name] = grad.copy()


def _resolve_shard_size(config: TGAEConfig) -> int:
    if config.train_shard_size is not None:
        return config.train_shard_size
    return max(1, math.ceil(config.num_initial_nodes / DEFAULT_TRAIN_SHARDS))


def train_tgae(
    model: TGAEModel,
    graph: TemporalGraph,
    config: Optional[TGAEConfig] = None,
    rng: Optional[np.random.Generator] = None,
    verbose: bool = False,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
    track_memory: bool = False,
    resume_from: Optional[TrainingState] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[Any] = None,
) -> TrainingHistory:
    """Optimise ``model`` on ``graph`` with the Eq. 7 mini-batch objective.

    Parameters
    ----------
    model, graph, config:
        The model to optimise, the observed graph, and the hyper-parameters
        (``None``: the model's own config).
    rng:
        Optional generator seeding the run (its next draw becomes the root
        of every epoch/shard stream).  ``None`` uses the named
        ``(seed, "tgae", "trainer")`` stream -- the reproducible default.
    verbose:
        Print one line per epoch (loss, gradient norm, wall-clock and, when
        tracked, peak memory).
    workers, backend:
        Data-parallel knobs, defaulting to ``config.workers`` /
        ``config.parallel_backend``.  Shard partitioning and per-shard
        streams never depend on them, so the training trajectory is
        bit-identical for every worker count and backend.
    pool:
        A caller-owned persistent :class:`~repro.core.parallel.WorkerPool`
        to dispatch shards through.  ``None`` with ``workers > 1`` creates
        a private pool for the run and tears it down afterwards (the pool
        persists *across epochs* either way -- that is what amortises
        process startup).
    track_memory:
        Record per-epoch tracemalloc peaks into the history.  Starts
        tracing if it is not already running (and stops it afterwards);
        when a caller already traces, the caller's peak counters are reset
        every epoch.
    resume_from:
        A :class:`TrainingState` from a previous run (``history.state`` or a
        format-v2 checkpoint).  The run then executes ``config.epochs``
        *additional* epochs: the root seed sequence is rebuilt from the
        recorded RNG position and epoch ``i`` of the lineage always consumes
        child stream ``i``, and the optimizer restores its moments and step
        count -- so a resumed 5+5 split is bit-identical to a straight
        10-epoch run.  Mutually exclusive with ``rng`` (the recorded
        position already pins the streams).  The model must already hold
        the weights the state was captured against (load the checkpoint
        first); ``resume_from`` itself carries only optimizer/RNG state.
    checkpoint_every, checkpoint_path:
        Crash-safe autosave: every ``checkpoint_every`` completed epochs the
        full format-v2 checkpoint (weights, optimizer moments, RNG position,
        loss lineage) is written *atomically* -- to a temp file first, then
        an ``os.replace`` -- at ``checkpoint_path``, so a kill mid-fit can
        never leave a torn file.  Reloading the checkpoint and resuming via
        ``resume_from`` for the remaining epochs reproduces the final
        weights bit for bit.  Both must be given together; the cadence must
        be >= 1.

    Returns the loss/gradient/etc. history so callers (and tests) can verify
    the optimisation actually made progress; ``history.state`` is the
    resume/warm-start handle for the next run.
    """
    from .engine import GenerationEngine

    config = config if config is not None else model.config
    workers = int(workers if workers is not None else config.workers)
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    backend = backend if backend is not None else config.parallel_backend
    if backend not in BACKENDS:
        raise ConfigError(
            f"parallel backend must be one of {BACKENDS}, got {backend!r}"
        )
    if (checkpoint_every is None) != (checkpoint_path is None):
        raise ConfigError(
            "checkpoint_every and checkpoint_path must be given together"
        )
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ConfigError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    shard_size = _resolve_shard_size(config)
    if resume_from is not None:
        if rng is not None:
            raise ConfigError(
                "pass either rng or resume_from, not both: a resumed run re-derives "
                "its streams from the recorded RNG position"
            )
        start_epoch = int(resume_from.epoch)
        if start_epoch < 0:
            raise ConfigError(f"resume_from.epoch must be >= 0, got {start_epoch}")
        root = np.random.SeedSequence(
            entropy=int(resume_from.rng_entropy),
            spawn_key=tuple(int(word) for word in resume_from.rng_spawn_key),
        )
    elif rng is None:
        start_epoch = 0
        root = seed_sequence(config.seed, "tgae", "trainer")
    else:
        start_epoch = 0
        root = np.random.SeedSequence(int(rng.integers(np.iinfo(np.int64).max)))
    rng_entropy = int(root.entropy)
    rng_spawn_key = tuple(int(word) for word in root.spawn_key)
    total_epochs = start_epoch + config.epochs
    # Spawning the full lineage and slicing makes epoch i consume child
    # stream i of the root regardless of how the epochs were batched into
    # runs -- the resume bit-identity contract.
    epoch_seqs = spawn_streams(root, total_epochs)[start_epoch:]

    optimizer = Adam(model.named_parameters(), lr=config.learning_rate)
    if resume_from is not None:
        optimizer.load_state_dict(resume_from.optimizer)
    history = TrainingHistory()
    engine = GenerationEngine(model, graph, config)
    own_pool = pool is None and workers > 1
    if own_pool:
        pool = WorkerPool(
            workers,
            backend,
            shm_dispatch=config.shm_dispatch,
            max_shard_retries=config.max_shard_retries,
            shard_timeout=config.shard_timeout,
        )
    prior_losses = list(resume_from.losses) if resume_from is not None else []
    prior_norms = list(resume_from.grad_norms) if resume_from is not None else []

    def capture_state(epochs_done: int) -> TrainingState:
        """The lineage state as of ``epochs_done`` completed epochs."""
        return TrainingState(
            epoch=epochs_done,
            optimizer=optimizer.state_dict(),
            rng_entropy=rng_entropy,
            rng_spawn_key=rng_spawn_key,
            losses=prior_losses + list(history.losses),
            grad_norms=prior_norms + list(history.grad_norms),
        )

    started_tracing = False
    if track_memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracing = True
    model.train()
    try:
        for offset, epoch_seq in enumerate(epoch_seqs):
            epoch = start_epoch + offset
            # Nemesis hook: an armed "epoch" rule (e.g. a simulated mid-fit
            # kill) fires here, after the previous epoch's checkpoint.
            faults.check("epoch", index=epoch)
            tick = time.perf_counter()
            if track_memory:
                tracemalloc.reset_peak()
            # One centre stream and one shard root per epoch, both spawned
            # from the run root -- execution order can never leak in.
            center_seq, shard_root = epoch_seq.spawn(2)
            centers = sample_initial_nodes(
                graph,
                config.num_initial_nodes,
                np.random.default_rng(center_seq),
                uniform=config.uniform_initial_sampling,
            )
            targets = adjacency_target_rows(graph.src, graph.dst, graph.t, centers)
            active_total = sum(1 for row in targets if np.asarray(row).size)
            recon_scale = (1.0 / active_total) if active_total else 0.0
            kl_scale = 1.0 / centers.shape[0]
            starts = list(range(0, centers.shape[0], shard_size))
            children = spawn_streams(shard_root, len(starts))
            pooled = (
                pool is not None
                and not pool.closed
                and pool.workers > 1
                and len(starts) > 1
            )
            # Weights ride inline in the task messages only when the pool
            # has no cheaper channel: under shared-memory dispatch they live
            # in the parameter segment, and thread-backend replicas are
            # refreshed from the live model.
            inline_state = pooled and pool.needs_inline_state
            state = model.state_dict() if inline_state else None
            tasks = [
                TrainShardTask(
                    index=i,
                    centers=centers[start : start + shard_size],
                    target_rows=tuple(targets[start : start + shard_size]),
                    recon_scale=recon_scale,
                    kl_scale=kl_scale,
                    seed_seq=children[i],
                    state=state,
                )
                for i, start in enumerate(starts)
            ]
            # Deterministic merge, overlapped with compute: the collector
            # receives results in shard order as workers finish, so the
            # gradient sum for shard K-1 happens while shard K still runs.
            collector = _EpochShardCollector()
            if pooled:
                pool.run(engine, "train", tasks, collector=collector)
            else:
                for task in tasks:
                    collector.add(run_train_shard(engine, task))
            load_gradients(model.named_parameters(), collector.grads)
            loss_value = float(collector.loss)
            grad_norm = clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            history.losses.append(loss_value)
            history.grad_norms.append(grad_norm)
            history.epoch_seconds.append(time.perf_counter() - tick)
            peak = tracemalloc.get_traced_memory()[1] if track_memory else 0
            history.peak_memory_bytes.append(int(peak))
            if checkpoint_every is not None and (offset + 1) % checkpoint_every == 0:
                from .persistence import save_training_checkpoint

                save_training_checkpoint(
                    checkpoint_path, model, graph, config, capture_state(epoch + 1)
                )
            if verbose:
                memory = (
                    f"  peak={peak / 1e6:.1f}MB" if track_memory else ""
                )
                print(
                    f"[tgae] epoch {epoch + 1}/{total_epochs}  "
                    f"loss={loss_value:.4f}  grad_norm={grad_norm:.3f}  "
                    f"{history.epoch_seconds[-1]:.2f}s{memory}"
                )
    finally:
        # An epoch that raises must not leak training state: the model goes
        # back to eval mode, tracing we started stops, and a pool we created
        # is torn down (a caller-owned pool is returned untouched).
        model.eval()
        if started_tracing:
            tracemalloc.stop()
        if own_pool and pool is not None:
            pool.close()
    history.state = capture_state(total_epochs)
    return history
