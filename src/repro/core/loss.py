"""TGAE training objective (Eqs. 6-7).

The approximate mini-batch loss of Eq. 7:

    L = - (1 / n_s) * sum_{u^t in V_s}  A_{u^t} . log softmax(logits_{u^t})
        + kl_weight * KL( q(Z | X) || N(0, I) )

where ``A_{u^t}`` is the observed adjacency row of the centre node at its
timestamp.  The reconstruction term is a multi-target cross entropy: the
target distribution places equal mass on each observed out-neighbour.  The
non-probabilistic variant (Eq. 9) omits the KL term.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, kl_standard_normal, log_softmax
from ..errors import ShapeError
from .decoder import DecoderOutput


def reconstruction_loss(
    logits: Tensor,
    target_rows: Sequence[np.ndarray],
    scale: Optional[float] = None,
) -> Tensor:
    """Cross-entropy between decoded distributions and observed neighbour rows.

    Parameters
    ----------
    logits:
        ``(batch, num_nodes)`` decoder outputs.
    target_rows:
        Per-centre arrays of observed out-neighbour node ids (may contain
        repeats for multi-edges; repeats increase that neighbour's mass).
        Centres with no observed out-edge contribute nothing.
    scale:
        Explicit factor replacing the local ``1 / active`` normalisation.
        The sharded trainer passes ``1 / active_total`` (active centres of
        the *whole* epoch batch) so per-shard losses sum to the global
        Eq. 7 objective.  ``None`` keeps the per-call average.
    """
    batch, num_nodes = logits.shape
    if len(target_rows) != batch:
        raise ShapeError(f"{len(target_rows)} target rows for batch of {batch}")
    dense = np.zeros((batch, num_nodes), dtype=logits.data.dtype)
    active = 0
    for row_idx, neighbors in enumerate(target_rows):
        neigh = np.asarray(neighbors, dtype=np.int64).reshape(-1)
        if neigh.size == 0:
            continue
        np.add.at(dense[row_idx], neigh, 1.0)
        dense[row_idx] /= dense[row_idx].sum()
        active += 1
    if scale is None:
        scale = (1.0 / active) if active else None
    if scale is None or active == 0:
        return Tensor(np.zeros((), dtype=logits.data.dtype))
    logp = log_softmax(logits, axis=-1)
    per_center = -(logp * Tensor(dense)).sum(axis=-1)
    # Average over *active* centres (the 1/n_s of Eq. 7 with empty rows dropped).
    return per_center.sum() * scale


def tgae_loss(
    decoded: DecoderOutput,
    target_rows: Sequence[np.ndarray],
    kl_weight: float,
    candidates: Optional[np.ndarray] = None,
) -> Tensor:
    """Full Eq. 7 objective (or Eq. 9 when the decoder is non-probabilistic).

    When ``candidates`` is given, the decoder logits index into the
    per-centre candidate sets (sampled-softmax mode) and the targets are
    remapped onto candidate positions.
    """
    if candidates is None:
        loss = reconstruction_loss(decoded.logits, target_rows)
    else:
        loss = candidate_reconstruction_loss(decoded.logits, candidates, target_rows)
    if decoded.log_sigma is not None and kl_weight > 0:
        loss = loss + kl_weight * kl_standard_normal(decoded.mu, decoded.log_sigma)
    return loss


def tgae_shard_loss(
    decoded: DecoderOutput,
    target_rows: Sequence[np.ndarray],
    kl_weight: float,
    recon_scale: float,
    kl_scale: float,
    candidates: Optional[np.ndarray] = None,
) -> Tensor:
    """One shard's additive contribution to the Eq. 7 epoch objective.

    The data-parallel trainer splits an epoch batch into shards; because
    Eq. 7 is a sum of per-centre terms divided by global counts, handing
    every shard the *global* normalisers (``recon_scale = 1/active_total``,
    ``kl_scale = 1/batch_rows``) makes the shard losses -- and, by linearity,
    their gradients -- sum exactly to the single-batch objective.  With one
    shard covering the whole batch this reduces bitwise to
    :func:`tgae_loss`.
    """
    if candidates is None:
        loss = reconstruction_loss(decoded.logits, target_rows, scale=recon_scale)
    else:
        loss = candidate_reconstruction_loss(
            decoded.logits, candidates, target_rows, scale=recon_scale
        )
    if decoded.log_sigma is not None and kl_weight > 0:
        loss = loss + kl_weight * kl_standard_normal(
            decoded.mu, decoded.log_sigma, scale=kl_scale
        )
    return loss


def candidate_reconstruction_loss(
    logits: Tensor,
    candidates: np.ndarray,
    target_rows: Sequence[np.ndarray],
    scale: Optional[float] = None,
) -> Tensor:
    """Cross-entropy over per-centre candidate sets (sampled softmax).

    ``logits`` is ``(batch, C)`` aligned with ``candidates``; each target
    node id is mapped to its first position in the centre's candidate row
    (positives are guaranteed present by the sampler).  ``scale`` overrides
    the local ``1 / active`` normalisation exactly as in
    :func:`reconstruction_loss`.
    """
    batch, width = logits.shape
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.shape != (batch, width):
        raise ShapeError(
            f"candidates shape {candidates.shape} != logits shape {(batch, width)}"
        )
    if len(target_rows) != batch:
        raise ShapeError(f"{len(target_rows)} target rows for batch of {batch}")
    dense = np.zeros((batch, width), dtype=logits.data.dtype)
    active = 0
    for row_idx, neighbors in enumerate(target_rows):
        neigh = np.asarray(neighbors, dtype=np.int64).reshape(-1)
        if neigh.size == 0:
            continue
        row_candidates = candidates[row_idx]
        for target in neigh:
            positions = np.nonzero(row_candidates == target)[0]
            if positions.size:
                dense[row_idx, positions[0]] += 1.0
        total = dense[row_idx].sum()
        if total > 0:
            dense[row_idx] /= total
            active += 1
    if scale is None:
        scale = (1.0 / active) if active else None
    if scale is None or active == 0:
        return Tensor(np.zeros((), dtype=logits.data.dtype))
    logp = log_softmax(logits, axis=-1)
    per_center = -(logp * Tensor(dense)).sum(axis=-1)
    return per_center.sum() * scale


def adjacency_target_rows(
    src: np.ndarray,
    dst: np.ndarray,
    t: np.ndarray,
    centers: np.ndarray,
) -> List[np.ndarray]:
    """Observed out-neighbour rows ``A_{u^t}`` for a batch of centre nodes.

    Parameters
    ----------
    src, dst, t:
        Edge arrays of the observed graph.
    centers:
        ``(batch, 2)`` array of ``(node_id, timestamp)`` centres.

    Returns
    -------
    One array of out-neighbour ids per centre (empty when the centre emits
    no edge at its timestamp).
    """
    order = np.lexsort((dst, t, src))
    s_sorted, t_sorted, d_sorted = src[order], t[order], dst[order]
    keys = s_sorted * (int(t.max(initial=0)) + 2) + t_sorted
    rows: List[np.ndarray] = []
    base = int(t.max(initial=0)) + 2
    for i in range(centers.shape[0]):
        key = int(centers[i, 0]) * base + int(centers[i, 1])
        lo = np.searchsorted(keys, key, side="left")
        hi = np.searchsorted(keys, key, side="right")
        rows.append(d_sorted[lo:hi].copy())
    return rows
