"""Temporal comparison scores f_avg / f_med (Eq. 10 of the paper).

Given an observed temporal graph and a generated one, both are unrolled into
cumulative snapshots ``S_t`` and ``S'_t``; for every statistic ``f_m`` the
relative error ``| (f_m(S_t) - f_m(S'_t)) / f_m(S_t) |`` is computed per
timestamp and reduced by mean (Table V) or median (Table IV).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import GraphFormatError
from ..graph.snapshot import Snapshot, cumulative_snapshots
from ..graph.temporal_graph import TemporalGraph
from .statistics import STATISTIC_FUNCTIONS


def relative_error_series(
    observed: TemporalGraph,
    generated: TemporalGraph,
    statistic: Callable[[Snapshot], float],
    eps: float = 1e-12,
) -> np.ndarray:
    """Per-timestamp relative errors of one statistic between two graphs.

    Timestamps where the observed statistic is (numerically) zero are skipped
    -- the paper's ratio is undefined there and early empty snapshots would
    otherwise dominate the score.
    """
    if observed.num_timestamps != generated.num_timestamps:
        raise GraphFormatError(
            "observed and generated graphs must span the same number of "
            f"timestamps ({observed.num_timestamps} != {generated.num_timestamps})"
        )
    obs_snaps = cumulative_snapshots(observed)
    gen_snaps = cumulative_snapshots(generated)
    errors: List[float] = []
    for obs, gen in zip(obs_snaps, gen_snaps):
        reference = statistic(obs)
        if abs(reference) < eps:
            continue
        errors.append(abs((reference - statistic(gen)) / reference))
    return np.asarray(errors, dtype=np.float64)


def f_avg(
    observed: TemporalGraph,
    generated: TemporalGraph,
    statistic: Callable[[Snapshot], float],
) -> float:
    """Mean relative error across timestamps (Eq. 10, Table V)."""
    errors = relative_error_series(observed, generated, statistic)
    return float(errors.mean()) if errors.size else 0.0


def f_med(
    observed: TemporalGraph,
    generated: TemporalGraph,
    statistic: Callable[[Snapshot], float],
) -> float:
    """Median relative error across timestamps (Eq. 10, Table IV)."""
    errors = relative_error_series(observed, generated, statistic)
    return float(np.median(errors)) if errors.size else 0.0


def compare_graphs(
    observed: TemporalGraph,
    generated: TemporalGraph,
    statistics: Optional[Sequence[str]] = None,
    reduction: str = "mean",
) -> Dict[str, float]:
    """Score a generated graph on several statistics at once.

    Parameters
    ----------
    statistics:
        Names from :data:`~repro.metrics.statistics.STATISTIC_FUNCTIONS`;
        defaults to all seven Table III statistics.
    reduction:
        ``"mean"`` (f_avg) or ``"median"`` (f_med).
    """
    if reduction not in ("mean", "median"):
        raise ValueError(f"reduction must be 'mean' or 'median', got {reduction!r}")
    if observed.num_timestamps != generated.num_timestamps:
        raise GraphFormatError(
            "observed and generated graphs must span the same number of "
            f"timestamps ({observed.num_timestamps} != {generated.num_timestamps})"
        )
    names = list(statistics) if statistics is not None else list(STATISTIC_FUNCTIONS)
    unknown = [n for n in names if n not in STATISTIC_FUNCTIONS]
    if unknown:
        raise KeyError(f"unknown statistics: {unknown}")
    obs_snaps = cumulative_snapshots(observed)
    gen_snaps = cumulative_snapshots(generated)
    scores: Dict[str, float] = {}
    for name in names:
        fn = STATISTIC_FUNCTIONS[name]
        errors = []
        for obs, gen in zip(obs_snaps, gen_snaps):
            reference = fn(obs)
            if abs(reference) < 1e-12:
                continue
            errors.append(abs((reference - fn(gen)) / reference))
        if not errors:
            scores[name] = 0.0
        elif reduction == "mean":
            scores[name] = float(np.mean(errors))
        else:
            scores[name] = float(np.median(errors))
    return scores


def statistic_time_series(
    graph: TemporalGraph, statistics: Optional[Sequence[str]] = None
) -> Dict[str, np.ndarray]:
    """Per-timestamp values of each statistic on cumulative snapshots.

    This is the data behind Figure 5 (temporal tendency curves).
    """
    names = list(statistics) if statistics is not None else list(STATISTIC_FUNCTIONS)
    snaps = cumulative_snapshots(graph)
    return {
        name: np.asarray([STATISTIC_FUNCTIONS[name](s) for s in snaps], dtype=np.float64)
        for name in names
    }
