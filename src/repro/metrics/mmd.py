"""Total variation distance and Gaussian-TV Maximum Mean Discrepancy (Eq. 1).

The paper measures the distance between the observed and generated motif
distributions with an MMD whose kernel is a Gaussian applied to the total
variation distance between distribution samples:

    TV(p, q)      = 1/2 * sum_i |p_i - q_i|
    k(x, y)       = exp( -TV(x, y)^2 / (2 sigma^2) )
    MMD^2(P || Q) = E_{x,y~P}[k(x,y)] + E_{x,y~Q}[k(x,y)] - 2 E_{x~P,y~Q}[k(x,y)]

Samples are distribution vectors (e.g. per-timestamp motif distributions);
the degenerate single-sample case reduces to ``2 - 2 k(p, q)`` which is the
form used for whole-graph motif comparison in Table VI.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ShapeError


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance between two distribution vectors."""
    p = np.asarray(p, dtype=np.float64).reshape(-1)
    q = np.asarray(q, dtype=np.float64).reshape(-1)
    if p.shape != q.shape:
        raise ShapeError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    return float(0.5 * np.abs(p - q).sum())


def gaussian_tv_kernel(p: np.ndarray, q: np.ndarray, sigma: float = 1.0) -> float:
    """Gaussian kernel on the TV distance, ``k(p, q) = exp(-TV^2 / 2 sigma^2)``."""
    tv = total_variation(p, q)
    return float(np.exp(-(tv**2) / (2.0 * sigma**2)))


def mmd_squared(
    samples_p: Sequence[np.ndarray],
    samples_q: Sequence[np.ndarray],
    sigma: float = 1.0,
) -> float:
    """Squared MMD between two sets of distribution samples (Eq. 1).

    Uses the biased V-statistic estimator (including the diagonal), which is
    the convention of the GraphRNN evaluation suite the paper follows, and is
    clipped at zero to absorb floating-point noise.
    """
    ps = [np.asarray(p, dtype=np.float64).reshape(-1) for p in samples_p]
    qs = [np.asarray(q, dtype=np.float64).reshape(-1) for q in samples_q]
    if not ps or not qs:
        raise ShapeError("mmd_squared requires at least one sample on each side")

    def mean_kernel(xs: Sequence[np.ndarray], ys: Sequence[np.ndarray]) -> float:
        total = 0.0
        for x in xs:
            for y in ys:
                total += gaussian_tv_kernel(x, y, sigma)
        return total / (len(xs) * len(ys))

    value = mean_kernel(ps, ps) + mean_kernel(qs, qs) - 2.0 * mean_kernel(ps, qs)
    return float(max(value, 0.0))


def motif_mmd(p: np.ndarray, q: np.ndarray, sigma: float = 1.0) -> float:
    """Whole-graph motif-distribution MMD (single-sample case of Eq. 1)."""
    return mmd_squared([p], [q], sigma=sigma)
