"""Additional structural statistics beyond the paper's Table III.

Table III measures degree- and component-level structure; a downstream user
of a graph simulator typically also checks clustering, mixing, and
distributional distances.  This module adds those checks on the same
:class:`~repro.graph.snapshot.Snapshot` abstraction so they compose with the
``f_avg``/``f_med`` machinery of Eq. 10 (any ``Snapshot -> float`` function
can be passed to :func:`repro.metrics.relative_error_series`):

* global and average-local **clustering coefficients**;
* **degree assortativity** (Pearson correlation over edge endpoints);
* directed **reciprocity**;
* **density** of the simple undirected view;
* **Kolmogorov-Smirnov distance** between two degree distributions --
  a sharper distributional comparison than the scalar statistics.

All functions read the snapshot's *cached* undirected CSR adjacency (the
shared sparse provider), so computing the full statistic battery on one
snapshot symmetrises its edge list exactly once.
"""

from __future__ import annotations

import numpy as np

from ..graph.snapshot import Snapshot


def global_clustering(snapshot: Snapshot) -> float:
    """Transitivity: ``3 * triangles / wedges`` on the undirected view.

    Returns ``0.0`` when the snapshot has no wedges.
    """
    adj = snapshot.undirected_adjacency()
    if adj.nnz == 0:
        return 0.0
    degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
    wedges = float(np.sum(degrees * (degrees - 1) / 2.0))
    if wedges == 0.0:
        return 0.0
    a2 = adj @ adj
    triangles = float(a2.multiply(adj).sum() / 6.0)
    return 3.0 * triangles / wedges


def average_local_clustering(snapshot: Snapshot) -> float:
    """Mean of per-node clustering coefficients over nodes with degree >= 2."""
    adj = snapshot.undirected_adjacency()
    if adj.nnz == 0:
        return 0.0
    degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
    eligible = degrees >= 2
    if not np.any(eligible):
        return 0.0
    # Per-node triangle participation: diag(A^3) / 2.
    a2 = adj @ adj
    tri_per_node = np.asarray(a2.multiply(adj).sum(axis=1)).reshape(-1) / 2.0
    possible = degrees * (degrees - 1) / 2.0
    coeffs = np.zeros_like(tri_per_node)
    coeffs[eligible] = tri_per_node[eligible] / possible[eligible]
    return float(coeffs[eligible].mean())


def degree_assortativity(snapshot: Snapshot) -> float:
    """Pearson correlation of endpoint degrees over undirected edges.

    Positive when hubs attach to hubs.  Returns ``0.0`` for degenerate
    snapshots (no edges, or constant endpoint degrees).
    """
    adj = snapshot.undirected_adjacency()
    coo = adj.tocoo()
    if coo.nnz == 0:
        return 0.0
    degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
    x = degrees[coo.row].astype(np.float64)
    y = degrees[coo.col].astype(np.float64)
    if x.std() == 0.0 or y.std() == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def reciprocity(snapshot: Snapshot) -> float:
    """Fraction of directed edges whose reverse edge also exists.

    Self-loops are excluded; returns ``0.0`` for an edgeless snapshot.
    """
    adj = snapshot.adjacency().copy()
    adj.setdiag(0)
    adj.eliminate_zeros()
    if adj.nnz == 0:
        return 0.0
    mutual = adj.multiply(adj.T).nnz
    return float(mutual) / float(adj.nnz)


def density(snapshot: Snapshot) -> float:
    """Edge density of the simple undirected view: ``m / C(n_active, 2)``.

    ``n_active`` counts nodes touched by at least one edge, so growth-style
    graphs (where most of the universe is still silent at early timestamps)
    are not diluted.
    """
    adj = snapshot.undirected_adjacency()
    if adj.nnz == 0:
        return 0.0
    degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
    active = int(np.count_nonzero(degrees))
    if active < 2:
        return 0.0
    num_edges = adj.nnz / 2.0
    return float(num_edges / (active * (active - 1) / 2.0))


def degree_ks_distance(observed: Snapshot, generated: Snapshot) -> float:
    """Two-sample Kolmogorov-Smirnov distance between degree distributions.

    Compares the undirected degree sequences of the *active* nodes of each
    snapshot.  Returns a value in ``[0, 1]``; ``0`` for identical empirical
    distributions.  An empty-vs-empty comparison is ``0``; empty-vs-nonempty
    is ``1``.
    """
    deg_obs = _active_degree_sequence(observed)
    deg_gen = _active_degree_sequence(generated)
    if deg_obs.size == 0 and deg_gen.size == 0:
        return 0.0
    if deg_obs.size == 0 or deg_gen.size == 0:
        return 1.0
    support = np.unique(np.concatenate([deg_obs, deg_gen]))
    cdf_obs = np.searchsorted(np.sort(deg_obs), support, side="right") / deg_obs.size
    cdf_gen = np.searchsorted(np.sort(deg_gen), support, side="right") / deg_gen.size
    return float(np.abs(cdf_obs - cdf_gen).max())


def _active_degree_sequence(snapshot: Snapshot) -> np.ndarray:
    adj = snapshot.undirected_adjacency()
    if adj.nnz == 0:
        return np.empty(0, dtype=np.int64)
    degrees = np.asarray(adj.sum(axis=1)).reshape(-1).astype(np.int64)
    return degrees[degrees > 0]


#: Extended statistics in the same ``Snapshot -> float`` shape as Table III's
#: ``STATISTIC_FUNCTIONS`` so they plug into the Eq. 10 machinery.
EXTENDED_STATISTIC_FUNCTIONS = {
    "global_clustering": global_clustering,
    "avg_local_clustering": average_local_clustering,
    "assortativity": degree_assortativity,
    "reciprocity": reciprocity,
    "density": density,
}
