"""δ-temporal motif census (Paranjape, Benson & Leskovec, WSDM 2017).

A δ-temporal motif instance is an ordered triple of edges
``(e1, e2, e3)`` with strictly increasing order in the time-sorted edge
sequence, all three within a window of ``delta``, spanning at most three
distinct nodes.  Canonically relabelling nodes by first appearance yields
exactly **36** motif classes (all 2- and 3-node, 3-edge motifs), the
distribution the paper compares via MMD in Table VI.

The counter enumerates first edges in time order and prunes candidate
second/third edges through per-node incident-edge lists restricted to the
window, which is the standard practical strategy and is exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..graph.temporal_graph import TemporalGraph

Signature = Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]


def _canonical_signature(edges: List[Tuple[int, int]]) -> Signature:
    """Relabel nodes by first appearance (source before destination)."""
    labels: Dict[int, int] = {}
    out: List[Tuple[int, int]] = []
    for u, v in edges:
        if u not in labels:
            labels[u] = len(labels)
        if v not in labels:
            labels[v] = len(labels)
        out.append((labels[u], labels[v]))
    return (out[0], out[1], out[2])


def all_motif_signatures() -> List[Signature]:
    """The fixed support of all 36 canonical 3-edge, <=3-node motifs."""
    signatures: List[Signature] = []
    first = (0, 1)
    # Candidate ordered pairs over labels {0, 1, 2} without self-loops.
    pairs = [(a, b) for a in range(3) for b in range(3) if a != b]
    for second in pairs:
        for third in pairs:
            raw = [first, second, third]
            # Validity: relabelling by first appearance must reproduce the
            # labels (canonical form) and use at most 3 nodes.
            if _canonical_signature(raw) != (first, second, third):
                continue
            # Every edge after the first must share >=1 node with the union
            # of previous edges (<=3 nodes total guarantees this for edge 2;
            # edge 3 could otherwise be disconnected only with >3 nodes).
            union = {0, 1}
            if second[0] not in union and second[1] not in union:
                continue
            union.update(second)
            if third[0] not in union and third[1] not in union:
                continue
            signatures.append((first, second, third))
    return signatures


MOTIF_SIGNATURES: List[Signature] = all_motif_signatures()
MOTIF_INDEX: Dict[Signature, int] = {sig: i for i, sig in enumerate(MOTIF_SIGNATURES)}
NUM_MOTIFS: int = len(MOTIF_SIGNATURES)


def count_temporal_motifs(
    graph: TemporalGraph,
    delta: int,
    max_instances: Optional[int] = 2_000_000,
) -> np.ndarray:
    """Count instances of every motif class; returns a ``(36,)`` count vector.

    Parameters
    ----------
    graph:
        The temporal graph to census.
    delta:
        Time-window width: the three edges must satisfy
        ``t3 - t1 <= delta``.
    max_instances:
        Safety cap on the total number of counted instances; counting stops
        (with the partial census) once reached.  ``None`` disables the cap.
    """
    if delta < 0:
        raise ConfigError("delta must be non-negative")
    counts = np.zeros(NUM_MOTIFS, dtype=np.int64)
    # Self-loops are outside the motif definition (signatures have no (x, x)).
    graph = graph.without_self_loops()
    m = graph.num_edges
    if m < 3:
        return counts

    order = np.lexsort((graph.dst, graph.src, graph.t))
    src = graph.src[order]
    dst = graph.dst[order]
    times = graph.t[order]

    # Per-node list of incident edge positions (positions are time-ordered).
    incident: Dict[int, List[int]] = {}
    for pos in range(m):
        incident.setdefault(int(src[pos]), []).append(pos)
        if dst[pos] != src[pos]:
            incident.setdefault(int(dst[pos]), []).append(pos)
    incident_arr = {node: np.asarray(lst, dtype=np.int64) for node, lst in incident.items()}

    def window_candidates(nodes: Tuple[int, ...], lo_pos: int, hi_pos: int) -> np.ndarray:
        """Edge positions in (lo_pos, hi_pos) incident to any of ``nodes``."""
        chunks = []
        for node in nodes:
            arr = incident_arr.get(node)
            if arr is None:
                continue
            left = np.searchsorted(arr, lo_pos, side="right")
            right = np.searchsorted(arr, hi_pos, side="left")
            if right > left:
                chunks.append(arr[left:right])
        if not chunks:
            return np.array([], dtype=np.int64)
        return np.unique(np.concatenate(chunks))

    total = 0
    for i in range(m - 2):
        t1 = times[i]
        hi = int(np.searchsorted(times, t1 + delta, side="right"))
        if hi - i < 3:
            continue
        u1, v1 = int(src[i]), int(dst[i])
        for j in window_candidates((u1, v1), i, hi):
            u2, v2 = int(src[j]), int(dst[j])
            union = {u1, v1, u2, v2}
            if len(union) > 3:
                continue
            third_candidates = window_candidates(tuple(union), int(j), hi)
            for k in third_candidates:
                u3, v3 = int(src[k]), int(dst[k])
                full_union = union | {u3, v3}
                if len(full_union) > 3:
                    continue
                sig = _canonical_signature([(u1, v1), (u2, v2), (u3, v3)])
                counts[MOTIF_INDEX[sig]] += 1
                total += 1
                if max_instances is not None and total >= max_instances:
                    return counts
    return counts


def motif_distribution(
    graph: TemporalGraph, delta: int, max_instances: Optional[int] = 2_000_000
) -> np.ndarray:
    """Normalised motif distribution ``pi_p`` over the 36 classes.

    Returns the uniform distribution when the graph contains no motif
    instance, so downstream distance computations remain well-defined.
    """
    counts = count_temporal_motifs(graph, delta, max_instances=max_instances).astype(np.float64)
    total = counts.sum()
    if total == 0:
        return np.full(NUM_MOTIFS, 1.0 / NUM_MOTIFS)
    return counts / total
