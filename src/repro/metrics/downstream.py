"""Downstream-utility evaluation: is the synthetic graph *useful*?

The paper's introduction motivates graph simulation with data-sharing
scenarios ("tackling the inaccessibility of the whole real-life graphs"):
a consumer receives the synthetic graph instead of the private real one and
trains their analysis on it.  The practical test of a generator, beyond
statistic matching, is therefore **train-on-synthetic / test-on-real**: fit
a simple temporal link predictor on the generated graph, evaluate it on the
real graph's final snapshot, and compare against the same predictor trained
on the real graph's history.

The predictor is deliberately simple and training-free (scored heuristics
over the cumulative training snapshot), so the comparison isolates the
*data* quality rather than model tuning:

* ``common_neighbors`` -- count of shared partners;
* ``adamic_adar`` -- degree-discounted shared partners;
* ``preferential_attachment`` -- degree product.

:func:`downstream_link_prediction_auc` returns the ROC-AUC of predicting the
held-out last-timestamp edges against sampled non-edges.  The utility gap
``auc(real-trained) - auc(synthetic-trained)`` is the headline number: a
perfect generator has gap 0.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from ..errors import GraphFormatError
from ..graph.snapshot import snapshot_at
from ..graph.temporal_graph import TemporalGraph


def _training_adjacency(graph: TemporalGraph, holdout_t: int) -> sp.csr_matrix:
    """Undirected binary adjacency of everything strictly before ``holdout_t``."""
    mask = graph.t < holdout_t
    src, dst = graph.src[mask], graph.dst[mask]
    data = np.ones(src.size, dtype=np.float64)
    adj = sp.coo_matrix(
        (data, (src, dst)), shape=(graph.num_nodes, graph.num_nodes)
    ).tocsr()
    adj = adj.maximum(adj.T)
    adj.data = np.minimum(adj.data, 1.0)
    adj.setdiag(0)
    adj.eliminate_zeros()
    return adj


def score_pairs(
    adj: sp.csr_matrix,
    pairs: np.ndarray,
    scorer: str = "common_neighbors",
) -> np.ndarray:
    """Heuristic link scores for an ``(k, 2)`` array of node pairs."""
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise GraphFormatError(f"pairs must be (k, 2), got {pairs.shape}")
    degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
    if scorer == "common_neighbors":
        cn = adj[pairs[:, 0]].multiply(adj[pairs[:, 1]])
        return np.asarray(cn.sum(axis=1)).reshape(-1)
    if scorer == "adamic_adar":
        inv_log_deg = 1.0 / np.log(np.maximum(degrees, 2.0))
        weighted = adj.multiply(inv_log_deg[None, :]).tocsr()
        aa = adj[pairs[:, 0]].multiply(weighted[pairs[:, 1]])
        return np.asarray(aa.sum(axis=1)).reshape(-1)
    if scorer == "preferential_attachment":
        return degrees[pairs[:, 0]] * degrees[pairs[:, 1]]
    raise GraphFormatError(
        f"unknown scorer {scorer!r}; options: common_neighbors, adamic_adar, "
        f"preferential_attachment"
    )


def roc_auc(scores_pos: np.ndarray, scores_neg: np.ndarray) -> float:
    """Rank-based ROC-AUC (probability a positive outranks a negative).

    Ties contribute half, which is the Mann-Whitney convention.  Returns 0.5
    when either side is empty (no information).
    """
    pos = np.asarray(scores_pos, dtype=np.float64).reshape(-1)
    neg = np.asarray(scores_neg, dtype=np.float64).reshape(-1)
    if pos.size == 0 or neg.size == 0:
        return 0.5
    combined = np.concatenate([pos, neg])
    order = combined.argsort(kind="mergesort")
    ranks = np.empty_like(combined)
    # Average ranks for ties.
    sorted_vals = combined[order]
    rank_values = np.arange(1, combined.size + 1, dtype=np.float64)
    boundaries = np.concatenate(
        [[0], np.nonzero(np.diff(sorted_vals))[0] + 1, [combined.size]]
    )
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        rank_values[lo:hi] = rank_values[lo:hi].mean()
    ranks[order] = rank_values
    rank_sum_pos = ranks[: pos.size].sum()
    u_stat = rank_sum_pos - pos.size * (pos.size + 1) / 2.0
    return float(u_stat / (pos.size * neg.size))


def _holdout_positives(graph: TemporalGraph, holdout_t: int) -> np.ndarray:
    """Distinct undirected node pairs that gain an edge at ``holdout_t``."""
    snap = snapshot_at(graph, holdout_t)
    if snap.num_edges == 0:
        return np.empty((0, 2), dtype=np.int64)
    lo = np.minimum(snap.src, snap.dst)
    hi = np.maximum(snap.src, snap.dst)
    keep = lo != hi
    pairs = np.unique(np.stack([lo[keep], hi[keep]], axis=1), axis=0)
    return pairs


def _sample_negatives(
    num_nodes: int,
    forbidden: set,
    count: int,
    rng: np.random.Generator,
    max_tries: int = 100,
) -> np.ndarray:
    """Sample ``count`` distinct non-edge pairs not in ``forbidden``."""
    out = []
    seen = set()
    for _ in range(max_tries):
        cand = rng.integers(0, num_nodes, size=(count * 2, 2))
        for u, v in cand:
            if u == v:
                continue
            key = (min(int(u), int(v)), max(int(u), int(v)))
            if key in forbidden or key in seen:
                continue
            seen.add(key)
            out.append(key)
            if len(out) >= count:
                return np.array(out, dtype=np.int64)
    return (
        np.array(out, dtype=np.int64)
        if out
        else np.empty((0, 2), dtype=np.int64)
    )


def downstream_link_prediction_auc(
    train_graph: TemporalGraph,
    eval_graph: TemporalGraph,
    holdout_t: Optional[int] = None,
    scorer: str = "common_neighbors",
    negatives_per_positive: int = 1,
    seed: int = 0,
) -> float:
    """AUC of a heuristic link predictor trained on one graph, tested on another.

    Parameters
    ----------
    train_graph:
        Supplies the history (edges before ``holdout_t``) the predictor
        scores from -- pass the *synthetic* graph for the
        train-on-synthetic/test-on-real protocol, or the real graph for the
        oracle upper bound.
    eval_graph:
        Supplies the held-out positives: the (undirected, distinct) edges of
        its snapshot at ``holdout_t``.
    holdout_t:
        Timestamp to hold out; defaults to the last one.
    scorer:
        One of the heuristics of :func:`score_pairs`.
    negatives_per_positive:
        Negative sampling ratio.
    """
    if train_graph.num_nodes != eval_graph.num_nodes:
        raise GraphFormatError(
            f"train/eval graphs must share a node universe "
            f"({train_graph.num_nodes} vs {eval_graph.num_nodes})"
        )
    if holdout_t is None:
        holdout_t = eval_graph.num_timestamps - 1
    if not 0 < holdout_t < eval_graph.num_timestamps:
        raise GraphFormatError(
            f"holdout_t must be in (0, {eval_graph.num_timestamps}), got {holdout_t}"
        )
    rng = np.random.default_rng(seed)
    positives = _holdout_positives(eval_graph, holdout_t)
    if positives.size == 0:
        return 0.5
    adj = _training_adjacency(train_graph, holdout_t)
    known = set(
        (min(int(u), int(v)), max(int(u), int(v)))
        for u, v in zip(*adj.nonzero())
    )
    forbidden = known | set((int(a), int(b)) for a, b in positives)
    negatives = _sample_negatives(
        eval_graph.num_nodes,
        forbidden,
        positives.shape[0] * negatives_per_positive,
        rng,
    )
    if negatives.size == 0:
        return 0.5
    scores_pos = score_pairs(adj, positives, scorer=scorer)
    scores_neg = score_pairs(adj, negatives, scorer=scorer)
    return roc_auc(scores_pos, scores_neg)


def utility_report(
    observed: TemporalGraph,
    generated: TemporalGraph,
    holdout_t: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Train-on-real vs train-on-synthetic AUC for every scorer.

    Returns ``{scorer: {"real": auc, "synthetic": auc, "gap": real - synthetic}}``.
    """
    out: Dict[str, Dict[str, float]] = {}
    for scorer in ("common_neighbors", "adamic_adar", "preferential_attachment"):
        real = downstream_link_prediction_auc(
            observed, observed, holdout_t=holdout_t, scorer=scorer, seed=seed
        )
        synthetic = downstream_link_prediction_auc(
            generated, observed, holdout_t=holdout_t, scorer=scorer, seed=seed
        )
        out[scorer] = {
            "real": real,
            "synthetic": synthetic,
            "gap": real - synthetic,
        }
    return out
