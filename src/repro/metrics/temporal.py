"""Temporal-signature metrics beyond snapshot statistics.

These characterise the *time axis* of a temporal graph and are used to
verify that generated graphs preserve dynamics (not only per-snapshot
structure):

* inter-event time distribution and mean/median gaps per node pair;
* the burstiness coefficient of Goh & Barabási (2008);
* edge novelty rate (fraction of edges at time t never seen before t);
* timestamp entropy (how evenly activity spreads over the window);
* temporal correlation: average Jaccard overlap of consecutive snapshots'
  edge sets.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.temporal_graph import TemporalGraph


def inter_event_times(graph: TemporalGraph) -> np.ndarray:
    """Gaps between consecutive interactions of each (src, dst) pair.

    Pairs interacting once contribute nothing; a heavily bursty network
    yields many zero/small gaps and a long tail.
    """
    if graph.num_edges == 0:
        return np.array([], dtype=np.float64)
    order = np.lexsort((graph.t, graph.dst, graph.src))
    src, dst, t = graph.src[order], graph.dst[order], graph.t[order]
    same_pair = (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
    gaps = (t[1:] - t[:-1])[same_pair]
    return gaps.astype(np.float64)


def burstiness(graph: TemporalGraph) -> float:
    """Goh-Barabási burstiness ``B = (sigma - mu) / (sigma + mu)`` of
    inter-event times.

    ``B -> 1`` for extremely bursty processes, ``B = 0`` for Poisson,
    ``B -> -1`` for periodic.  Returns 0 when there are fewer than two
    repeated interactions (no signal).
    """
    gaps = inter_event_times(graph)
    if gaps.size < 2:
        return 0.0
    mu = float(gaps.mean())
    sigma = float(gaps.std())
    if sigma + mu == 0:
        return 0.0
    return (sigma - mu) / (sigma + mu)


def edge_novelty_rate(graph: TemporalGraph) -> np.ndarray:
    """Per-timestamp fraction of edges not seen at any earlier timestamp.

    Growing networks (citation) stay near 1; bursty contact networks decay
    quickly as pairs repeat.
    """
    seen: set = set()
    rates = np.zeros(graph.num_timestamps, dtype=np.float64)
    for timestamp, src, dst in graph.snapshots():
        if src.size == 0:
            rates[timestamp] = 0.0
            continue
        new = 0
        for u, v in zip(src.tolist(), dst.tolist()):
            if (u, v) not in seen:
                new += 1
                seen.add((u, v))
        rates[timestamp] = new / src.size
    return rates


def timestamp_entropy(graph: TemporalGraph, normalise: bool = True) -> float:
    """Shannon entropy of the edge-per-timestamp distribution.

    ``1.0`` (normalised) means activity is spread perfectly evenly over the
    window; near ``0`` means activity concentrates in few timestamps.
    """
    counts = np.bincount(graph.t, minlength=graph.num_timestamps).astype(np.float64)
    total = counts.sum()
    if total == 0 or graph.num_timestamps < 2:
        return 0.0
    p = counts / total
    p = p[p > 0]
    entropy = float(-(p * np.log(p)).sum())
    if normalise:
        entropy /= np.log(graph.num_timestamps)
    return entropy


def snapshot_jaccard_series(graph: TemporalGraph) -> np.ndarray:
    """Jaccard overlap of consecutive per-timestamp edge sets.

    High overlap = persistent relationships; low overlap = churning
    interactions.  Length is ``T - 1``.
    """
    previous: set = set()
    series = []
    first = True
    for _, src, dst in graph.snapshots():
        current = set(zip(src.tolist(), dst.tolist()))
        if not first:
            union = previous | current
            series.append(len(previous & current) / len(union) if union else 0.0)
        previous = current
        first = False
    return np.asarray(series, dtype=np.float64)


def temporal_correlation(graph: TemporalGraph) -> float:
    """Mean consecutive-snapshot Jaccard overlap (scalar summary)."""
    series = snapshot_jaccard_series(graph)
    return float(series.mean()) if series.size else 0.0


def temporal_signature(graph: TemporalGraph) -> Dict[str, float]:
    """All scalar temporal-signature metrics in one dictionary."""
    return {
        "burstiness": burstiness(graph),
        "timestamp_entropy": timestamp_entropy(graph),
        "temporal_correlation": temporal_correlation(graph),
        "mean_novelty": float(edge_novelty_rate(graph).mean()),
    }


def compare_temporal_signatures(
    observed: TemporalGraph, generated: TemporalGraph
) -> Dict[str, float]:
    """Absolute differences of the temporal-signature metrics."""
    obs = temporal_signature(observed)
    gen = temporal_signature(generated)
    return {name: abs(obs[name] - gen[name]) for name in obs}
