"""Temporal-motif significance profiles (z-scores against null ensembles).

Raw motif counts confound structure with density: a graph with more edges
has more of *every* motif.  Network science normalises this with the Milo
significance profile: count motifs on the observed graph and on an ensemble
of randomised null models, and report the per-motif z-score

    z_i = (count_i - mean_null_i) / std_null_i,

normalised to a unit vector so profiles of different-sized graphs compare.
For temporal graphs the natural null is the time-shuffle (keeps the static
multigraph, permutes timestamps), which zeroes out exactly the temporal
ordering the 36-class delta-motif census measures; degree-preserving
rewiring is offered for the structural axis.

A generator that reproduces the observed graph's *significance profile* --
not just its motif counts -- has captured which temporal orderings are
over- and under-represented relative to chance, a sharper claim than the
MMD of Table VI.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import GraphFormatError
from ..graph.temporal_graph import TemporalGraph
from ..graph.transforms import rewire_degree_preserving, shuffle_timestamps
from .motifs import count_temporal_motifs


def motif_significance_profile(
    graph: TemporalGraph,
    delta: int = 2,
    num_nulls: int = 20,
    null: str = "time_shuffle",
    seed: int = 0,
    max_instances: Optional[int] = 200_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-motif z-scores of the graph against a randomised null ensemble.

    Parameters
    ----------
    graph:
        The temporal graph to profile.
    delta:
        Motif time-window (same delta as the Table VI census).
    num_nulls:
        Ensemble size; 20 gives stable z-scores on the bench datasets.
    null:
        ``"time_shuffle"`` (temporal axis) or ``"rewire"`` (structural axis).
    seed:
        Ensemble RNG seed.
    max_instances:
        Passed through to the motif census to bound worst-case cost.

    Returns
    -------
    (z_scores, normalized_profile):
        ``z_scores`` has one entry per motif class (0 where the null has
        zero variance and the observed count matches it); the normalised
        profile is ``z / ||z||`` (zero vector when all z are 0).
    """
    if num_nulls < 2:
        raise GraphFormatError(f"num_nulls must be >= 2, got {num_nulls}")
    if null == "time_shuffle":
        make_null = lambda s: shuffle_timestamps(graph, seed=s)
    elif null == "rewire":
        make_null = lambda s: rewire_degree_preserving(graph, seed=s)
    else:
        raise GraphFormatError(
            f"unknown null {null!r}; options: time_shuffle, rewire"
        )
    observed = count_temporal_motifs(
        graph, delta, max_instances=max_instances
    ).astype(np.float64)
    rng = np.random.default_rng(seed)
    ensemble = np.stack(
        [
            count_temporal_motifs(
                make_null(int(rng.integers(0, 2**31 - 1))),
                delta,
                max_instances=max_instances,
            ).astype(np.float64)
            for _ in range(num_nulls)
        ]
    )
    mean = ensemble.mean(axis=0)
    std = ensemble.std(axis=0)
    z = np.zeros_like(observed)
    varying = std > 0
    z[varying] = (observed[varying] - mean[varying]) / std[varying]
    # Motifs the null never varies on but the graph over-represents get the
    # conservative cap +/- num_nulls (they are "infinitely" significant).
    frozen = ~varying & (observed != mean)
    z[frozen] = np.sign(observed[frozen] - mean[frozen]) * num_nulls
    norm = np.linalg.norm(z)
    profile = z / norm if norm > 0 else np.zeros_like(z)
    return z, profile


def significance_similarity(
    profile_a: np.ndarray, profile_b: np.ndarray
) -> float:
    """Cosine similarity of two normalised significance profiles.

    1.0 for identical over/under-representation patterns, 0.0 for unrelated,
    negative when one graph over-represents what the other suppresses.
    Zero-vector profiles (no significant motifs) compare as 0.0.
    """
    a = np.asarray(profile_a, dtype=np.float64).reshape(-1)
    b = np.asarray(profile_b, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise GraphFormatError(
            f"profiles must have equal length, got {a.size} vs {b.size}"
        )
    norm_a, norm_b = np.linalg.norm(a), np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))
