"""Spectral statistics for snapshot comparison.

Graph-generation papers since GraphRNN routinely complement count-based
statistics with spectral ones, because eigenvalue distributions summarise
global connectivity patterns that wedge/claw/triangle counts miss (community
structure, expansion, bipartiteness).  This module provides:

* the top-``k`` adjacency spectrum and the normalised-Laplacian spectrum of
  a snapshot (undirected simple view, as for Table III);
* the **spectral gap** (algebraic connectivity proxy);
* an **L1 spectral distance** between two snapshots' Laplacian spectra,
  usable as another ``f_avg``/``f_med`` comparison channel.

Dense eigendecompositions are avoided: spectra come from sparse Lanczos
(:func:`scipy.sparse.linalg.eigsh`) with a dense fallback for tiny or
ill-conditioned inputs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..graph.snapshot import Snapshot


def _symmetric_adjacency(snapshot: Snapshot) -> sp.csr_matrix:
    # The snapshot's cached undirected CSR is already float64; copy=False
    # keeps this a view of the shared provider rather than a rebuild.
    return snapshot.undirected_adjacency().astype(np.float64, copy=False)


def adjacency_spectrum(snapshot: Snapshot, k: int = 8) -> np.ndarray:
    """Largest-magnitude ``k`` adjacency eigenvalues, descending by value.

    Returns fewer than ``k`` values when the graph is smaller; an edgeless
    snapshot yields an empty array.
    """
    adj = _symmetric_adjacency(snapshot)
    if adj.nnz == 0:
        return np.empty(0, dtype=np.float64)
    n = adj.shape[0]
    k_eff = min(k, n - 1)
    if k_eff < 1:
        return np.empty(0, dtype=np.float64)
    if n <= 64 or k_eff >= n - 1:
        values = np.linalg.eigvalsh(adj.toarray())
    else:
        try:
            values = spla.eigsh(adj, k=k_eff, which="LM", return_eigenvectors=False)
        except (spla.ArpackNoConvergence, spla.ArpackError):
            values = np.linalg.eigvalsh(adj.toarray())
    values = np.sort(values)[::-1]
    return values[:k_eff]


def laplacian_spectrum(snapshot: Snapshot, k: int = 8) -> np.ndarray:
    """Smallest ``k`` eigenvalues of the symmetric normalised Laplacian.

    The normalised Laplacian ``L = I - D^{-1/2} A D^{-1/2}`` has spectrum in
    ``[0, 2]``; the multiplicity of eigenvalue 0 equals the number of
    connected components among active nodes.  Isolated (inactive) nodes are
    dropped first so the spectrum reflects the realised graph.
    """
    adj = _symmetric_adjacency(snapshot)
    if adj.nnz == 0:
        return np.empty(0, dtype=np.float64)
    degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
    active = degrees > 0
    adj = adj[active][:, active]
    degrees = degrees[active]
    d_inv_sqrt = 1.0 / np.sqrt(degrees)
    norm = adj.multiply(d_inv_sqrt[:, None]).multiply(d_inv_sqrt[None, :])
    lap = sp.identity(adj.shape[0], format="csr") - norm.tocsr()
    n = lap.shape[0]
    k_eff = min(k, n)
    if n <= 64 or k_eff >= n - 1:
        values = np.linalg.eigvalsh(lap.toarray())
    else:
        try:
            values = spla.eigsh(lap, k=k_eff, which="SM", return_eigenvectors=False)
        except (spla.ArpackNoConvergence, spla.ArpackError):
            values = np.linalg.eigvalsh(lap.toarray())
    values = np.clip(np.sort(values), 0.0, 2.0)
    return values[:k_eff]


def spectral_gap(snapshot: Snapshot) -> float:
    """Second-smallest normalised-Laplacian eigenvalue (Fiedler value).

    Zero when the active subgraph is disconnected; larger values indicate
    better expansion.  Edgeless or single-edge-pair snapshots return 0.0.
    """
    spectrum = laplacian_spectrum(snapshot, k=2)
    if spectrum.size < 2:
        return 0.0
    return float(spectrum[1])


def spectral_distance(observed: Snapshot, generated: Snapshot, k: int = 8) -> float:
    """Mean absolute difference of the two snapshots' Laplacian spectra.

    Spectra are truncated/padded (with the neutral value 1.0, the spectrum
    mean of a random graph) to a common length ``k``.  Returns 0.0 when both
    snapshots are edgeless.
    """
    spec_obs = laplacian_spectrum(observed, k=k)
    spec_gen = laplacian_spectrum(generated, k=k)
    if spec_obs.size == 0 and spec_gen.size == 0:
        return 0.0
    padded_obs = np.full(k, 1.0)
    padded_gen = np.full(k, 1.0)
    padded_obs[: min(k, spec_obs.size)] = spec_obs[:k]
    padded_gen[: min(k, spec_gen.size)] = spec_gen[:k]
    return float(np.abs(padded_obs - padded_gen).mean())
