"""Streaming O(E)-peak evaluation of the Eq. 10 comparison scores.

:func:`~repro.metrics.comparison.compare_graphs` materialises *every*
cumulative snapshot of both graphs up front -- ``sum_t E_t = O(T * E)``
edge arrays -- and then loops statistics over them, caching a sparse CSR
(and its symmetrised twin) per snapshot along the way.  Fine at paper
scale, but it is the last non-streaming stage of the
``fit -> generate -> evaluate`` pipeline: at n=100k the retained snapshot
and CSR caches dwarf everything the streaming engine and trainer were
built to avoid.

:func:`streaming_evaluate` computes the *same* scores one timestamp at a
time: a single transient :class:`~repro.graph.snapshot.Snapshot` pair is
alive at any moment, every Table III statistic reads its shared cached CSR
group-bys (no dense node x node array anywhere), and the per-statistic
error lists are reduced exactly as in ``compare_graphs``.  Peak memory is
O(E) -- the largest single snapshot plus its CSR -- instead of O(T * E),
and the returned scores are **bit-identical** to the dense path: the same
statistic values are computed on the same edge sets in the same order.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

import numpy as np

from ..errors import GraphFormatError
from ..graph.snapshot import Snapshot
from ..graph.temporal_graph import TemporalGraph
from .statistics import STATISTIC_FUNCTIONS
from .temporal import compare_temporal_signatures

__all__ = ["iter_cumulative_snapshots", "streaming_evaluate"]


def iter_cumulative_snapshots(graph: TemporalGraph) -> Iterator[Snapshot]:
    """Yield the cumulative snapshots ``S_0 .. S_{T-1}`` one at a time.

    The lazy twin of :func:`~repro.graph.snapshot.cumulative_snapshots`:
    identical snapshots (same stable time order, same edge selection per
    ``t``), but each one is yielded and can be dropped before the next is
    built, so a consumer that works timestamp-by-timestamp keeps one
    snapshot's edges and CSR caches alive instead of all ``T``.
    """
    order = np.argsort(graph.t, kind="stable")
    sorted_t = graph.t[order]
    cut = np.searchsorted(sorted_t, np.arange(graph.num_timestamps), side="right")
    for timestamp in range(graph.num_timestamps):
        sel = order[: cut[timestamp]]
        yield Snapshot(graph.num_nodes, graph.src[sel], graph.dst[sel])


def streaming_evaluate(
    observed: TemporalGraph,
    generated: TemporalGraph,
    statistics: Optional[Sequence[str]] = None,
    reduction: str = "mean",
    include_temporal: bool = False,
) -> Dict[str, float]:
    """Eq. 10 comparison scores at O(E) peak memory.

    Drop-in replacement for :func:`~repro.metrics.comparison.compare_graphs`
    returning bit-identical scores: per timestamp one transient snapshot
    pair is built, all requested statistics are evaluated on its shared
    cached CSR, relative errors accumulate into per-statistic lists (the
    paper's rule of skipping timestamps where the observed statistic is
    numerically zero included), and the lists reduce by mean (f_avg) or
    median (f_med) at the end.

    Parameters
    ----------
    statistics:
        Names from :data:`~repro.metrics.statistics.STATISTIC_FUNCTIONS`;
        defaults to all seven Table III statistics.
    reduction:
        ``"mean"`` (f_avg) or ``"median"`` (f_med).
    include_temporal:
        Also merge the temporal-signature deltas
        (:func:`~repro.metrics.temporal.compare_temporal_signatures` --
        already O(E): they read the raw edge arrays, never snapshots) into
        the result under ``"temporal:<name>"`` keys.
    """
    if reduction not in ("mean", "median"):
        raise ValueError(f"reduction must be 'mean' or 'median', got {reduction!r}")
    if observed.num_timestamps != generated.num_timestamps:
        raise GraphFormatError(
            "observed and generated graphs must span the same number of "
            f"timestamps ({observed.num_timestamps} != {generated.num_timestamps})"
        )
    names = list(statistics) if statistics is not None else list(STATISTIC_FUNCTIONS)
    unknown = [n for n in names if n not in STATISTIC_FUNCTIONS]
    if unknown:
        raise KeyError(f"unknown statistics: {unknown}")
    errors: Dict[str, list] = {name: [] for name in names}
    pairs = zip(
        iter_cumulative_snapshots(observed), iter_cumulative_snapshots(generated)
    )
    for obs, gen in pairs:
        for name in names:
            fn = STATISTIC_FUNCTIONS[name]
            reference = fn(obs)
            if abs(reference) < 1e-12:
                continue
            errors[name].append(abs((reference - fn(gen)) / reference))
        # obs/gen (and their cached CSRs) die here -- peak stays O(E).
    scores: Dict[str, float] = {}
    for name in names:
        series = errors[name]
        if not series:
            scores[name] = 0.0
        elif reduction == "mean":
            scores[name] = float(np.mean(series))
        else:
            scores[name] = float(np.median(series))
    if include_temporal:
        deltas = compare_temporal_signatures(observed, generated)
        scores.update({f"temporal:{name}": value for name, value in deltas.items()})
    return scores
