"""Degree-distribution comparison metrics (GraphRNN-style extensions).

Beyond the scalar statistics of Table III, temporal-graph papers commonly
compare *degree distributions* with an MMD (GraphRNN [37], followed by
TagGen and TIGGER).  These utilities extend the evaluation suite with:

* histogram-based degree distributions per snapshot;
* the Gaussian-TV MMD between the degree distributions of two graphs
  (whole-graph and per-timestamp variants);
* a temporal-tendency summary measuring how a statistic's *growth curve*
  differs between observed and generated graphs.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..graph.snapshot import Snapshot, cumulative_snapshots
from ..graph.temporal_graph import TemporalGraph
from .mmd import mmd_squared
from .statistics import STATISTIC_FUNCTIONS


def degree_histogram(snapshot: Snapshot, max_degree: int = 0) -> np.ndarray:
    """Normalised undirected-degree histogram of a snapshot.

    Parameters
    ----------
    max_degree:
        Histogram support; ``0`` sizes it to the observed maximum.  Pass a
        common value when comparing two graphs.
    """
    degrees = snapshot.degrees().astype(np.int64)
    degrees = degrees[degrees > 0]
    if degrees.size == 0:
        size = max(max_degree, 1) + 1
        return np.full(size, 1.0 / size)
    top = max(int(degrees.max()), max_degree)
    hist = np.bincount(degrees, minlength=top + 1).astype(np.float64)
    return hist / hist.sum()


def degree_mmd(observed: TemporalGraph, generated: TemporalGraph, sigma: float = 1.0) -> float:
    """MMD between per-timestamp degree distributions of two graphs.

    Each cumulative snapshot contributes one distribution sample, so the
    statistic reflects the *evolution* of the degree structure, not just the
    final state.
    """
    obs_snaps = cumulative_snapshots(observed)
    gen_snaps = cumulative_snapshots(generated)
    top = 0
    for snap in obs_snaps + gen_snaps:
        degrees = snap.degrees()
        if degrees.size:
            top = max(top, int(degrees.max()))
    obs_hists = [degree_histogram(s, max_degree=top) for s in obs_snaps]
    gen_hists = [degree_histogram(s, max_degree=top) for s in gen_snaps]
    return mmd_squared(obs_hists, gen_hists, sigma=sigma)


def final_degree_mmd(observed: TemporalGraph, generated: TemporalGraph, sigma: float = 1.0) -> float:
    """MMD between the final-snapshot degree distributions only."""
    obs = cumulative_snapshots(observed)[-1]
    gen = cumulative_snapshots(generated)[-1]
    top = 0
    for snap in (obs, gen):
        degrees = snap.degrees()
        if degrees.size:
            top = max(top, int(degrees.max()))
    return mmd_squared(
        [degree_histogram(obs, max_degree=top)],
        [degree_histogram(gen, max_degree=top)],
        sigma=sigma,
    )


def temporal_tendency_error(
    observed: TemporalGraph,
    generated: TemporalGraph,
    statistic: str = "wedge_count",
) -> float:
    """Mean absolute log-space deviation of a statistic's growth curve.

    The scalar behind Figure 5: how far (in log units, averaged over
    timestamps) the generated graph's cumulative-statistic curve sits from
    the observed one.
    """
    if statistic not in STATISTIC_FUNCTIONS:
        raise KeyError(f"unknown statistic {statistic!r}")
    fn: Callable[[Snapshot], float] = STATISTIC_FUNCTIONS[statistic]
    obs_series = np.asarray([fn(s) for s in cumulative_snapshots(observed)])
    gen_series = np.asarray([fn(s) for s in cumulative_snapshots(generated)])

    def safe_log(x: np.ndarray) -> np.ndarray:
        out = np.zeros_like(x, dtype=np.float64)
        positive = x > 0
        out[positive] = np.log(x[positive])
        return out

    return float(np.mean(np.abs(safe_log(obs_series) - safe_log(gen_series))))


def tendency_report(
    observed: TemporalGraph, generated: TemporalGraph
) -> Dict[str, float]:
    """Temporal-tendency error for every Table III statistic."""
    return {
        name: temporal_tendency_error(observed, generated, name)
        for name in STATISTIC_FUNCTIONS
    }
