"""Graph statistics of Table III.

Seven statistics measured on (cumulative) snapshots: mean degree, claw count,
wedge count, triangle count, size of the largest connected component, the
power-law exponent of the degree distribution, and the number of connected
components.  All are computed on the undirected simple view of the snapshot,
as is standard for these structural measures.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from ..graph.snapshot import Snapshot


def mean_degree(snapshot: Snapshot) -> float:
    """Average undirected degree over active nodes (``E[d(v)]``)."""
    degrees = _active_degrees(snapshot)
    return float(degrees.mean()) if degrees.size else 0.0


def wedge_count(snapshot: Snapshot) -> float:
    """Number of wedges (paths of length 2): ``sum_v C(d(v), 2)``."""
    degrees = _active_degrees(snapshot)
    return float(np.sum(degrees * (degrees - 1) / 2.0))


def claw_count(snapshot: Snapshot) -> float:
    """Number of claws (stars with 3 leaves): ``sum_v C(d(v), 3)``."""
    degrees = _active_degrees(snapshot).astype(np.float64)
    return float(np.sum(degrees * (degrees - 1) * (degrees - 2) / 6.0))


def triangle_count(snapshot: Snapshot) -> float:
    """Number of triangles: ``trace(A^3) / 6`` on the undirected adjacency."""
    adj = snapshot.undirected_adjacency()
    if adj.nnz == 0:
        return 0.0
    # trace(A^3) = sum of elementwise product of A^2 and A -- avoids forming A^3.
    a2 = adj @ adj
    return float(a2.multiply(adj).sum() / 6.0)


def largest_connected_component(snapshot: Snapshot) -> float:
    """Size (node count) of the largest weakly connected component."""
    sizes = _component_sizes(snapshot)
    return float(sizes.max()) if sizes.size else 0.0


def num_components(snapshot: Snapshot) -> float:
    """Number of connected components among active nodes."""
    sizes = _component_sizes(snapshot)
    return float(sizes.size)


def power_law_exponent(snapshot: Snapshot) -> float:
    """Maximum-likelihood power-law exponent (Table III):

    ``PLE = 1 + n * ( sum_v log(d(v) / d_min) )^{-1}``

    computed over active nodes, with ``d_min`` the minimum positive degree.
    Returns 0 for degenerate (regular) degree sequences where the sum of logs
    vanishes.
    """
    degrees = _active_degrees(snapshot)
    degrees = degrees[degrees > 0]
    if degrees.size == 0:
        return 0.0
    d_min = degrees.min()
    log_sum = float(np.sum(np.log(degrees / d_min)))
    if log_sum <= 0.0:
        return 0.0
    return 1.0 + degrees.size / log_sum


def _active_degrees(snapshot: Snapshot) -> np.ndarray:
    """Undirected degrees restricted to nodes with at least one edge."""
    if snapshot.num_edges == 0:
        return np.array([], dtype=np.float64)
    degrees = snapshot.degrees()
    return degrees[degrees > 0]


def _component_sizes(snapshot: Snapshot) -> np.ndarray:
    if snapshot.num_edges == 0:
        return np.array([], dtype=np.int64)
    active = snapshot.active_nodes()
    adj = snapshot.undirected_adjacency()[active][:, active]
    n_comp, labels = connected_components(sp.csr_matrix(adj), directed=False)
    return np.bincount(labels, minlength=n_comp)


# Registry in the order the paper's tables report them.
STATISTIC_FUNCTIONS: Dict[str, Callable[[Snapshot], float]] = {
    "mean_degree": mean_degree,
    "lcc": largest_connected_component,
    "wedge_count": wedge_count,
    "claw_count": claw_count,
    "triangle_count": triangle_count,
    "ple": power_law_exponent,
    "n_components": num_components,
}

STATISTIC_LABELS: Dict[str, str] = {
    "mean_degree": "Mean Degree",
    "lcc": "LCC",
    "wedge_count": "Wedge Count",
    "claw_count": "Claw Count",
    "triangle_count": "Triangle Count",
    "ple": "PLE",
    "n_components": "N-Components",
}


def compute_all_statistics(snapshot: Snapshot) -> Dict[str, float]:
    """Evaluate every Table III statistic on one snapshot."""
    return {name: fn(snapshot) for name, fn in STATISTIC_FUNCTIONS.items()}


def statistic_names() -> List[str]:
    """Canonical metric order used by the benchmark tables."""
    return list(STATISTIC_FUNCTIONS)
