"""Deterministic fault injection for the parallel execution stack.

Production code cannot be trusted to survive worker crashes, stragglers,
shared-memory failures or mid-fit kills unless those faults can be *caused
on demand* -- deterministically, so a recovery bug reproduces on every run
instead of once a month in production.  This module is that switchboard:
a process-global registry of :class:`FaultRule` objects, armed either
programmatically (the :func:`inject` context manager, used by the nemesis
suite in ``tests/test_failure_injection.py``) or through the
``REPRO_FAULTS`` environment variable (used by the CI nemesis job, and
re-parsed on import so ``spawn``-started workers see the same rules).

Instrumented production code calls :func:`check` at named *sites*; when no
rule is armed the call is a single global-flag read, cheap enough to live
on hot paths (gated at <= 1.05x by ``benchmarks/bench_fault_overhead.py``).

Sites currently instrumented
----------------------------

``"shard"``
    Every chunk/shard execution, in whichever process/thread runs it
    (``index`` = the task's shard index, ``attempt`` = the dispatch
    attempt, 0 for the first).  The home of worker-crash, straggler-delay
    and transient-``OSError`` injection.
``"dispatch"``
    The parent-side entry of each :class:`~repro.core.parallel.WorkerPool`
    dispatch rung (shm / pickle / thread).  Raising here (e.g. a pickling
    failure) exercises the degradation ladder one rung at a time.
``"shm-create"`` / ``"shm-attach"``
    Shared-memory segment allocation (writer side) and attachment
    (reader side) -- simulated allocation / attach failures.
``"epoch"``
    The top of every :func:`~repro.core.trainer.train_tgae` epoch
    (``index`` = the lineage epoch number).  Raising
    :class:`~repro.errors.FaultInjected` here simulates a mid-fit kill
    for the crash-safe-checkpoint tests.

Determinism
-----------

A rule fires when its ``site`` matches and its optional ``index`` /
``attempt`` filters match; ``times`` bounds how often it fires *within one
process*.  Matching on ``attempt`` is what makes crash injection
exactly-once under retries even across forked workers (whose rule copies
keep independent counters): a rule pinned to ``attempt=0`` can never
re-fire on the re-dispatched shard, because the pool re-dispatches at
``attempt=1``.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Type

from .errors import ConfigError, FaultInjected

__all__ = [
    "FaultRule",
    "active",
    "check",
    "clear",
    "fired",
    "inject",
    "install",
    "load_env",
]

#: Actions a rule can take when it fires.
ACTIONS = ("raise", "delay", "crash")

#: Exception types addressable from ``REPRO_FAULTS`` spec strings.
_EXC_BY_NAME: Dict[str, Type[BaseException]] = {
    "OSError": OSError,
    "FileNotFoundError": FileNotFoundError,
    "MemoryError": MemoryError,
    "PicklingError": pickle.PicklingError,
    "FaultInjected": FaultInjected,
}

#: Exit status of a ``crash``-action worker, distinctive in core dumps/logs.
CRASH_EXIT_CODE = 70


@dataclass
class FaultRule:
    """One armed fault: where it triggers, what it does, how often.

    ``index`` / ``attempt`` of ``None`` match anything; ``times`` of
    ``None`` never disarms.  Counters (``fired``) are per-process: a rule
    inherited by a forked worker counts its own firings.
    """

    site: str
    action: str = "raise"
    exc: Type[BaseException] = OSError
    message: str = "injected fault"
    index: Optional[int] = None
    attempt: Optional[int] = None
    times: Optional[int] = 1
    delay: float = 0.0
    #: How many times this rule has fired in this process.
    fired: int = 0
    #: PID of the process that armed the rule; ``crash`` only kills *other*
    #: processes (forked/spawned workers) -- in the arming process it raises
    #: instead, so a misconfigured rule can never take down the test runner.
    armed_pid: int = field(default_factory=os.getpid)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigError(
                f"fault action must be one of {ACTIONS}, got {self.action!r}"
            )

    def matches(self, site: str, index: Optional[int], attempt: Optional[int]) -> bool:
        """Whether this rule applies to a :func:`check` at the given site."""
        if self.site != site:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.index is not None and index != self.index:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True

    def trigger(self) -> None:
        """Execute the rule's action (raise / sleep / kill this process)."""
        self.fired += 1
        if self.action == "delay":
            time.sleep(self.delay)
            return
        if self.action == "crash" and os.getpid() != self.armed_pid:
            os._exit(CRASH_EXIT_CODE)
        # "raise", or "crash" evaluated in the arming process itself.
        raise self.exc(f"{self.message} [site={self.site} fired={self.fired}]")


_RULES: List[FaultRule] = []
_LOCK = threading.Lock()
#: Fast-path flag: ``check`` returns immediately while this is ``False``.
_ARMED = False


def active() -> bool:
    """Whether any fault rule is currently armed in this process."""
    return _ARMED


def install(rule: FaultRule) -> FaultRule:
    """Arm ``rule`` in this process's registry; returns it for inspection."""
    global _ARMED
    with _LOCK:
        _RULES.append(rule)
        _ARMED = True
    return rule


def clear() -> None:
    """Disarm every rule (including env-installed ones)."""
    global _ARMED
    with _LOCK:
        _RULES.clear()
        _ARMED = False


def fired(site: str) -> int:
    """Total firings recorded against ``site`` in this process."""
    with _LOCK:
        return sum(rule.fired for rule in _RULES if rule.site == site)


@contextmanager
def inject(
    site: str,
    action: str = "raise",
    exc: Type[BaseException] = OSError,
    message: str = "injected fault",
    index: Optional[int] = None,
    attempt: Optional[int] = None,
    times: Optional[int] = 1,
    delay: float = 0.0,
) -> Iterator[FaultRule]:
    """Arm one fault rule for the duration of a ``with`` block.

    Yields the live :class:`FaultRule` so tests can assert on
    ``rule.fired``.  Rules are process-local; a pool forked *inside* the
    block inherits the rule (with its own counter).
    """
    rule = install(
        FaultRule(
            site=site,
            action=action,
            exc=exc,
            message=message,
            index=index,
            attempt=attempt,
            times=times,
            delay=delay,
        )
    )
    try:
        yield rule
    finally:
        global _ARMED
        with _LOCK:
            if rule in _RULES:
                _RULES.remove(rule)
            _ARMED = bool(_RULES)


def check(site: str, index: Optional[int] = None, attempt: Optional[int] = None) -> None:
    """Fire the first armed rule matching this site; no-op when disarmed.

    The disarmed path is one module-global read -- cheap enough for
    per-shard call sites (benchmark-gated).
    """
    if not _ARMED:
        return
    with _LOCK:
        rule = next(
            (r for r in _RULES if r.matches(site, index, attempt)), None
        )
    if rule is not None:
        rule.trigger()


def _parse_rule(spec: str) -> FaultRule:
    """Parse one ``site:action[:key=value]...`` rule of a ``REPRO_FAULTS`` spec."""
    parts = [part.strip() for part in spec.split(":") if part.strip()]
    if not parts:
        raise ConfigError(f"empty fault rule in REPRO_FAULTS spec {spec!r}")
    site = parts[0]
    action = parts[1] if len(parts) > 1 else "raise"
    kwargs: Dict[str, object] = {}
    for item in parts[2:]:
        if "=" not in item:
            raise ConfigError(
                f"fault rule option {item!r} must be key=value (rule {spec!r})"
            )
        key, value = item.split("=", 1)
        if key in ("index", "attempt", "times"):
            kwargs[key] = None if value == "none" else int(value)
        elif key == "delay":
            kwargs[key] = float(value)
        elif key == "exc":
            if value not in _EXC_BY_NAME:
                known = ", ".join(sorted(_EXC_BY_NAME))
                raise ConfigError(
                    f"unknown fault exception {value!r}; known: {known}"
                )
            kwargs[key] = _EXC_BY_NAME[value]
        elif key == "message":
            kwargs[key] = value
        else:
            raise ConfigError(f"unknown fault rule option {key!r} (rule {spec!r})")
    return FaultRule(site=site, action=action, **kwargs)


def load_env(value: Optional[str] = None) -> int:
    """Install rules from a ``REPRO_FAULTS`` spec; returns how many.

    The spec is ``;``-separated rules of ``site:action[:key=value]...``,
    e.g. ``"shard:raise:exc=OSError:index=1:times=1;dispatch:delay:delay=0.1"``.
    The bare enablement values ``1`` / ``on`` / ``true`` arm the layer
    without installing rules -- the CI nemesis job uses this to exercise
    the armed-but-quiet ``check`` path while tests drive :func:`inject`.
    """
    spec = value if value is not None else os.environ.get("REPRO_FAULTS", "")
    spec = spec.strip()
    if not spec:
        return 0
    if spec.lower() in ("1", "on", "true"):
        global _ARMED
        _ARMED = True
        return 0
    count = 0
    for part in spec.split(";"):
        part = part.strip()
        if part:
            install(_parse_rule(part))
            count += 1
    return count


# Spawn-started workers import this module fresh: re-parsing the env var
# here is what propagates CI-armed faults across every start method.
load_env()
