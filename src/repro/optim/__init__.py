"""Optimizers and learning-rate schedules for the repro substrate."""

from .adam import Adam
from .clip import clip_grad_norm
from .scheduler import ConstantLR, ExponentialDecayLR, StepLR
from .sgd import SGD

__all__ = ["SGD", "Adam", "clip_grad_norm", "ConstantLR", "StepLR", "ExponentialDecayLR"]
