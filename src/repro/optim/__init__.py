"""Optimizers, learning-rate schedules, and gradient plumbing for the repro substrate."""

from .accumulate import load_gradients, merge_gradient_shards
from .adam import Adam
from .base import Optimizer
from .clip import clip_grad_norm
from .scheduler import ConstantLR, ExponentialDecayLR, StepLR
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "merge_gradient_shards",
    "load_gradients",
    "ConstantLR",
    "StepLR",
    "ExponentialDecayLR",
]
