"""Gradient clipping utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients to ``max_norm``.

    Returns the pre-clipping norm, which callers may log to monitor training
    stability.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
