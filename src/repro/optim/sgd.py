"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .base import Optimizer


class SGD(Optimizer):
    """Classic SGD: ``p -= lr * (grad + wd * p)`` with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, vel in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                update = vel
            else:
                update = grad
            param.data = param.data - self.lr * update
