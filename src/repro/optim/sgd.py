"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from .base import Optimizer, ParameterLike


class SGD(Optimizer):
    """Classic SGD: ``p -= lr * (grad + wd * p)`` with optional momentum.

    The momentum velocity is name-keyed so it checkpoints through
    ``state_dict()`` / ``load_state_dict()`` like Adam's moments.
    """

    def __init__(
        self,
        parameters: Iterable[ParameterLike],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = {name: np.zeros_like(p.data) for name, p in self.named_parameters()}

    def _state_slots(self) -> Dict[str, Dict[str, np.ndarray]]:
        return {"velocity": self._velocity}

    def step(self) -> None:
        self.step_count += 1
        for name, param in self.named_parameters():
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity[name]
                vel *= self.momentum
                vel += grad
                update = vel
            else:
                update = grad
            param.data = param.data - self.lr * update
