"""Adam optimizer (Kingma & Ba, 2015) -- the workhorse for all learning-based models."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..errors import ConfigError
from .base import Optimizer, ParameterLike


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates.

    The first/second moments are name-keyed (see :class:`Optimizer`), so
    ``state_dict()`` / ``load_state_dict()`` round-trip them together with
    the step count -- warm-starting a resumed run reproduces the exact
    update sequence of an uninterrupted one.
    """

    def __init__(
        self,
        parameters: Iterable[ParameterLike],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ConfigError(f"betas must lie in [0,1), got {betas}")
        self.betas = (float(betas[0]), float(betas[1]))
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = {name: np.zeros_like(p.data) for name, p in self.named_parameters()}
        self._v = {name: np.zeros_like(p.data) for name, p in self.named_parameters()}

    def _state_slots(self) -> Dict[str, Dict[str, np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def step(self) -> None:
        self.step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self.step_count
        bias2 = 1.0 - beta2**self.step_count
        for name, param in self.named_parameters():
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m[name]
            v = self._v[name]
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
