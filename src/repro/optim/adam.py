"""Adam optimizer (Kingma & Ba, 2015) -- the workhorse for all learning-based models."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..errors import ConfigError
from ..nn.module import Parameter
from .base import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ConfigError(f"betas must lie in [0,1), got {betas}")
        self.betas = (float(betas[0]), float(betas[1]))
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._t
        bias2 = 1.0 - beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
