"""Deterministic merging of per-shard gradients (data-parallel training).

The sharded trainer runs forward+backward per shard and merges the
resulting gradient dictionaries into the live model before one optimiser
step.  Merging is a plain sum in *shard order*: because the shard
partitioning never depends on the worker count, the floating-point
accumulation order -- and therefore every Adam step -- is bit-identical no
matter how many workers computed the shards, or on which backend.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from ..nn.module import Parameter

__all__ = ["merge_gradient_shards", "load_gradients"]


def merge_gradient_shards(
    shard_grads: Sequence[Mapping[str, np.ndarray]],
) -> Dict[str, np.ndarray]:
    """Sum per-shard ``{param_name: grad}`` maps in the given (shard) order.

    A parameter missing from every shard (it never entered a shard's loss)
    stays missing from the result, mirroring the ``grad is None`` state a
    single-batch backward would leave.
    """
    merged: Dict[str, np.ndarray] = {}
    for grads in shard_grads:
        for name, grad in grads.items():
            if name in merged:
                merged[name] = merged[name] + grad
            else:
                merged[name] = grad.copy()
    return merged


def load_gradients(
    named_parameters: Iterable[Tuple[str, Parameter]],
    grads: Mapping[str, np.ndarray],
) -> None:
    """Install merged gradients onto the live parameters.

    Parameters absent from ``grads`` get ``grad = None`` (the optimiser
    skips them), exactly as after an in-process backward pass.
    """
    for name, param in named_parameters:
        grad = grads.get(name)
        if grad is not None and grad.shape != param.data.shape:
            raise ValueError(
                f"gradient for {name!r} has shape {grad.shape}, "
                f"expected {param.data.shape}"
            )
        param.grad = grad
