"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from ..errors import ConfigError
from ..nn.module import Parameter


class Optimizer:
    """Holds parameters and applies gradient updates.

    Subclasses implement :meth:`step`; :meth:`zero_grad` and learning-rate
    handling are shared.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
