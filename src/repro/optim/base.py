"""Optimizer base class with name-keyed, checkpointable state."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple, Union

import numpy as np

from ..errors import ConfigError
from ..nn.module import Parameter

ParameterLike = Union[Parameter, Tuple[str, Parameter]]


class Optimizer:
    """Holds parameters and applies gradient updates.

    Accepts either a plain iterable of :class:`Parameter` (legacy call
    sites, e.g. ``Adam(model.parameters(), ...)``) or an iterable of
    ``(name, parameter)`` pairs (``Adam(model.named_parameters(), ...)``).
    Named construction is what makes :meth:`state_dict` /
    :meth:`load_state_dict` round-trip across processes and checkpoints:
    per-parameter state (moments, velocities, ...) is keyed by the dotted
    parameter name, not by list position, so a reloaded model with the same
    architecture restores the exact slot for every tensor.  Positional
    construction falls back to synthetic ``param.{i}`` names, which are
    stable only for an identical construction order.

    Subclasses implement :meth:`step` and register their per-parameter
    state slots via :meth:`_state_slots`; :meth:`zero_grad`, learning-rate
    handling and state (de)serialisation are shared.
    """

    def __init__(self, parameters: Iterable[ParameterLike], lr: float) -> None:
        entries = list(parameters)
        if entries and isinstance(entries[0], tuple):
            self.param_names: List[str] = [str(name) for name, _ in entries]
            self.parameters: List[Parameter] = [param for _, param in entries]
        else:
            self.parameters = list(entries)
            self.param_names = [f"param.{i}" for i in range(len(self.parameters))]
        if not self.parameters:
            raise ConfigError("optimizer received no parameters")
        if len(set(self.param_names)) != len(self.param_names):
            raise ConfigError("optimizer received duplicate parameter names")
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.step_count = 0

    def named_parameters(self) -> Iterable[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs in registration order."""
        return zip(self.param_names, self.parameters)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one gradient update (subclass responsibility)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointable state
    # ------------------------------------------------------------------
    def _state_slots(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Per-parameter state arrays as ``{slot: {param_name: array}}``.

        Subclasses override to expose their internal buffers (e.g. Adam's
        first/second moments).  The returned arrays must be the *live*
        buffers: :meth:`load_state_dict` restores into them in place so the
        aliases held by :meth:`step` implementations stay valid.
        """
        return {}

    def state_dict(self) -> Dict[str, Any]:
        """Name-keyed snapshot of the optimizer state.

        Returns ``{"step": int, "slots": {slot: {param_name: array}}}`` with
        copied arrays, safe to mutate or persist.
        """
        return {
            "step": int(self.step_count),
            "slots": {
                slot: {name: array.copy() for name, array in per_param.items()}
                for slot, per_param in self._state_slots().items()
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (strict names/shapes).

        Arrays are cast to the dtype of the live buffers (mirroring
        ``Module.load_state_dict``'s param-dtype-wins policy) and copied in
        place.
        """
        slots = self._state_slots()
        stored_slots = state.get("slots", {})
        if set(stored_slots) != set(slots):
            raise ConfigError(
                f"optimizer state slots {sorted(stored_slots)} do not match "
                f"expected {sorted(slots)}"
            )
        for slot, per_param in slots.items():
            stored = stored_slots[slot]
            if set(stored) != set(per_param):
                missing = sorted(set(per_param) - set(stored))
                extra = sorted(set(stored) - set(per_param))
                raise ConfigError(
                    f"optimizer state for slot {slot!r} does not match the managed "
                    f"parameters (missing {missing}, unexpected {extra})"
                )
            for name, buffer in per_param.items():
                value = np.asarray(stored[name], dtype=buffer.dtype)
                if value.shape != buffer.shape:
                    raise ConfigError(
                        f"optimizer state {slot}:{name} has shape {value.shape}, "
                        f"expected {buffer.shape}"
                    )
                buffer[...] = value
        self.step_count = int(state["step"])
