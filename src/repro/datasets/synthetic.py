"""Synthetic temporal-network generators.

The paper evaluates on seven public temporal networks (Table II).  Those
datasets cannot be downloaded in this offline environment, so each is
replaced by a deterministic synthetic stand-in whose generator mimics the
qualitative character of the original network family:

* **citation growth** (DBLP) -- nodes arrive over time, edges attach
  preferentially to high-degree earlier nodes;
* **bursty communication** (EMAIL, MSG) -- a heavy-tailed activity profile
  over a community structure, with temporally bursty repeated contacts;
* **trust / rating networks** (BITCOIN-A, BITCOIN-O) -- growing membership
  with preferential rating of established members;
* **Q&A interaction** (MATH, UBUNTU) -- a small core of heavy answerers
  interacting with a long tail of askers.

Every generator takes an explicit seed, emits a
:class:`~repro.graph.temporal_graph.TemporalGraph`, and respects the exact
requested ``(num_nodes, num_edges, num_timestamps)`` so dataset statistics
line up with the registry specs.
"""

from __future__ import annotations


import numpy as np

from ..errors import ConfigError
from ..graph.temporal_graph import TemporalGraph


def _check_sizes(num_nodes: int, num_edges: int, num_timestamps: int) -> None:
    if num_nodes < 2:
        raise ConfigError("need at least 2 nodes")
    if num_edges < 1:
        raise ConfigError("need at least 1 edge")
    if num_timestamps < 1:
        raise ConfigError("need at least 1 timestamp")


def _finalize(
    num_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    t: np.ndarray,
    num_timestamps: int,
) -> TemporalGraph:
    t = np.clip(t, 0, num_timestamps - 1)
    # Remove accidental self-loops by redirecting to a neighbour id.
    loops = src == dst
    dst = np.where(loops, (dst + 1) % num_nodes, dst)
    return TemporalGraph(num_nodes, src, dst, t, num_timestamps=num_timestamps)


def citation_network(
    num_nodes: int,
    num_edges: int,
    num_timestamps: int,
    seed: int = 0,
    out_degree_concentration: float = 1.0,
) -> TemporalGraph:
    """Growing citation-style network (DBLP stand-in).

    Nodes "appear" at a timestamp proportional to their id; each new edge is
    emitted by a recently-appeared node and attaches preferentially (degree +
    1 weighting) to nodes that appeared earlier, producing the familiar
    power-law in-degree and densifying snapshots of citation graphs.
    """
    _check_sizes(num_nodes, num_edges, num_timestamps)
    rng = np.random.default_rng(seed)
    arrival = np.sort(rng.integers(0, num_timestamps, size=num_nodes))
    arrival[0] = 0
    degree = np.ones(num_nodes, dtype=np.float64)
    src = np.empty(num_edges, dtype=np.int64)
    dst = np.empty(num_edges, dtype=np.int64)
    t = np.empty(num_edges, dtype=np.int64)
    # Pre-draw edge timestamps with density increasing over time (growth).
    weights = np.arange(1, num_timestamps + 1, dtype=np.float64)
    edge_times = np.sort(rng.choice(num_timestamps, size=num_edges, p=weights / weights.sum()))
    for i in range(num_edges):
        timestamp = int(edge_times[i])
        # Citing node: among nodes that have appeared, biased to recent ones.
        appeared = int(np.searchsorted(arrival, timestamp, side="right"))
        appeared = max(appeared, 2)
        lo = max(0, int(appeared * (1.0 - 1.0 / (1.0 + out_degree_concentration))))
        citing = int(rng.integers(lo, appeared))
        # Cited node: preferential attachment among appeared nodes.
        probs = degree[:appeared] / degree[:appeared].sum()
        cited = int(rng.choice(appeared, p=probs))
        if cited == citing:
            cited = (cited + 1) % appeared
        src[i] = citing
        dst[i] = cited
        t[i] = timestamp
        degree[cited] += 1.0
        degree[citing] += 0.25
    return _finalize(num_nodes, src, dst, t, num_timestamps)


def communication_network(
    num_nodes: int,
    num_edges: int,
    num_timestamps: int,
    seed: int = 0,
    num_communities: int = 12,
    burstiness: float = 0.6,
    activity_exponent: float = 1.6,
) -> TemporalGraph:
    """Bursty message/email network (EMAIL and MSG stand-in).

    Senders are drawn from a Zipf-like activity distribution; recipients are
    mostly within the sender's community.  A fraction ``burstiness`` of the
    messages repeat a recent contact at a nearby timestamp, reproducing the
    temporal burstiness (and hence the temporal-motif richness) of real
    communication logs.
    """
    _check_sizes(num_nodes, num_edges, num_timestamps)
    rng = np.random.default_rng(seed)
    community = rng.integers(0, num_communities, size=num_nodes)
    activity = (np.arange(1, num_nodes + 1, dtype=np.float64)) ** (-activity_exponent)
    rng.shuffle(activity)
    activity /= activity.sum()

    members = [np.where(community == c)[0] for c in range(num_communities)]
    src = np.empty(num_edges, dtype=np.int64)
    dst = np.empty(num_edges, dtype=np.int64)
    t = np.empty(num_edges, dtype=np.int64)
    recent: list = []
    for i in range(num_edges):
        if recent and rng.random() < burstiness:
            # Burst: repeat a recent contact with a small time offset.
            s, d, base_t = recent[int(rng.integers(0, len(recent)))]
            if rng.random() < 0.4:
                s, d = d, s  # replies
            timestamp = int(np.clip(base_t + rng.integers(0, 3), 0, num_timestamps - 1))
        else:
            s = int(rng.choice(num_nodes, p=activity))
            own = members[community[s]]
            if own.size > 1 and rng.random() < 0.8:
                d = int(own[rng.integers(0, own.size)])
            else:
                d = int(rng.integers(0, num_nodes))
            if d == s:
                d = (d + 1) % num_nodes
            timestamp = int(rng.integers(0, num_timestamps))
        src[i], dst[i], t[i] = s, d, timestamp
        recent.append((s, d, timestamp))
        if len(recent) > 64:
            recent.pop(0)
    return _finalize(num_nodes, src, dst, t, num_timestamps)


def trust_network(
    num_nodes: int,
    num_edges: int,
    num_timestamps: int,
    seed: int = 0,
    reciprocation: float = 0.25,
) -> TemporalGraph:
    """Who-trusts-whom rating network (BITCOIN-A / BITCOIN-O stand-in).

    Members join over time; raters preferentially rate members that already
    accumulated ratings (trust concentrates), and a fraction of ratings are
    reciprocated shortly after, as observed on the Bitcoin OTC/Alpha
    platforms.
    """
    _check_sizes(num_nodes, num_edges, num_timestamps)
    rng = np.random.default_rng(seed)
    arrival = np.sort(rng.integers(0, num_timestamps, size=num_nodes))
    arrival[:2] = 0
    received = np.ones(num_nodes, dtype=np.float64)
    src_list, dst_list, t_list = [], [], []
    edge_times = np.sort(rng.integers(0, num_timestamps, size=num_edges))
    i = 0
    while len(src_list) < num_edges:
        timestamp = int(edge_times[min(i, num_edges - 1)])
        i += 1
        appeared = max(int(np.searchsorted(arrival, timestamp, side="right")), 2)
        rater = int(rng.integers(0, appeared))
        probs = received[:appeared] / received[:appeared].sum()
        ratee = int(rng.choice(appeared, p=probs))
        if ratee == rater:
            ratee = (ratee + 1) % appeared
        src_list.append(rater)
        dst_list.append(ratee)
        t_list.append(timestamp)
        received[ratee] += 1.0
        if len(src_list) < num_edges and rng.random() < reciprocation:
            back_t = int(np.clip(timestamp + rng.integers(0, 2), 0, num_timestamps - 1))
            src_list.append(ratee)
            dst_list.append(rater)
            t_list.append(back_t)
            received[rater] += 1.0
    return _finalize(
        num_nodes,
        np.asarray(src_list[:num_edges]),
        np.asarray(dst_list[:num_edges]),
        np.asarray(t_list[:num_edges]),
        num_timestamps,
    )


def qa_network(
    num_nodes: int,
    num_edges: int,
    num_timestamps: int,
    seed: int = 0,
    core_fraction: float = 0.05,
) -> TemporalGraph:
    """Stack-exchange interaction network (MATH / UBUNTU stand-in).

    A small core (``core_fraction``) of expert users answers a long tail of
    askers: edges point from the answerer to the asker, concentrating
    out-degree in the core while in-degree stays thin -- the signature shape
    of Q&A interaction networks.
    """
    _check_sizes(num_nodes, num_edges, num_timestamps)
    rng = np.random.default_rng(seed)
    core_size = max(int(num_nodes * core_fraction), 2)
    core_activity = rng.pareto(1.2, size=core_size) + 1.0
    core_activity /= core_activity.sum()
    asker_weights = rng.pareto(2.5, size=num_nodes) + 1.0
    asker_weights /= asker_weights.sum()
    src = rng.choice(core_size, size=num_edges, p=core_activity).astype(np.int64)
    dst = rng.choice(num_nodes, size=num_edges, p=asker_weights).astype(np.int64)
    # Activity ramps up over the observation window (site growth).
    weights = np.sqrt(np.arange(1, num_timestamps + 1, dtype=np.float64))
    t = rng.choice(num_timestamps, size=num_edges, p=weights / weights.sum()).astype(np.int64)
    collision = src == dst
    dst[collision] = (dst[collision] + core_size) % num_nodes
    return _finalize(num_nodes, src, dst, np.sort(t), num_timestamps)


def erdos_renyi_temporal(
    num_nodes: int,
    num_edges: int,
    num_timestamps: int,
    seed: int = 0,
) -> TemporalGraph:
    """Uniform random temporal graph (used by tests and the scalability grid)."""
    _check_sizes(num_nodes, num_edges, num_timestamps)
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    t = rng.integers(0, num_timestamps, size=num_edges)
    return _finalize(num_nodes, src, dst, t, num_timestamps)


def make_synthetic(
    kind: str,
    num_nodes: int,
    num_edges: int,
    num_timestamps: int,
    seed: int = 0,
    **kwargs,
) -> TemporalGraph:
    """Dispatch to a generator by family name."""
    generators = {
        "citation": citation_network,
        "communication": communication_network,
        "trust": trust_network,
        "qa": qa_network,
        "uniform": erdos_renyi_temporal,
    }
    if kind not in generators:
        raise ConfigError(f"unknown synthetic kind {kind!r}; options: {sorted(generators)}")
    return generators[kind](num_nodes, num_edges, num_timestamps, seed=seed, **kwargs)
