"""Dataset registry mirroring Table II of the paper.

Each of the seven evaluation networks is described by a
:class:`DatasetSpec` carrying the paper's full-scale statistics and the
synthetic family used as its offline stand-in.  :func:`load_dataset` builds
the graph at one of three scales:

* ``"paper"``  -- the exact Table II sizes (slow on CPU; use for final runs);
* ``"medium"`` -- ~1/4 linear scale;
* ``"small"``  -- benchmark/CI scale, finishes in seconds.

Scaling preserves the edge/node ratio and timestamp count character so the
relative comparisons the paper makes remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import DatasetError
from ..graph.temporal_graph import TemporalGraph
from .synthetic import make_synthetic


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one evaluation dataset (a Table II row)."""

    name: str
    kind: str
    num_nodes: int
    num_edges: int
    num_timestamps: int
    seed: int

    def scaled(self, factor: float, max_timestamps: int) -> "DatasetSpec":
        """Shrink the spec by ``factor`` while keeping its character."""
        return DatasetSpec(
            name=self.name,
            kind=self.kind,
            num_nodes=max(int(self.num_nodes * factor), 30),
            num_edges=max(int(self.num_edges * factor), 120),
            num_timestamps=max(min(self.num_timestamps, max_timestamps), 4),
            seed=self.seed,
        )


# Table II of the paper, verbatim sizes.
DATASETS: Dict[str, DatasetSpec] = {
    "DBLP": DatasetSpec("DBLP", "citation", 1_909, 8_237, 15, seed=11),
    "EMAIL": DatasetSpec("EMAIL", "communication", 986, 332_334, 805, seed=13),
    "MSG": DatasetSpec("MSG", "communication", 1_899, 20_296, 195, seed=17),
    "BITCOIN-A": DatasetSpec("BITCOIN-A", "trust", 3_783, 24_186, 1_902, seed=19),
    "BITCOIN-O": DatasetSpec("BITCOIN-O", "trust", 5_881, 35_592, 1_904, seed=23),
    "MATH": DatasetSpec("MATH", "qa", 24_818, 506_550, 79, seed=29),
    "UBUNTU": DatasetSpec("UBUNTU", "qa", 159_316, 964_437, 88, seed=31),
}

_SCALES: Dict[str, tuple] = {
    # name -> (linear factor, timestamp cap)
    "paper": (1.0, 10_000),
    "medium": (0.25, 60),
    "small": (0.05, 16),
}


def available_datasets() -> List[str]:
    """Names of the seven Table II datasets."""
    return list(DATASETS)


def get_spec(name: str, scale: str = "small") -> DatasetSpec:
    """Resolve a dataset spec at the requested scale."""
    key = name.upper()
    if key not in DATASETS:
        raise DatasetError(f"unknown dataset {name!r}; options: {available_datasets()}")
    if scale not in _SCALES:
        raise DatasetError(f"unknown scale {scale!r}; options: {sorted(_SCALES)}")
    factor, t_cap = _SCALES[scale]
    spec = DATASETS[key]
    if scale == "paper":
        return spec
    return spec.scaled(factor, t_cap)


def load_dataset(name: str, scale: str = "small") -> TemporalGraph:
    """Materialise a dataset stand-in as a :class:`TemporalGraph`."""
    spec = get_spec(name, scale)
    return make_synthetic(
        spec.kind,
        spec.num_nodes,
        spec.num_edges,
        spec.num_timestamps,
        seed=spec.seed,
    )


def dataset_statistics(graph: TemporalGraph) -> Dict[str, int]:
    """The Table II row (nodes / edges / timestamps) for a graph."""
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "timestamps": graph.num_timestamps,
    }
