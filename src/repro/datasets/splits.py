"""Temporal train/test splitting utilities.

Evaluation protocols for temporal graph models hold out *future* edges
(prefix split along time) or a random edge subset (edge holdout).  The
downstream-utility metric builds its own holdout internally; these helpers
expose the same splits to users running their own protocols.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import GraphFormatError
from ..graph.temporal_graph import TemporalGraph


def temporal_split(
    graph: TemporalGraph, train_fraction: float = 0.8
) -> Tuple[TemporalGraph, TemporalGraph]:
    """Split along time: the first ``ceil(T * fraction)`` snapshots train.

    Both halves keep the full node universe and the original ``T`` (the test
    half simply has no edges before the boundary), so statistics computed on
    either half remain comparable.
    """
    if not 0.0 < train_fraction < 1.0:
        raise GraphFormatError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    boundary = int(np.ceil(graph.num_timestamps * train_fraction))
    boundary = min(max(boundary, 1), graph.num_timestamps - 1)
    train_mask = graph.t < boundary
    train = TemporalGraph(
        graph.num_nodes,
        graph.src[train_mask],
        graph.dst[train_mask],
        graph.t[train_mask],
        num_timestamps=graph.num_timestamps,
        validate=False,
    )
    test = TemporalGraph(
        graph.num_nodes,
        graph.src[~train_mask],
        graph.dst[~train_mask],
        graph.t[~train_mask],
        num_timestamps=graph.num_timestamps,
        validate=False,
    )
    return train, test


def edge_holdout(
    graph: TemporalGraph,
    holdout_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> Tuple[TemporalGraph, TemporalGraph]:
    """Uniform random edge holdout (timestamps untouched).

    Returns ``(train, heldout)`` over the same node universe and ``T``; the
    two edge sets partition the original's.
    """
    if not 0.0 < holdout_fraction < 1.0:
        raise GraphFormatError(
            f"holdout_fraction must be in (0, 1), got {holdout_fraction}"
        )
    if graph.num_edges < 2:
        raise GraphFormatError("need at least 2 edges to split")
    rng = np.random.default_rng(seed)
    count = int(round(graph.num_edges * holdout_fraction))
    count = min(max(count, 1), graph.num_edges - 1)
    held = np.zeros(graph.num_edges, dtype=bool)
    held[rng.choice(graph.num_edges, size=count, replace=False)] = True

    def _subset(mask: np.ndarray) -> TemporalGraph:
        return TemporalGraph(
            graph.num_nodes,
            graph.src[mask],
            graph.dst[mask],
            graph.t[mask],
            num_timestamps=graph.num_timestamps,
            validate=False,
        )

    return _subset(~held), _subset(held)
