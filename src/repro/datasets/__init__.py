"""Datasets: synthetic stand-ins for Table II plus the Figure 6 scalability grid."""

from .registry import (
    DATASETS,
    DatasetSpec,
    available_datasets,
    dataset_statistics,
    get_spec,
    load_dataset,
)
from .scalability import (
    ScalabilityPoint,
    density_scale_sweep,
    make_scalability_graph,
    node_scale_sweep,
    timestamp_scale_sweep,
)
from .splits import edge_holdout, temporal_split
from .synthetic import (
    citation_network,
    communication_network,
    erdos_renyi_temporal,
    make_synthetic,
    qa_network,
    trust_network,
)

__all__ = [
    "temporal_split",
    "edge_holdout",
    "DatasetSpec",
    "DATASETS",
    "available_datasets",
    "get_spec",
    "load_dataset",
    "dataset_statistics",
    "citation_network",
    "communication_network",
    "trust_network",
    "qa_network",
    "erdos_renyi_temporal",
    "make_synthetic",
    "ScalabilityPoint",
    "make_scalability_graph",
    "node_scale_sweep",
    "timestamp_scale_sweep",
    "density_scale_sweep",
]
