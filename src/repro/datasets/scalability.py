"""Scalability-test workloads for Figure 6.

The paper's scalability study sweeps synthetic graphs labelled
``nodes * timestamps * density`` (e.g. ``1k*10*0.01``): three independent
axes starting from a base configuration of 1000 nodes, 10 timestamps, and
edge density 0.01 (so ``m = density * n^2`` temporal edges spread over the
window).  This module reproduces that grid, with a configurable base scale
so CPU benchmark runs stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigError
from ..graph.temporal_graph import TemporalGraph
from .synthetic import erdos_renyi_temporal


@dataclass(frozen=True)
class ScalabilityPoint:
    """One grid point of the Figure 6 sweep."""

    num_nodes: int
    num_timestamps: int
    density: float
    seed: int = 7

    @property
    def num_edges(self) -> int:
        return max(int(self.density * self.num_nodes * self.num_nodes), 1)

    @property
    def label(self) -> str:
        """The paper's axis label, e.g. ``1k*10*0.01``."""
        n = self.num_nodes
        n_label = f"{n // 1000}k" if n % 1000 == 0 and n >= 1000 else str(n)
        return f"{n_label}*{self.num_timestamps}*{self.density:g}"


def make_scalability_graph(point: ScalabilityPoint) -> TemporalGraph:
    """Materialise one grid point as a uniform random temporal graph."""
    return erdos_renyi_temporal(
        point.num_nodes, point.num_edges, point.num_timestamps, seed=point.seed
    )


def node_scale_sweep(base_nodes: int = 1000, steps: int = 5) -> List[ScalabilityPoint]:
    """First Figure 6 column: nodes in ``{1x..5x} * base``, T=10, density 0.01."""
    _check(base_nodes, steps)
    return [
        ScalabilityPoint(base_nodes * (i + 1), 10, 0.01) for i in range(steps)
    ]


def timestamp_scale_sweep(base_nodes: int = 1000, steps: int = 5) -> List[ScalabilityPoint]:
    """Second Figure 6 column: T in ``{10..50}``, n=base, density 0.01."""
    _check(base_nodes, steps)
    return [
        ScalabilityPoint(base_nodes, 10 * (i + 1), 0.01) for i in range(steps)
    ]


def density_scale_sweep(base_nodes: int = 1000, steps: int = 5) -> List[ScalabilityPoint]:
    """Third Figure 6 column: density in ``{0.01..0.05}``, n=base, T=10."""
    _check(base_nodes, steps)
    return [
        ScalabilityPoint(base_nodes, 10, 0.01 * (i + 1)) for i in range(steps)
    ]


def _check(base_nodes: int, steps: int) -> None:
    if base_nodes < 10:
        raise ConfigError("base_nodes must be at least 10")
    if steps < 1:
        raise ConfigError("steps must be positive")
