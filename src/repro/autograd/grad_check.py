"""Finite-difference gradient checking utilities.

Used by the test-suite (including hypothesis property tests) to certify that
every primitive and composite operation in the autograd substrate computes
exact gradients.  Mirrors ``torch.autograd.gradcheck`` in spirit.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Estimate d(sum(fn(*inputs))) / d(inputs[wrt]) by central differences."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients for every grad-enabled input.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    ``True`` on success so it can be used directly inside ``assert``.
    """
    for inp in inputs:
        inp.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, inp in enumerate(inputs):
        if not inp.requires_grad:
            continue
        analytic = inp.grad if inp.grad is not None else np.zeros_like(inp.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs err {worst:.3e}\n"
                f"analytic={analytic}\nnumeric={numeric}"
            )
    return True
