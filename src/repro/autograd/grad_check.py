"""Finite-difference gradient checking utilities.

Used by the test-suite (including hypothesis property tests) to certify that
every primitive and composite operation in the autograd substrate computes
exact gradients.  Mirrors ``torch.autograd.gradcheck`` in spirit.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def _float64_leaves(inputs: Sequence[Tensor]) -> list:
    """Float64 leaf copies of ``inputs`` preserving ``requires_grad`` flags.

    Gradient checking is numerically meaningless at float32: the central
    difference with ``eps=1e-6`` vanishes below single precision.  Both the
    analytic and numeric passes therefore always run at float64, regardless
    of the session dtype policy -- a float32-policy gradcheck still verifies
    at float64 tolerances.
    """
    return [
        Tensor(
            np.asarray(inp.data, dtype=np.float64).copy(),
            requires_grad=inp.requires_grad,
        )
        for inp in inputs
    ]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Estimate d(sum(fn(*inputs))) / d(inputs[wrt]) by central differences.

    Always differentiates at float64 (see :func:`_float64_leaves`).
    """
    inputs = _float64_leaves(inputs)
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients for every grad-enabled input.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    ``True`` on success so it can be used directly inside ``assert``.

    Both passes run on float64 leaf copies of ``inputs`` whatever their
    dtype, so the check is equally strict under a float32 session policy.
    """
    inputs = _float64_leaves(inputs)
    for inp in inputs:
        inp.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, inp in enumerate(inputs):
        if not inp.requires_grad:
            continue
        analytic = inp.grad if inp.grad is not None else np.zeros_like(inp.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs err {worst:.3e}\n"
                f"analytic={analytic}\nnumeric={numeric}"
            )
    return True
