"""A NumPy-backed reverse-mode automatic differentiation engine.

The paper's reference implementation relies on PyTorch; this environment has
no deep-learning framework available, so the repro package ships its own
minimal-yet-complete autograd substrate.  The design follows the classic
dynamic-graph ("define by run") approach:

* :class:`Tensor` wraps a ``numpy.ndarray`` together with an optional
  gradient buffer and a back-pointer to the operation that produced it.
* Every primitive operation records a closure computing the vector-Jacobian
  product for each differentiable input.
* :meth:`Tensor.backward` topologically sorts the recorded graph and
  accumulates gradients.

Only the operations required by the TGAE model family and the learning-based
baselines are implemented, but each is implemented fully (broadcasting,
gather/scatter for graph message passing, numerically stable reductions) and
is validated against finite differences by the property-based test-suite.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import GradientError, ShapeError

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_DEFAULT_DTYPE = np.float64


class _GradMode(threading.local):
    """Thread-local flag controlling whether operations record gradients."""

    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


class _DtypeAudit(threading.local):
    """Thread-local sink recording the dtype of every Tensor created."""

    def __init__(self) -> None:
        self.active: Optional[set] = None


_dtype_audit = _DtypeAudit()


@contextlib.contextmanager
def dtype_audit():
    """Record the dtype of every :class:`Tensor` created inside the block.

    Yields a set that accumulates ``numpy.dtype`` objects.  Used by the
    no-float64-on-production-path smoke: running ``fit -> generate`` under a
    ``float32`` policy inside this context and asserting ``np.float64`` never
    appears proves no kernel silently upcast.  Auditing is thread-local, so
    concurrent sessions do not pollute each other's records.
    """
    previous = _dtype_audit.active
    seen: set = set()
    _dtype_audit.active = seen
    try:
        yield seen
    finally:
        _dtype_audit.active = previous


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


@contextlib.contextmanager
def enable_grad():
    """Context manager that re-enables graph recording inside :func:`no_grad`.

    Needed by :func:`checkpoint`, whose backward recomputation must record a
    graph even when the surrounding backward pass runs without one.
    """
    previous = _grad_mode.enabled
    _grad_mode.enabled = True
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _grad_mode.enabled


def _as_array(value: ArrayLike) -> np.ndarray:
    """Convert ``value`` to a floating ndarray, preserving float dtypes.

    The dtype-preservation contract: an ndarray (or Tensor) that is already
    floating keeps its dtype -- a ``float32`` array never silently widens to
    ``float64`` just because it passed through a ``Tensor`` constructor.
    Everything else (Python scalars, lists, integer/bool arrays) converts to
    :data:`_DEFAULT_DTYPE` exactly as before.
    """
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if np.issubdtype(arr.dtype, np.floating):
        return arr
    return np.asarray(arr, dtype=_DEFAULT_DTYPE)


def _coerce_operand(other: ArrayLike, dtype: np.dtype) -> "Tensor":
    """Wrap a non-Tensor binary-op operand at the left operand's dtype.

    Binary ops between a Tensor and a plain scalar/array must not change the
    Tensor's dtype: a Python-float constant in a ``float32`` graph would
    otherwise drag every downstream node back to ``float64``.  Tensor-Tensor
    ops are left to NumPy's promotion rules (mixing dtypes across Tensors is
    an explicit caller choice).
    """
    if isinstance(other, Tensor):
        return other
    return Tensor(np.asarray(other, dtype=dtype))


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting.

    Broadcasting in the forward pass duplicates values; the corresponding
    adjoint operation sums gradients over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(f"cannot unbroadcast gradient {grad.shape} to {shape}")
    return grad


class Tensor:
    """An n-dimensional array participating in automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of floats.
    requires_grad:
        When ``True`` the tensor accumulates gradients during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fns", "_op")

    #: Subclasses created *before* the session dtype policy is applied (model
    #: parameters, which are initialised at float64 so RNG draws never depend
    #: on the policy and are cast once by ``Module.to_dtype``) set this True
    #: to opt out of :func:`dtype_audit` recording; their post-policy dtype
    #: is asserted separately.
    _dtype_audit_exempt = False

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        self.data: np.ndarray = _as_array(data)
        if _dtype_audit.active is not None and not self._dtype_audit_exempt:
            _dtype_audit.active.add(self.data.dtype)
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = ()
        self._backward_fns: Tuple[Optional[Callable[[np.ndarray], np.ndarray]], ...] = ()
        self._op: str = "leaf"

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fns: Sequence[Optional[Callable[[np.ndarray], np.ndarray]]],
        op: str,
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward_fns = tuple(backward_fns)
            out._op = op
        return out

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut out of the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient buffer."""
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1.0`` which is only valid for
            scalar outputs (matching the PyTorch convention).
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError("backward() without a seed requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ShapeError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )

        order = _topological_order(self)
        grads: dict = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and not node._parents:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            if node.grad is None and node._parents and node is self:
                pass
            for parent, fn in zip(node._parents, node._backward_fns):
                if fn is None or not parent.requires_grad:
                    continue
                contribution = fn(node_grad)
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                else:
                    grads[key] = contribution
            if node.requires_grad and node._parents and node is not self:
                # Interior node gradients are not retained (like PyTorch).
                pass

    # ------------------------------------------------------------------
    # Arithmetic (each returns a new node)
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = _coerce_operand(other, self.data.dtype)
        data = self.data + other_t.data
        return Tensor._from_op(
            data,
            (self, other_t),
            (
                lambda g: _unbroadcast(g, self.data.shape),
                lambda g: _unbroadcast(g, other_t.data.shape),
            ),
            "add",
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._from_op(-self.data, (self,), (lambda g: -g,), "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = _coerce_operand(other, self.data.dtype)
        data = self.data - other_t.data
        return Tensor._from_op(
            data,
            (self, other_t),
            (
                lambda g: _unbroadcast(g, self.data.shape),
                lambda g: _unbroadcast(-g, other_t.data.shape),
            ),
            "sub",
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _coerce_operand(other, self.data.dtype) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = _coerce_operand(other, self.data.dtype)
        data = self.data * other_t.data
        return Tensor._from_op(
            data,
            (self, other_t),
            (
                lambda g: _unbroadcast(g * other_t.data, self.data.shape),
                lambda g: _unbroadcast(g * self.data, other_t.data.shape),
            ),
            "mul",
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = _coerce_operand(other, self.data.dtype)
        data = self.data / other_t.data
        return Tensor._from_op(
            data,
            (self, other_t),
            (
                lambda g: _unbroadcast(g / other_t.data, self.data.shape),
                lambda g: _unbroadcast(-g * self.data / (other_t.data**2), other_t.data.shape),
            ),
            "div",
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _coerce_operand(other, self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data**exponent
        base = self.data

        def grad_fn(g: np.ndarray) -> np.ndarray:
            return g * exponent * base ** (exponent - 1)

        return Tensor._from_op(data, (self,), (grad_fn,), "pow")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = _coerce_operand(other, self.data.dtype)
        data = self.data @ other_t.data

        def grad_self(g: np.ndarray) -> np.ndarray:
            if other_t.data.ndim == 1:
                return np.outer(g, other_t.data) if self.data.ndim == 2 else g * other_t.data
            grad = g @ np.swapaxes(other_t.data, -1, -2)
            return _unbroadcast(grad, self.data.shape)

        def grad_other(g: np.ndarray) -> np.ndarray:
            if self.data.ndim == 1:
                return np.outer(self.data, g) if other_t.data.ndim == 2 else self.data * g
            grad = np.swapaxes(self.data, -1, -2) @ g
            return _unbroadcast(grad, other_t.data.shape)

        return Tensor._from_op(data, (self, other_t), (grad_self, grad_other), "matmul")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        return Tensor._from_op(data, (self,), (lambda g: g * data,), "exp")

    def log(self) -> "Tensor":
        data = np.log(self.data)
        return Tensor._from_op(data, (self,), (lambda g: g / self.data,), "log")

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        return Tensor._from_op(data, (self,), (lambda g: g / (2.0 * data),), "sqrt")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        return Tensor._from_op(data, (self,), (lambda g: g * (1.0 - data**2),), "tanh")

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        return Tensor._from_op(data, (self,), (lambda g: g * data * (1.0 - data),), "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._from_op(self.data * mask, (self,), (lambda g: g * mask,), "relu")

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        """LeakyReLU with the paper's default negative slope of 0.2 (Eq. 5)."""
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype, copy=False)
        return Tensor._from_op(self.data * scale, (self,), (lambda g: g * scale,), "leaky_relu")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._from_op(np.abs(self.data), (self,), (lambda g: g * sign,), "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        data = np.clip(self.data, low, high)
        return Tensor._from_op(data, (self,), (lambda g: g * mask,), "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, shape).copy() if np.ndim(g) == 0 else np.full(shape, g)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded, shape).copy()

        return Tensor._from_op(np.asarray(data), (self,), (grad_fn,), "sum")

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            expanded = data if keepdims or axis is None else np.expand_dims(data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            g_expanded = g if keepdims or axis is None else np.expand_dims(g, axis)
            return mask * g_expanded

        return Tensor._from_op(np.asarray(data), (self,), (grad_fn,), "max")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)
        return Tensor._from_op(data, (self,), (lambda g: g.reshape(original),), "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        axes_t: Optional[Tuple[int, ...]] = axes if axes else None
        data = self.data.transpose(axes_t)
        if axes_t is None:
            inverse: Optional[Tuple[int, ...]] = None
        else:
            inverse = tuple(int(i) for i in np.argsort(axes_t))
        return Tensor._from_op(data, (self,), (lambda g: g.transpose(inverse),), "transpose")

    @property
    def T(self) -> "Tensor":  # noqa: N802 - mirrors numpy naming
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.data.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            out = np.zeros(shape, dtype=self.data.dtype)
            np.add.at(out, index, g)
            return out

        return Tensor._from_op(np.asarray(data), (self,), (grad_fn,), "getitem")

    # ------------------------------------------------------------------
    # Graph gather / scatter primitives
    # ------------------------------------------------------------------
    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows along axis 0 (``out[i] = self[indices[i]]``)."""
        idx = np.asarray(indices, dtype=np.int64)
        data = self.data[idx]
        shape = self.data.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            out = np.zeros(shape, dtype=self.data.dtype)
            np.add.at(out, idx, g)
            return out

        return Tensor._from_op(data, (self,), (grad_fn,), "take_rows")

    def segment_sum(self, segment_ids: np.ndarray, num_segments: int) -> "Tensor":
        """Scatter-add rows into ``num_segments`` buckets along axis 0.

        The adjoint of :meth:`take_rows`; this is the aggregation primitive
        used by the temporal graph attention layers to sum messages arriving
        at each target node of a bipartite computation graph.
        """
        ids = np.asarray(segment_ids, dtype=np.int64)
        if ids.shape[0] != self.data.shape[0]:
            raise ShapeError(
                f"segment_ids length {ids.shape[0]} != rows {self.data.shape[0]}"
            )
        out_shape = (num_segments,) + self.data.shape[1:]
        data = np.zeros(out_shape, dtype=self.data.dtype)
        np.add.at(data, ids, self.data)
        return Tensor._from_op(data, (self,), (lambda g: g[ids],), "segment_sum")


def checkpoint(fn: Callable[..., Tensor], *inputs: Tensor) -> Tensor:
    """Activation checkpointing: run ``fn`` without recording, recompute in backward.

    The forward pass evaluates ``fn(*inputs)`` under :func:`no_grad`, so none
    of its intermediate tensors survive -- only the output data is kept.  The
    returned tensor is wired into the surrounding graph with one parent per
    input; the first time a gradient reaches it, ``fn`` is re-evaluated on
    leaf copies of the inputs, the local graph is differentiated once, and
    the per-input gradients are cached for the remaining parents.

    Exactness: the recomputation executes the very same array operations on
    the very same full-shape operands as an unwrapped call would, and the
    local backward walks the identical subgraph in the identical topological
    order, so both the forward values and the gradients delivered to every
    input are **bit-identical** to the non-checkpointed path.  Peak memory
    drops because the subgraph's per-edge/per-row intermediates exist only
    transiently -- during the forward (freed immediately) and again during
    the one recomputation in backward.

    ``fn`` must be a pure function of its tensor inputs (plain-array
    constants captured by closure are fine; anything stateful is not).
    """
    tensors = tuple(t if isinstance(t, Tensor) else Tensor(t) for t in inputs)
    if not (is_grad_enabled() and any(t.requires_grad for t in tensors)):
        with no_grad():
            return fn(*tensors)
    with no_grad():
        out = fn(*tensors)
    cache: dict = {}
    # The backward engine invokes one closure per grad-requiring parent (all
    # with the same seed, in one processing step); the recompute runs on the
    # first call and the cached per-input grads are dropped after the last,
    # so at most one checkpoint unit's recomputation is ever alive.
    pending = sum(1 for t in tensors if t.requires_grad)

    def _recomputed_grads(seed: np.ndarray) -> List[np.ndarray]:
        if "grads" not in cache:
            leaves = [Tensor(t.data, requires_grad=t.requires_grad) for t in tensors]
            with enable_grad():
                recomputed = fn(*leaves)
                recomputed.backward(seed)
            cache["grads"] = [
                leaf.grad if leaf.grad is not None else np.zeros_like(leaf.data)
                for leaf in leaves
            ]
        return cache["grads"]

    def make_fn(i: int) -> Callable[[np.ndarray], np.ndarray]:
        def backward_fn(g: np.ndarray) -> np.ndarray:
            nonlocal pending
            grad = _recomputed_grads(g)[i]
            pending -= 1
            if pending == 0:
                cache.clear()
            return grad

        return backward_fn

    return Tensor._from_op(
        out.data, tensors, tuple(make_fn(i) for i in range(len(tensors))), "checkpoint"
    )


def _topological_order(root: Tensor) -> List[Tensor]:
    """Return nodes reachable from ``root`` in reverse-topological order."""
    order: List[Tensor] = []
    visited = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return list(reversed(order))


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` (conversion helper mirroring ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(
    shape: Union[int, Tuple[int, ...]],
    requires_grad: bool = False,
    dtype: Optional[np.dtype] = None,
) -> Tensor:
    """An all-zeros tensor of the given shape."""
    return Tensor(
        np.zeros(shape, dtype=dtype or _DEFAULT_DTYPE), requires_grad=requires_grad
    )


def ones(
    shape: Union[int, Tuple[int, ...]],
    requires_grad: bool = False,
    dtype: Optional[np.dtype] = None,
) -> Tensor:
    """An all-ones tensor of the given shape."""
    return Tensor(
        np.ones(shape, dtype=dtype or _DEFAULT_DTYPE), requires_grad=requires_grad
    )


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with full gradient support."""
    ts = list(tensors)
    if not ts:
        raise ShapeError("concat() received an empty sequence")
    data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.data.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def make_grad_fn(i: int) -> Callable[[np.ndarray], np.ndarray]:
        def grad_fn(g: np.ndarray) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            return g[tuple(slicer)]

        return grad_fn

    return Tensor._from_op(data, ts, tuple(make_grad_fn(i) for i in range(len(ts))), "concat")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    ts = list(tensors)
    if not ts:
        raise ShapeError("stack() received an empty sequence")
    data = np.stack([t.data for t in ts], axis=axis)

    def make_grad_fn(i: int) -> Callable[[np.ndarray], np.ndarray]:
        def grad_fn(g: np.ndarray) -> np.ndarray:
            return np.take(g, i, axis=axis)

        return grad_fn

    return Tensor._from_op(data, ts, tuple(make_grad_fn(i) for i in range(len(ts))), "stack")
