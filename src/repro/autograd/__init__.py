"""NumPy reverse-mode autograd substrate (PyTorch substitute for this repro).

Public surface:

* :class:`Tensor` and constructors (:func:`tensor`, :func:`zeros`,
  :func:`ones`, :func:`concat`, :func:`stack`)
* :func:`no_grad` context manager
* composite ops in :mod:`repro.autograd.ops`
* :func:`check_gradients` for finite-difference validation
"""

from .grad_check import check_gradients, numerical_gradient
from .ops import (
    binary_cross_entropy_with_logits,
    cross_entropy_with_logits,
    kl_standard_normal,
    log_softmax,
    logsumexp,
    mse,
    segment_mean,
    segment_softmax,
    softmax,
)
from .tensor import (
    Tensor,
    checkpoint,
    concat,
    dtype_audit,
    enable_grad,
    is_grad_enabled,
    no_grad,
    ones,
    stack,
    tensor,
    zeros,
)

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "concat",
    "stack",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "checkpoint",
    "dtype_audit",
    "softmax",
    "log_softmax",
    "logsumexp",
    "segment_softmax",
    "segment_mean",
    "cross_entropy_with_logits",
    "binary_cross_entropy_with_logits",
    "kl_standard_normal",
    "mse",
    "check_gradients",
    "numerical_gradient",
]
