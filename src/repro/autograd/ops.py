"""Composite differentiable operations built on the :class:`~repro.autograd.tensor.Tensor` primitives.

These are the numerically-stable building blocks used by the TGAE model and
the learning-based baselines: softmax families, segment (per-group) softmax
for graph attention, and the loss terms from Eqs. 6-7 of the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from .tensor import Tensor
from .tensor import checkpoint as _checkpoint


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def segment_softmax(
    scores: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    checkpoint: bool = False,
) -> Tensor:
    """Softmax over groups of rows sharing a segment id.

    This implements the attention normalisation of Eq. 5: each edge score is
    normalised over all edges pointing at the same target node.  The segment
    maximum used for numerical stability is treated as a constant (detached),
    which leaves gradients exact because softmax is shift-invariant.

    Parameters
    ----------
    scores:
        1-D tensor of per-edge scores (or 2-D ``(edges, heads)``).
    segment_ids:
        Integer array mapping each row of ``scores`` to its target segment.
    num_segments:
        Total number of segments (target nodes).
    checkpoint:
        Recompute-in-backward mode: keep only the normalised output alive
        instead of the ~4 per-edge intermediates (shifted scores, their
        exponentials, the gathered denominators), re-deriving them during
        the backward pass.  Values and gradients are bit-identical to the
        plain path (see :func:`repro.autograd.checkpoint`).
    """
    ids = np.asarray(segment_ids, dtype=np.int64)
    if ids.ndim != 1 or ids.shape[0] != scores.shape[0]:
        raise ShapeError("segment_ids must be 1-D and match scores rows")
    if checkpoint:
        return _checkpoint(
            lambda s: _segment_softmax_impl(s, ids, num_segments), scores
        )
    return _segment_softmax_impl(scores, ids, num_segments)


def _segment_softmax_impl(scores: Tensor, ids: np.ndarray, num_segments: int) -> Tensor:
    """The recorded segment-softmax kernel shared by both modes."""
    # Per-segment max for stability, computed outside the graph.
    seg_max = np.full((num_segments,) + scores.shape[1:], -np.inf, dtype=scores.data.dtype)
    np.maximum.at(seg_max, ids, scores.data)
    seg_max = np.where(np.isfinite(seg_max), seg_max, 0.0)
    shifted = scores - Tensor(seg_max[ids])
    exp = shifted.exp()
    denom = exp.segment_sum(ids, num_segments)
    # Guard empty segments against division by zero when gathered back.
    denom = denom + 1e-30
    return exp / denom.take_rows(ids)


def segment_mean(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Average rows of ``values`` within each segment."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    totals = values.segment_sum(ids, num_segments)
    counts = np.zeros(num_segments, dtype=values.data.dtype)
    np.add.at(counts, ids, 1.0)
    counts = np.maximum(counts, 1.0)
    shape = (num_segments,) + (1,) * (values.ndim - 1)
    return totals / Tensor(counts.reshape(shape))


def cross_entropy_with_logits(logits: Tensor, targets: np.ndarray, axis: int = -1) -> Tensor:
    """Mean cross-entropy between ``softmax(logits)`` and one-hot/dense targets.

    ``targets`` may be an integer class array (one label per row) or a dense
    probability array with the same shape as ``logits``.
    """
    logp = log_softmax(logits, axis=axis)
    targets_arr = np.asarray(targets)
    if targets_arr.shape == logits.shape:
        per_row = -(logp * Tensor(targets_arr)).sum(axis=axis)
        return per_row.mean()
    if targets_arr.ndim != logits.ndim - 1:
        raise ShapeError(
            f"targets shape {targets_arr.shape} incompatible with logits {logits.shape}"
        )
    flat = logp.reshape(-1, logits.shape[-1])
    idx = targets_arr.reshape(-1).astype(np.int64)
    rows = np.arange(idx.shape[0])
    picked = flat[(rows, idx)]
    return -picked.mean()


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, weight: Optional[np.ndarray] = None
) -> Tensor:
    """Stable elementwise BCE, mean-reduced.

    Uses the standard ``max(x,0) - x*t + log(1+exp(-|x|))`` formulation so
    large-magnitude logits do not overflow.
    """
    t = Tensor(np.asarray(targets, dtype=logits.data.dtype))
    relu_x = logits.relu()
    loss = relu_x - logits * t + ((-logits.abs()).exp() + 1.0).log()
    if weight is not None:
        loss = loss * Tensor(np.asarray(weight, dtype=logits.data.dtype))
    return loss.mean()


def kl_standard_normal(
    mu: Tensor, log_sigma: Tensor, scale: Optional[float] = None
) -> Tensor:
    """KL( N(mu, sigma^2) || N(0, 1) ), mean over rows.

    This is the regulariser of Eq. 6; ``log_sigma`` parameterises the scale to
    keep the optimisation unconstrained.

    ``scale`` replaces the ``1 / rows`` of the mean with an explicit factor,
    which is how the sharded trainer makes per-shard KL terms additive: each
    shard contributes ``row_sums.sum() * (1 / total_rows)`` so the sum over
    shards equals the global mean.  ``None`` keeps the plain per-call mean.
    """
    sigma_sq = (log_sigma * 2.0).exp()
    per_element = 0.5 * (sigma_sq + mu * mu - 1.0 - log_sigma * 2.0)
    per_row = per_element.sum(axis=-1)
    if scale is None:
        return per_row.mean()
    return per_row.sum() * scale


def mse(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = prediction - Tensor(np.asarray(target, dtype=prediction.data.dtype))
    return (diff * diff).mean()


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp reduction."""
    m = x.max(axis=axis, keepdims=True).detach()
    out = (x - m).exp().sum(axis=axis, keepdims=True).log() + m
    if not keepdims:
        out = out.reshape(*np.delete(np.array(out.shape), axis))
    return out
