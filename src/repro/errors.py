"""Typed exceptions used across the :mod:`repro` package.

Every user-facing error raised by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still being able to discriminate on subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array or tensor had an incompatible shape."""


class GradientError(ReproError, RuntimeError):
    """Backward pass was invoked in an invalid state."""


class GraphFormatError(ReproError, ValueError):
    """A temporal graph input violated the expected format."""


class ConfigError(ReproError, ValueError):
    """A model or experiment configuration value was invalid."""


class DatasetError(ReproError, ValueError):
    """A dataset name or specification was not recognised."""


class GenerationError(ReproError, RuntimeError):
    """Graph generation could not be completed."""


class NotFittedError(ReproError, RuntimeError):
    """A generator was asked to sample before :meth:`fit` was called."""
