"""Typed exceptions used across the :mod:`repro` package.

Every user-facing error raised by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still being able to discriminate on subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array or tensor had an incompatible shape."""


class GradientError(ReproError, RuntimeError):
    """Backward pass was invoked in an invalid state."""


class GraphFormatError(ReproError, ValueError):
    """A temporal graph input violated the expected format."""


class ConfigError(ReproError, ValueError):
    """A model or experiment configuration value was invalid."""


class DatasetError(ReproError, ValueError):
    """A dataset name or specification was not recognised."""


class GenerationError(ReproError, RuntimeError):
    """Graph generation could not be completed."""


class NotFittedError(ReproError, RuntimeError):
    """A generator was asked to sample before :meth:`fit` was called."""


class PoolError(ReproError, RuntimeError):
    """A worker pool was misused or exhausted every recovery rung.

    Raised when a closed :class:`~repro.core.parallel.WorkerPool` is asked
    to run work, or when a shard failed on every rung of the degradation
    ladder (shm -> pickle -> threads -> sequential) -- i.e. only after the
    pool has genuinely nothing left to try.  Subclasses ``RuntimeError``
    so pre-typed callers keep working.
    """


class FaultInjected(ReproError, RuntimeError):
    """An armed :mod:`repro.faults` rule fired with this as its payload.

    The nemesis suite raises it for faults that must *not* be absorbed by
    retry/degrade machinery -- e.g. the simulated mid-fit kill that
    crash-safe checkpointing recovers from.
    """


class DegradeWarning(RuntimeWarning):
    """A worker pool stepped down one rung of its degradation ladder.

    Emitted once per step (shm -> pickle -> threads -> sequential) with the
    pool id, the rung transition and the triggering error, so operators can
    ``warnings.filterwarnings`` on the category instead of string-matching
    stderr.  Subclasses ``RuntimeWarning``: existing filters keep matching.
    """
