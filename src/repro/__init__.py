"""repro -- full reproduction of *Efficient Learning-Based Graph Simulation
for Temporal Graphs* (TGAE, ICDE 2025).

Sub-packages
------------
``repro.autograd``
    NumPy reverse-mode automatic differentiation (PyTorch substitute).
``repro.nn`` / ``repro.optim``
    Neural-network layers (incl. temporal graph attention) and optimizers.
``repro.graph``
    Temporal graph data structures, ego-graph sampling, bipartite batches.
``repro.datasets``
    Synthetic stand-ins for the paper's seven datasets + scalability grid.
``repro.metrics``
    Table III statistics, Eq. 10 comparison scores, motif MMD (Eq. 1).
``repro.core``
    TGAE itself: encoder, decoder, trainer, generator, ablation variants.
``repro.baselines``
    The ten comparison methods of Sec. V.
``repro.bench``
    The experiment harness regenerating every table and figure.
"""

from .base import TemporalGraphGenerator
from .errors import (
    ConfigError,
    DatasetError,
    GenerationError,
    GradientError,
    GraphFormatError,
    NotFittedError,
    ReproError,
    ShapeError,
)
from .graph.temporal_graph import TemporalGraph

__version__ = "1.0.0"

__all__ = [
    "TemporalGraph",
    "TemporalGraphGenerator",
    "ReproError",
    "ShapeError",
    "GradientError",
    "GraphFormatError",
    "ConfigError",
    "DatasetError",
    "GenerationError",
    "NotFittedError",
    "__version__",
]
