"""repro -- full reproduction of *Efficient Learning-Based Graph Simulation
for Temporal Graphs* (TGAE, ICDE 2025).

Sub-packages
------------
``repro.autograd``
    NumPy reverse-mode automatic differentiation (PyTorch substitute).
``repro.nn`` / ``repro.optim``
    Neural-network layers (incl. temporal graph attention) and optimizers.
``repro.graph``
    Temporal graph data structures, ego-graph sampling, bipartite batches.
``repro.datasets``
    Synthetic stand-ins for the paper's seven datasets + scalability grid.
``repro.metrics``
    Table III statistics, Eq. 10 comparison scores, motif MMD (Eq. 1).
``repro.core``
    TGAE itself: encoder, decoder, trainer, generator, ablation variants.
``repro.baselines``
    The ten comparison methods of Sec. V.
``repro.bench``
    The experiment harness regenerating every table and figure.

The batched ego-graph encoding pipeline
---------------------------------------
The hot path of both training and Sec. IV-G generation is encoding one
k-radius ego-graph per active temporal node.  Two computation-graph layouts
implement it:

* ``repro.graph.pack_ego_batch`` packs a chunk of ego-graphs into a padded
  ego-parallel batch (index tensors + masks) and
  ``repro.core.TGAEEncoder.encode_batch`` runs **one** vectorised encoder
  forward per chunk -- numerically identical to encoding each ego-graph on
  its own, several times faster, and the default
  (``TGAEConfig.packed_batches = True``).
* ``repro.graph.build_bipartite_batch`` merges ego-graphs into the shared
  k-bipartite graphs of Fig. 4 (cross-ego node deduplication), available
  via ``TGAEConfig(packed_batches=False)``.

Generation draws every row of a chunk's score matrix in one vectorised
Gumbel top-k pass (sampling without replacement per temporal node).
"""

from .base import TemporalGraphGenerator
from .errors import (
    ConfigError,
    DatasetError,
    DegradeWarning,
    FaultInjected,
    GenerationError,
    GradientError,
    GraphFormatError,
    NotFittedError,
    PoolError,
    ReproError,
    ShapeError,
)
from .graph.temporal_graph import TemporalGraph

__version__ = "1.0.0"

__all__ = [
    "TemporalGraph",
    "TemporalGraphGenerator",
    "ReproError",
    "ShapeError",
    "GradientError",
    "GraphFormatError",
    "ConfigError",
    "DatasetError",
    "GenerationError",
    "NotFittedError",
    "PoolError",
    "FaultInjected",
    "DegradeWarning",
    "__version__",
]
