"""The :class:`TemporalGraph` container (Definitions 1-2 of the paper).

A temporal graph is stored as parallel arrays of directed timestamped edges
``(src[i], dst[i], t[i])`` over integer node ids ``0..num_nodes-1`` and
integer timestamps ``0..num_timestamps-1``.  This columnar layout is the
format every sampler, generator, metric and baseline in the repro operates
on; conversions to per-timestamp snapshots and adjacency structures are
provided (and cached) here.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphFormatError


def _stable_merge_positions(keys_a: np.ndarray, keys_b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Output positions of a stable two-way merge of sorted key arrays.

    Element ``i`` of ``a`` lands at ``pos_a[i]`` and element ``j`` of ``b`` at
    ``pos_b[j]`` in the merged order; on equal keys every ``a`` element
    precedes every ``b`` element (``side='left'`` / ``side='right'``), which
    is exactly the tie rule a stable sort applies to ``concatenate([a, b])``.
    """
    pos_a = np.arange(keys_a.size, dtype=np.int64) + np.searchsorted(keys_b, keys_a, side="left")
    pos_b = np.arange(keys_b.size, dtype=np.int64) + np.searchsorted(keys_a, keys_b, side="right")
    return pos_a, pos_b


class TemporalGraph:
    """A directed temporal graph as a set of timestamped edges.

    Parameters
    ----------
    num_nodes:
        Total number of nodes ``n``; node ids must lie in ``[0, n)``.
    src, dst, t:
        Parallel integer arrays of edge sources, destinations and timestamps.
    num_timestamps:
        Number of distinct timestamps ``T``; defaults to ``max(t) + 1``.
    validate:
        Whether to check id/timestamp ranges (disable only on trusted input).
    """

    __slots__ = (
        "num_nodes",
        "src",
        "dst",
        "t",
        "num_timestamps",
        "_incidence",
        "_time_order",
        "_time_bounds",
        "_partner_groups",
        "_snapshot_cache",
    )

    def __init__(
        self,
        num_nodes: int,
        src: Sequence[int],
        dst: Sequence[int],
        t: Sequence[int],
        num_timestamps: Optional[int] = None,
        validate: bool = True,
    ) -> None:
        self.num_nodes = int(num_nodes)
        self.src = np.asarray(src, dtype=np.int64).reshape(-1)
        self.dst = np.asarray(dst, dtype=np.int64).reshape(-1)
        self.t = np.asarray(t, dtype=np.int64).reshape(-1)
        if not (self.src.shape == self.dst.shape == self.t.shape):
            raise GraphFormatError(
                f"edge arrays must be parallel: src={self.src.shape}, "
                f"dst={self.dst.shape}, t={self.t.shape}"
            )
        if num_timestamps is None:
            num_timestamps = int(self.t.max()) + 1 if self.t.size else 1
        self.num_timestamps = int(num_timestamps)
        if validate:
            self._validate()
        self._incidence: Optional[Dict[str, np.ndarray]] = None
        self._time_order: Optional[np.ndarray] = None
        self._time_bounds: Optional[np.ndarray] = None
        self._partner_groups: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._snapshot_cache: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Validation / basic properties
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.num_nodes <= 0:
            raise GraphFormatError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.num_timestamps <= 0:
            raise GraphFormatError(f"num_timestamps must be positive, got {self.num_timestamps}")
        if self.src.size:
            for name, arr, upper in (
                ("src", self.src, self.num_nodes),
                ("dst", self.dst, self.num_nodes),
                ("t", self.t, self.num_timestamps),
            ):
                low, high = int(arr.min()), int(arr.max())
                if low < 0 or high >= upper:
                    raise GraphFormatError(
                        f"{name} values must lie in [0, {upper}), found [{low}, {high}]"
                    )

    @property
    def num_edges(self) -> int:
        """Total number of temporal edges ``m``."""
        return int(self.src.size)

    @property
    def num_temporal_nodes(self) -> int:
        """Number of distinct (node, timestamp) occurrences."""
        if self.num_edges == 0:
            return 0
        pairs = np.concatenate(
            [self.src * self.num_timestamps + self.t, self.dst * self.num_timestamps + self.t]
        )
        return int(np.unique(pairs).size)

    def __repr__(self) -> str:
        return (
            f"TemporalGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"T={self.num_timestamps})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalGraph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and self.num_timestamps == other.num_timestamps
            and self.num_edges == other.num_edges
            and bool(np.array_equal(self._sorted_triples(), other._sorted_triples()))
        )

    def _sorted_triples(self) -> np.ndarray:
        triples = np.stack([self.t, self.src, self.dst], axis=1)
        order = np.lexsort((self.dst, self.src, self.t))
        return triples[order]

    # ------------------------------------------------------------------
    # Snapshot access
    # ------------------------------------------------------------------
    def edges_at(self, timestamp: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` of edges whose timestamp equals ``timestamp``."""
        mask = self.t == timestamp
        return self.src[mask], self.dst[mask]

    def edges_until(self, timestamp: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` of edges with timestamp ``<= timestamp``.

        This is the accumulation the paper uses to build evaluation snapshots
        ("accumulate the nodes and edges generated from the initial timestamp
        to the current timestamp", Sec. III).
        """
        mask = self.t <= timestamp
        return self.src[mask], self.dst[mask]

    def _snapshot_order_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached stable time-sort of the edges plus per-timestamp bounds.

        One O(E log E) sort serves every per-timestamp consumer
        (:meth:`snapshots`, :meth:`snapshot_view`); within a timestamp the
        original edge order is preserved (stable sort).
        """
        if self._time_order is None:
            self._time_order = np.argsort(self.t, kind="stable")
        if self._time_bounds is None:
            self._time_bounds = np.searchsorted(
                self.t[self._time_order], np.arange(self.num_timestamps + 1)
            )
        return self._time_order, self._time_bounds

    def snapshots(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(t, src, dst)`` for every timestamp in order."""
        order, bounds = self._snapshot_order_bounds()
        for timestamp in range(self.num_timestamps):
            sel = order[bounds[timestamp] : bounds[timestamp + 1]]
            yield timestamp, self.src[sel], self.dst[sel]

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    def temporal_degrees(self) -> np.ndarray:
        """Degree of every temporal node as a dense ``(n, T)`` array.

        The temporal degree of ``(u, t)`` counts the edges incident to ``u``
        at timestamp ``t`` in either direction -- the quantity used by the
        degree-weighted initial-node sampling of Eq. 2.
        """
        deg = np.zeros((self.num_nodes, self.num_timestamps), dtype=np.int64)
        np.add.at(deg, (self.src, self.t), 1)
        np.add.at(deg, (self.dst, self.t), 1)
        return deg

    def static_degrees(self) -> np.ndarray:
        """Total (time-aggregated) degree per node."""
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(deg, self.src, 1)
        np.add.at(deg, self.dst, 1)
        return deg

    # ------------------------------------------------------------------
    # Incidence structure (cached) for fast temporal neighbour queries
    # ------------------------------------------------------------------
    def _build_incidence(self) -> Dict[str, np.ndarray]:
        """Build a CSR-like per-node incidence list sorted by (node, time).

        For every node ``u`` we store all incident temporal events
        ``(other_endpoint, timestamp)`` -- both out- and in-edges, because the
        temporal neighbourhood of Definition 3 is direction-agnostic.
        """
        n_entries = 2 * self.num_edges
        owner = np.concatenate([self.src, self.dst])
        other = np.concatenate([self.dst, self.src])
        times = np.concatenate([self.t, self.t])
        direction = np.concatenate(
            [np.zeros(self.num_edges, dtype=np.int8), np.ones(self.num_edges, dtype=np.int8)]
        )
        order = np.lexsort((times, owner))
        owner = owner[order]
        counts = np.bincount(owner, minlength=self.num_nodes) if n_entries else np.zeros(
            self.num_nodes, dtype=np.int64
        )
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return {
            "offsets": offsets,
            "other": other[order],
            "times": times[order],
            "direction": direction[order],
        }

    @property
    def incidence(self) -> Dict[str, np.ndarray]:
        """Cached incidence structure (see :meth:`_build_incidence`)."""
        if self._incidence is None:
            self._incidence = self._build_incidence()
        return self._incidence

    def incident_events(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """All ``(neighbour, timestamp)`` events incident to ``node``, time-sorted."""
        inc = self.incidence
        lo, hi = inc["offsets"][node], inc["offsets"][node + 1]
        return inc["other"][lo:hi], inc["times"][lo:hi]

    # ------------------------------------------------------------------
    # Sparse adjacency provider (shared by generation, metrics, baselines)
    # ------------------------------------------------------------------
    def out_partner_groups(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR-style slices of each node's distinct historical out-partners.

        Returns ``(offsets, partners)`` where
        ``partners[offsets[u]:offsets[u + 1]]`` are the sorted distinct
        targets ``v`` such that an edge ``u -> v`` exists at any timestamp.
        Built once in O(E log E) with a vectorised group-by over the sorted
        edge arrays and cached; this is the partner-pool structure the
        streaming generation engine's candidate assembly reads.
        """
        if self._partner_groups is None:
            if self.num_edges:
                pairs = np.unique(self.src * np.int64(self.num_nodes) + self.dst)
                owners = pairs // self.num_nodes
                partners = pairs % self.num_nodes
            else:
                owners = np.empty(0, dtype=np.int64)
                partners = np.empty(0, dtype=np.int64)
            counts = np.bincount(owners, minlength=self.num_nodes)
            offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
            self._partner_groups = (offsets, partners.astype(np.int64))
        return self._partner_groups

    def snapshot_view(self, timestamp: int):
        """Cached :class:`~repro.graph.snapshot.Snapshot` of the edges at ``timestamp``.

        The snapshot (and thus its CSR adjacency) is built once per timestamp
        and shared by every consumer of this graph -- e.g. all per-snapshot
        baselines fitting on one observed graph slice the same objects.  The
        cache holds at most ``num_timestamps`` entries totalling O(E).
        """
        from .snapshot import Snapshot  # local import: snapshot.py imports this module

        timestamp = int(timestamp)
        if not 0 <= timestamp < self.num_timestamps:
            raise GraphFormatError(
                f"timestamp {timestamp} outside [0, {self.num_timestamps})"
            )
        if timestamp not in self._snapshot_cache:
            order, bounds = self._snapshot_order_bounds()
            sel = order[bounds[timestamp] : bounds[timestamp + 1]]
            self._snapshot_cache[timestamp] = Snapshot(
                self.num_nodes, self.src[sel], self.dst[sel]
            )
        return self._snapshot_cache[timestamp]

    def adjacency_at(self, timestamp: int, symmetric: bool = False):
        """Sparse CSR adjacency ``A^{(t)}`` of one snapshot, built lazily.

        The streaming replacement for the dense ``(T, n, n)`` tensor of
        Sec. IV-A: O(E_t) memory per timestamp, deduplicated binary entries,
        optionally symmetrised (self-loops dropped in the symmetric view).
        """
        snapshot = self.snapshot_view(timestamp)
        return snapshot.undirected_adjacency() if symmetric else snapshot.adjacency()

    # ------------------------------------------------------------------
    # Incremental append (the online-ingestion path)
    # ------------------------------------------------------------------
    def appended(
        self,
        new_src: Sequence[int],
        new_dst: Sequence[int],
        new_t: Sequence[int],
        num_timestamps: Optional[int] = None,
        validate: bool = True,
    ) -> "TemporalGraph":
        """New graph with ``(new_src, new_dst, new_t)`` edges appended.

        The returned graph has the appended edges *after* the existing ones
        (edge indices of the original graph are preserved), and every cache
        already materialised on ``self`` is carried over **incrementally** --
        merged in O(E + k log k) for ``k`` new edges instead of rebuilt in
        O(E log E) -- while staying bitwise-equal to the same cache built
        from scratch on the concatenated edge list.  Caches that were never
        built on ``self`` stay lazy on the result.

        ``num_timestamps`` defaults to growing the horizon just enough to
        accommodate the new timestamps; pass it explicitly (e.g. the current
        ``num_timestamps``) to reject out-of-universe appends instead.
        The node universe is always fixed: new endpoints must lie in
        ``[0, num_nodes)``.
        """
        new_src = np.asarray(new_src, dtype=np.int64).reshape(-1)
        new_dst = np.asarray(new_dst, dtype=np.int64).reshape(-1)
        new_t = np.asarray(new_t, dtype=np.int64).reshape(-1)
        if not (new_src.shape == new_dst.shape == new_t.shape):
            raise GraphFormatError(
                f"appended edge arrays must be parallel: new_src={new_src.shape}, "
                f"new_dst={new_dst.shape}, new_t={new_t.shape}"
            )
        if num_timestamps is None:
            num_timestamps = self.num_timestamps
            if new_t.size:
                num_timestamps = max(num_timestamps, int(new_t.max()) + 1)
        num_timestamps = int(num_timestamps)
        if num_timestamps < self.num_timestamps:
            raise GraphFormatError(
                f"appended() cannot shrink the horizon: num_timestamps={num_timestamps} "
                f"< existing {self.num_timestamps}"
            )
        if validate and new_src.size:
            for name, arr, upper in (
                ("new_src", new_src, self.num_nodes),
                ("new_dst", new_dst, self.num_nodes),
                ("new_t", new_t, num_timestamps),
            ):
                low, high = int(arr.min()), int(arr.max())
                if low < 0 or high >= upper:
                    raise GraphFormatError(
                        f"{name} values must lie in [0, {upper}), found [{low}, {high}]"
                    )
        result = TemporalGraph(
            self.num_nodes,
            np.concatenate([self.src, new_src]),
            np.concatenate([self.dst, new_dst]),
            np.concatenate([self.t, new_t]),
            num_timestamps=num_timestamps,
            validate=False,
        )
        if self._time_order is not None and self._time_bounds is not None:
            result._time_order, result._time_bounds = self._merged_time_order(
                new_t, num_timestamps
            )
        if self._partner_groups is not None:
            result._partner_groups = self._merged_partner_groups(new_src, new_dst)
        if self._incidence is not None:
            result._incidence = self._merged_incidence(new_src, new_dst, new_t, num_timestamps)
        if self._snapshot_cache:
            # Snapshots of untouched timestamps are immutable views shared
            # with self (same convention as snapshot_view sharing between
            # consumers); touched timestamps are dropped and rebuilt lazily.
            dirty = set(np.unique(new_t).tolist())
            for timestamp, snapshot in self._snapshot_cache.items():
                if timestamp not in dirty:
                    result._snapshot_cache[timestamp] = snapshot
        return result

    def _merged_time_order(
        self, new_t: np.ndarray, num_timestamps: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge the cached stable time-sort with ``new_t``.

        All existing edge indices precede the appended ones, so a stable
        merge that keeps old entries first on equal timestamps reproduces
        ``np.argsort(concatenate([t, new_t]), kind='stable')`` bitwise; the
        per-timestamp bounds are recomputed in O(T) against the result
        horizon ``num_timestamps``.
        """
        order_old = self._time_order
        keys_old = self.t[order_old]
        local = np.argsort(new_t, kind="stable")
        keys_new = new_t[local]
        pos_old, pos_new = _stable_merge_positions(keys_old, keys_new)
        total = keys_old.size + keys_new.size
        order = np.empty(total, dtype=order_old.dtype)
        order[pos_old] = order_old
        order[pos_new] = self.num_edges + local
        sorted_t = np.empty(total, dtype=np.int64)
        sorted_t[pos_old] = keys_old
        sorted_t[pos_new] = keys_new
        bounds = np.searchsorted(sorted_t, np.arange(num_timestamps + 1))
        return order, bounds

    def _merged_partner_groups(
        self, new_src: np.ndarray, new_dst: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Union-merge the cached out-partner CSR with the appended pairs.

        ``np.unique`` of the concatenated pair keys equals the sorted merge
        of the old (sorted, unique) keys with the genuinely new keys, so the
        incremental union is bitwise-identical to a from-scratch group-by.
        """
        offsets, partners = self._partner_groups
        n = np.int64(self.num_nodes)
        owners_old = np.repeat(np.arange(self.num_nodes, dtype=np.int64), np.diff(offsets))
        keys_old = owners_old * n + partners
        if new_src.size:
            keys_new = np.unique(new_src * n + new_dst)
            fresh = np.setdiff1d(keys_new, keys_old, assume_unique=True)
        else:
            fresh = np.empty(0, dtype=np.int64)
        pos_old, pos_fresh = _stable_merge_positions(keys_old, fresh)
        merged = np.empty(keys_old.size + fresh.size, dtype=np.int64)
        merged[pos_old] = keys_old
        merged[pos_fresh] = fresh
        owners = merged // n
        counts = np.bincount(owners, minlength=self.num_nodes)
        new_offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return new_offsets, (merged % n).astype(np.int64)

    def _merged_incidence(
        self,
        new_src: np.ndarray,
        new_dst: np.ndarray,
        new_t: np.ndarray,
        num_timestamps: int,
    ) -> Dict[str, np.ndarray]:
        """Merge the cached incidence structure with the appended edges.

        A from-scratch :meth:`_build_incidence` on the concatenated arrays
        lexsorts the entry layout ``[src_old, src_new, dst_old, dst_new]``,
        so within one ``(owner, time)`` group the order is out-edges before
        in-edges and old before new within each direction.  Reproducing that
        bitwise therefore needs a direction-split three-way stable merge:
        out_old with out_new, in_old with in_new, then out with in -- each
        step keeping the left operand first on equal ``(owner, time)`` keys.
        """
        inc = self._incidence
        n = self.num_nodes
        owners_all = np.repeat(np.arange(n, dtype=np.int64), np.diff(inc["offsets"]))
        out_mask = inc["direction"] == 0
        in_mask = ~out_mask
        big = np.int64(num_timestamps)
        k = new_src.size

        def merge_groups(
            keys_a: np.ndarray,
            keys_b: np.ndarray,
            payloads_a: Tuple[np.ndarray, ...],
            payloads_b: Tuple[np.ndarray, ...],
        ) -> Tuple[np.ndarray, List[np.ndarray]]:
            pos_a, pos_b = _stable_merge_positions(keys_a, keys_b)
            keys = np.empty(keys_a.size + keys_b.size, dtype=np.int64)
            keys[pos_a] = keys_a
            keys[pos_b] = keys_b
            merged = []
            for arr_a, arr_b in zip(payloads_a, payloads_b):
                out = np.empty(keys.size, dtype=arr_a.dtype)
                out[pos_a] = arr_a
                out[pos_b] = arr_b
                merged.append(out)
            return keys, merged

        out_order = np.lexsort((new_t, new_src))
        in_order = np.lexsort((new_t, new_dst))
        keys_out, (owner_out, other_out, times_out, dir_out) = merge_groups(
            owners_all[out_mask] * big + inc["times"][out_mask],
            new_src[out_order] * big + new_t[out_order],
            (
                owners_all[out_mask],
                inc["other"][out_mask],
                inc["times"][out_mask],
                inc["direction"][out_mask],
            ),
            (
                new_src[out_order],
                new_dst[out_order],
                new_t[out_order],
                np.zeros(k, dtype=np.int8),
            ),
        )
        keys_in, (owner_in, other_in, times_in, dir_in) = merge_groups(
            owners_all[in_mask] * big + inc["times"][in_mask],
            new_dst[in_order] * big + new_t[in_order],
            (
                owners_all[in_mask],
                inc["other"][in_mask],
                inc["times"][in_mask],
                inc["direction"][in_mask],
            ),
            (
                new_dst[in_order],
                new_src[in_order],
                new_t[in_order],
                np.ones(k, dtype=np.int8),
            ),
        )
        _, (owner, other, times, direction) = merge_groups(
            keys_out,
            keys_in,
            (owner_out, other_out, times_out, dir_out),
            (owner_in, other_in, times_in, dir_in),
        )
        counts = np.bincount(owner, minlength=n) if owner.size else np.zeros(n, dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return {"offsets": offsets, "other": other, "times": times, "direction": direction}

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self) -> "TemporalGraph":
        """Deep copy of the edge arrays.

        The copy starts with cold caches: sharing would be *correct* here
        (the edge set is identical) but copies are routinely handed to
        consumers that only ever touch a sliver of the graph, so the cheap
        contract -- every derived graph rebuilds lazily -- is kept uniform
        with :meth:`restricted_to` / :meth:`deduplicated`, where carrying
        parent caches would be stale and wrong.  Only :meth:`appended`
        carries caches, and it re-derives them incrementally.
        """
        return TemporalGraph(
            self.num_nodes,
            self.src.copy(),
            self.dst.copy(),
            self.t.copy(),
            num_timestamps=self.num_timestamps,
            validate=False,
        )

    def restricted_to(self, max_timestamp: int) -> "TemporalGraph":
        """Sub-temporal-graph containing only edges with ``t <= max_timestamp``."""
        mask = self.t <= max_timestamp
        return TemporalGraph(
            self.num_nodes,
            self.src[mask],
            self.dst[mask],
            self.t[mask],
            num_timestamps=min(self.num_timestamps, max_timestamp + 1),
            validate=False,
        )

    def deduplicated(self) -> "TemporalGraph":
        """Remove duplicate ``(src, dst, t)`` triples."""
        if self.num_edges == 0:
            return self.copy()
        triples = np.stack([self.src, self.dst, self.t], axis=1)
        unique = np.unique(triples, axis=0)
        return TemporalGraph(
            self.num_nodes,
            unique[:, 0],
            unique[:, 1],
            unique[:, 2],
            num_timestamps=self.num_timestamps,
            validate=False,
        )

    def without_self_loops(self) -> "TemporalGraph":
        """Drop edges whose endpoints coincide."""
        mask = self.src != self.dst
        return TemporalGraph(
            self.num_nodes,
            self.src[mask],
            self.dst[mask],
            self.t[mask],
            num_timestamps=self.num_timestamps,
            validate=False,
        )

def dense_temporal_adjacency(graph: "TemporalGraph") -> np.ndarray:
    """Dense ``(T, n, n)`` 0/1 adjacency tensor ``A_{t=1:T}`` (Sec. IV-A).

    **Test-only helper.**  Production paths never materialise a node x node
    array; they go through :meth:`TemporalGraph.adjacency_at` (sparse CSR per
    snapshot) and :meth:`TemporalGraph.out_partner_groups` instead.  This
    function exists so equivalence tests can check the sparse providers
    against the textbook dense tensor on small graphs.
    """
    adj = np.zeros(
        (graph.num_timestamps, graph.num_nodes, graph.num_nodes), dtype=np.int8
    )
    adj[graph.t, graph.src, graph.dst] = 1
    return adj


def merge(graphs: List[TemporalGraph]) -> TemporalGraph:
    """Union of several temporal graphs over the same node universe."""
    if not graphs:
        raise GraphFormatError("merge() requires at least one graph")
    n = max(g.num_nodes for g in graphs)
    big_t = max(g.num_timestamps for g in graphs)
    return TemporalGraph(
        n,
        np.concatenate([g.src for g in graphs]),
        np.concatenate([g.dst for g in graphs]),
        np.concatenate([g.t for g in graphs]),
        num_timestamps=big_t,
        validate=False,
    )
