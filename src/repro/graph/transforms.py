"""Temporal graph transformations and null models.

Temporal-network analysis calibrates metrics against *null models*: graphs
that keep some properties of the observed one and randomise the rest
(Holme & Saramaki's randomised reference models).  They answer "is this
statistic structural or an artifact?" and serve as sanity baselines for the
generator comparisons: a generator must at least beat the null model that
destroys the property being measured.

Provided transforms (all return new :class:`TemporalGraph` objects and never
mutate the input):

* :func:`shuffle_timestamps` -- keep the static multigraph, permute edge
  times (destroys temporal correlations, keeps per-snapshot edge counts
  when ``preserve_counts=True``);
* :func:`rewire_degree_preserving` -- per-snapshot directed double-edge
  swaps (keeps in/out degree sequences and timestamps, destroys triadic
  structure);
* :func:`perturb_edges` -- replace a fraction of edges with uniformly random
  ones (controlled noise injection for robustness experiments);
* :func:`reverse_time` -- reflect timestamps (growth becomes shrinkage);
* :func:`relabel_nodes` -- apply a node permutation (generators must be
  equivariant: statistics are invariant under relabeling);
* :func:`subsample_nodes` -- induced temporal subgraph on a node subset.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import GraphFormatError
from .temporal_graph import TemporalGraph


def shuffle_timestamps(
    graph: TemporalGraph,
    seed: Optional[int] = None,
    preserve_counts: bool = True,
) -> TemporalGraph:
    """Permute edge timestamps, keeping the static structure.

    With ``preserve_counts=True`` (the standard randomised-reference model)
    the multiset of timestamps is permuted across edges, so every snapshot
    keeps its edge count.  With ``preserve_counts=False`` each edge draws a
    fresh uniform timestamp.
    """
    rng = np.random.default_rng(seed)
    if preserve_counts:
        new_t = rng.permutation(graph.t)
    else:
        new_t = rng.integers(0, graph.num_timestamps, size=graph.num_edges)
    return TemporalGraph(
        graph.num_nodes, graph.src.copy(), graph.dst.copy(), new_t,
        num_timestamps=graph.num_timestamps, validate=False,
    )


def rewire_degree_preserving(
    graph: TemporalGraph,
    seed: Optional[int] = None,
    swaps_per_edge: float = 2.0,
) -> TemporalGraph:
    """Directed double-edge swaps within each snapshot.

    A swap picks two edges ``(a, b)`` and ``(c, d)`` of the same snapshot and
    replaces them with ``(a, d)`` and ``(c, b)`` unless that would create a
    self-loop.  In- and out-degree sequences per snapshot are exactly
    preserved; wedges survive, triangles do not.
    """
    if swaps_per_edge < 0:
        raise GraphFormatError(f"swaps_per_edge must be >= 0, got {swaps_per_edge}")
    rng = np.random.default_rng(seed)
    src = graph.src.copy()
    dst = graph.dst.copy()
    for timestamp in range(graph.num_timestamps):
        idx = np.where(graph.t == timestamp)[0]
        if idx.size < 2:
            continue
        attempts = int(np.ceil(swaps_per_edge * idx.size))
        picks_a = rng.integers(0, idx.size, size=attempts)
        picks_b = rng.integers(0, idx.size, size=attempts)
        for a_local, b_local in zip(picks_a, picks_b):
            i, j = idx[a_local], idx[b_local]
            if i == j:
                continue
            # Swap targets unless a self-loop would appear.
            if src[i] == dst[j] or src[j] == dst[i]:
                continue
            dst[i], dst[j] = dst[j], dst[i]
    return TemporalGraph(
        graph.num_nodes, src, dst, graph.t.copy(),
        num_timestamps=graph.num_timestamps, validate=False,
    )


def perturb_edges(
    graph: TemporalGraph,
    fraction: float,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Replace a uniform ``fraction`` of edges with random non-loop edges.

    The replacement edge keeps its timestamp, so the temporal activity
    profile is untouched while structure degrades smoothly -- the knob used
    by robustness experiments ("how fast does metric X respond to noise?").
    """
    if not 0.0 <= fraction <= 1.0:
        raise GraphFormatError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    src = graph.src.copy()
    dst = graph.dst.copy()
    count = int(round(fraction * graph.num_edges))
    if count and graph.num_nodes >= 2:
        chosen = rng.choice(graph.num_edges, size=count, replace=False)
        new_src = rng.integers(0, graph.num_nodes, size=count)
        new_dst = rng.integers(0, graph.num_nodes, size=count)
        loops = new_src == new_dst
        new_dst[loops] = (new_dst[loops] + 1) % graph.num_nodes
        src[chosen] = new_src
        dst[chosen] = new_dst
    return TemporalGraph(
        graph.num_nodes, src, dst, graph.t.copy(),
        num_timestamps=graph.num_timestamps, validate=False,
    )


def reverse_time(graph: TemporalGraph) -> TemporalGraph:
    """Reflect timestamps: ``t -> T - 1 - t`` (growth becomes shrinkage)."""
    new_t = graph.num_timestamps - 1 - graph.t
    return TemporalGraph(
        graph.num_nodes, graph.src.copy(), graph.dst.copy(), new_t,
        num_timestamps=graph.num_timestamps, validate=False,
    )


def relabel_nodes(
    graph: TemporalGraph, permutation: Sequence[int]
) -> TemporalGraph:
    """Apply a node-id permutation (``new_id = permutation[old_id]``)."""
    perm = np.asarray(permutation, dtype=np.int64).reshape(-1)
    if perm.size != graph.num_nodes:
        raise GraphFormatError(
            f"permutation must have length {graph.num_nodes}, got {perm.size}"
        )
    if not np.array_equal(np.sort(perm), np.arange(graph.num_nodes)):
        raise GraphFormatError("permutation must be a bijection on node ids")
    return TemporalGraph(
        graph.num_nodes, perm[graph.src], perm[graph.dst], graph.t.copy(),
        num_timestamps=graph.num_timestamps, validate=False,
    )


def subsample_nodes(
    graph: TemporalGraph, nodes: Sequence[int], relabel: bool = True
) -> TemporalGraph:
    """Induced temporal subgraph on ``nodes``.

    Keeps edges whose both endpoints are in ``nodes``.  With ``relabel=True``
    the kept nodes are compacted to ``0..k-1`` (in the order given);
    otherwise the original universe size is retained.
    """
    node_arr = np.asarray(nodes, dtype=np.int64).reshape(-1)
    if node_arr.size == 0:
        raise GraphFormatError("cannot subsample to an empty node set")
    if node_arr.min() < 0 or node_arr.max() >= graph.num_nodes:
        raise GraphFormatError(
            f"node ids must lie in [0, {graph.num_nodes}), "
            f"found [{node_arr.min()}, {node_arr.max()}]"
        )
    if np.unique(node_arr).size != node_arr.size:
        raise GraphFormatError("node subset contains duplicates")
    member = np.zeros(graph.num_nodes, dtype=bool)
    member[node_arr] = True
    keep = member[graph.src] & member[graph.dst]
    src, dst, t = graph.src[keep], graph.dst[keep], graph.t[keep]
    if relabel:
        mapping = np.full(graph.num_nodes, -1, dtype=np.int64)
        mapping[node_arr] = np.arange(node_arr.size)
        return TemporalGraph(
            node_arr.size, mapping[src], mapping[dst], t,
            num_timestamps=graph.num_timestamps, validate=False,
        )
    return TemporalGraph(
        graph.num_nodes, src, dst, t,
        num_timestamps=graph.num_timestamps, validate=False,
    )
