"""Validation of generated graphs against their observed reference.

Every generator in the repro promises a contract (same node universe, same
timestamp range, same edge budget).  :func:`validate_generated` checks that
contract and returns a structured report; the benchmark harness and the
property-based tests use it to fail fast on malformed generator output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .temporal_graph import TemporalGraph


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_generated`."""

    ok: bool = True
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def add_error(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)

    def add_warning(self, message: str) -> None:
        self.warnings.append(message)

    def __str__(self) -> str:
        lines = ["OK" if self.ok else "INVALID"]
        lines += [f"error: {e}" for e in self.errors]
        lines += [f"warning: {w}" for w in self.warnings]
        return "\n".join(lines)


def validate_generated(
    observed: TemporalGraph,
    generated: TemporalGraph,
    edge_budget_tolerance: float = 0.0,
    self_loop_warning: bool = True,
) -> ValidationReport:
    """Check a generated graph against the generator contract.

    Parameters
    ----------
    edge_budget_tolerance:
        Allowed relative deviation of the generated edge count from the
        observed one (``0.0`` = exact match required).
    self_loop_warning:
        Emit a warning (not an error) when the generated graph contains
        self-loops -- some baselines legitimately produce a few.
    """
    report = ValidationReport()
    if generated.num_nodes != observed.num_nodes:
        report.add_error(
            f"node universe mismatch: {generated.num_nodes} != {observed.num_nodes}"
        )
    if generated.num_timestamps != observed.num_timestamps:
        report.add_error(
            f"timestamp range mismatch: {generated.num_timestamps} != "
            f"{observed.num_timestamps}"
        )
    budget = observed.num_edges
    deviation = abs(generated.num_edges - budget) / max(budget, 1)
    if deviation > edge_budget_tolerance:
        report.add_error(
            f"edge budget violated: generated {generated.num_edges}, observed "
            f"{budget} (tolerance {edge_budget_tolerance:.0%})"
        )
    if generated.num_edges:
        for name, arr, upper in (
            ("src", generated.src, observed.num_nodes),
            ("dst", generated.dst, observed.num_nodes),
            ("t", generated.t, observed.num_timestamps),
        ):
            if arr.min() < 0 or arr.max() >= upper:
                report.add_error(
                    f"{name} out of range [0, {upper}): [{arr.min()}, {arr.max()}]"
                )
        loops = int(np.count_nonzero(generated.src == generated.dst))
        if loops and self_loop_warning:
            report.add_warning(f"{loops} self-loop edge(s) in generated graph")
        empty_t = int(
            np.count_nonzero(
                np.bincount(generated.t, minlength=generated.num_timestamps) == 0
            )
        )
        observed_empty = int(
            np.count_nonzero(
                np.bincount(observed.t, minlength=observed.num_timestamps) == 0
            )
        )
        if empty_t > observed_empty:
            report.add_warning(
                f"{empty_t} empty timestamp(s) in generated graph vs "
                f"{observed_empty} observed"
            )
    else:
        report.add_error("generated graph has no edges")
    return report
