"""Temporal random walks -- the substrate of the walk-based baselines.

TagGen, TGGAN, TIGGER and (statically) NetGAN all decompose the observed
graph into random walks and learn a sequence model over them.  This module
provides the shared walk machinery: time-respecting walk sampling, uniform
temporal walks within a window, and utilities to re-assemble a temporal graph
from a bag of generated walks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigError, GenerationError
from .temporal_graph import TemporalGraph


def sample_temporal_walk(
    graph: TemporalGraph,
    start_node: int,
    start_time: int,
    length: int,
    time_window: int,
    rng: np.random.Generator,
    time_respecting: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample one temporal walk of at most ``length`` nodes.

    Parameters
    ----------
    graph:
        Observed temporal graph.
    start_node, start_time:
        Starting temporal node.
    length:
        Maximum number of nodes in the walk (>= 1).
    time_window:
        Maximum |time difference| allowed per hop.
    time_respecting:
        When ``True`` hops may only move forward in time (TagGen-style
        temporal walks); otherwise any event in the window qualifies.

    Returns
    -------
    (nodes, times):
        Parallel arrays; the walk ends early if a node has no valid
        continuation.
    """
    if length < 1:
        raise ConfigError("walk length must be >= 1")
    nodes = [int(start_node)]
    times = [int(start_time)]
    current, current_t = int(start_node), int(start_time)
    for _ in range(length - 1):
        others, ev_times = graph.incident_events(current)
        if others.size == 0:
            break
        if time_respecting:
            lo = np.searchsorted(ev_times, current_t, side="left")
            hi = np.searchsorted(ev_times, current_t + time_window, side="right")
        else:
            lo = np.searchsorted(ev_times, current_t - time_window, side="left")
            hi = np.searchsorted(ev_times, current_t + time_window, side="right")
        if hi <= lo:
            break
        pick = int(rng.integers(lo, hi))
        current, current_t = int(others[pick]), int(ev_times[pick])
        nodes.append(current)
        times.append(current_t)
    return np.asarray(nodes, dtype=np.int64), np.asarray(times, dtype=np.int64)


def sample_walk_corpus(
    graph: TemporalGraph,
    num_walks: int,
    length: int,
    time_window: int,
    rng: np.random.Generator,
    time_respecting: bool = True,
    min_length: int = 2,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Sample a corpus of temporal walks with degree-weighted starts.

    Walks shorter than ``min_length`` (dead-end starts) are discarded and
    retried a bounded number of times, so the corpus size is deterministic
    unless the graph is pathologically disconnected.
    """
    if graph.num_edges == 0:
        raise GenerationError("cannot sample walks from an empty graph")
    degrees = graph.temporal_degrees().astype(np.float64).reshape(-1)
    probs = degrees / degrees.sum()
    corpus: List[Tuple[np.ndarray, np.ndarray]] = []
    attempts = 0
    max_attempts = num_walks * 20
    while len(corpus) < num_walks and attempts < max_attempts:
        attempts += 1
        flat = int(rng.choice(probs.size, p=probs))
        node, timestamp = flat // graph.num_timestamps, flat % graph.num_timestamps
        nodes, times = sample_temporal_walk(
            graph, node, timestamp, length, time_window, rng, time_respecting
        )
        if nodes.size >= min_length:
            corpus.append((nodes, times))
    if len(corpus) < num_walks:
        # Accept a smaller corpus rather than loop forever on sparse graphs.
        if not corpus:
            raise GenerationError("failed to sample any non-trivial temporal walk")
    return corpus


def walks_to_graph(
    walks: List[Tuple[np.ndarray, np.ndarray]],
    num_nodes: int,
    num_timestamps: int,
    target_edges: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> TemporalGraph:
    """Assemble a temporal graph from generated walks (TagGen-style).

    Consecutive walk positions become temporal edges stamped with the later
    endpoint's timestamp.  When ``target_edges`` is given, edges are sampled
    (by frequency, without replacement) down to the requested count so the
    generated graph matches the observed edge budget.
    """
    srcs: List[int] = []
    dsts: List[int] = []
    ts: List[int] = []
    for nodes, times in walks:
        for i in range(nodes.size - 1):
            srcs.append(int(nodes[i]))
            dsts.append(int(nodes[i + 1]))
            ts.append(int(max(times[i], times[i + 1])))
    if not srcs:
        raise GenerationError("generated walks contain no edges")
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    t = np.asarray(ts, dtype=np.int64)
    t = np.clip(t, 0, num_timestamps - 1)
    if target_edges is not None and src.size != target_edges:
        rng = rng if rng is not None else np.random.default_rng()
        if src.size > target_edges:
            pick = rng.choice(src.size, size=target_edges, replace=False)
        else:
            extra = rng.choice(src.size, size=target_edges - src.size, replace=True)
            pick = np.concatenate([np.arange(src.size), extra])
        src, dst, t = src[pick], dst[pick], t[pick]
    return TemporalGraph(num_nodes, src, dst, t, num_timestamps=num_timestamps, validate=False)
