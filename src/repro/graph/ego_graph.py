"""k-radius temporal ego-graph sampling (Algorithm 1 + Eq. 2).

The sampler produces *layered* ego-graphs: the centre temporal node sits in
layer 0 and layer ``l`` holds the temporal nodes reached after ``l`` hops.
Each hop records the (child -> parent) edges actually used, together with
their time offsets, because those are exactly the message-passing edges of
the k-bipartite computation graphs (Fig. 4).

Two behaviours from the paper are implemented faithfully:

* **Neighbour truncation** -- once a temporal node has more than ``threshold``
  first-order neighbours, ``threshold`` of them are sampled *with
  replacement* (``NodeSampling`` in Alg. 1), bounding the ego-graph size even
  in dense regions.
* **Degree-weighted initial sampling** (Eq. 2) -- centre nodes are drawn with
  probability proportional to their temporal degree, focusing training on
  representative local structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import ConfigError
from .neighborhood import first_order_neighbors
from .temporal_graph import TemporalGraph

TemporalNode = Tuple[int, int]


@dataclass
class EgoGraph:
    """A layered k-radius temporal ego-graph.

    Attributes
    ----------
    center:
        The centre temporal node ``(node_id, timestamp)``.
    layers:
        ``layers[l]`` is an ``(n_l, 2)`` array of ``(node_id, timestamp)``
        pairs at hop distance ``l``; ``layers[0]`` contains only the centre.
    edges:
        ``edges[l-1]`` (for hop ``l = 1..k``) is a ``(e_l, 2)`` array of
        local indices ``(child_idx_in_layer_l, parent_idx_in_layer_{l-1})``.
    """

    center: TemporalNode
    layers: List[np.ndarray] = field(default_factory=list)
    edges: List[np.ndarray] = field(default_factory=list)

    @property
    def radius(self) -> int:
        return len(self.layers) - 1

    @property
    def num_nodes(self) -> int:
        return int(sum(layer.shape[0] for layer in self.layers))

    def all_nodes(self) -> np.ndarray:
        """All ``(node_id, timestamp)`` pairs across layers (may repeat)."""
        return np.concatenate([layer for layer in self.layers], axis=0)


def sample_neighbors(
    neighbor_ids: np.ndarray,
    neighbor_times: np.ndarray,
    threshold: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """``NodeSampling`` of Alg. 1: truncate a neighbour set to ``threshold``.

    When the set is small enough it is returned untouched; otherwise
    ``threshold`` entries are drawn *with replacement*, exactly as the paper
    specifies ("we sample several times with replacement and get a limited
    number of nodes").
    """
    if threshold <= 0:
        raise ConfigError(f"neighbor threshold must be positive, got {threshold}")
    count = neighbor_ids.shape[0]
    if count <= threshold:
        return neighbor_ids, neighbor_times
    pick = rng.integers(0, count, size=threshold)
    return neighbor_ids[pick], neighbor_times[pick]


def sample_ego_graph(
    graph: TemporalGraph,
    center: TemporalNode,
    radius: int,
    threshold: int,
    time_window: int,
    rng: np.random.Generator,
) -> EgoGraph:
    """``k-EgoGraph`` of Alg. 1, returned in layered form.

    Parameters
    ----------
    graph:
        The observed temporal graph.
    center:
        Centre temporal node ``(node_id, timestamp)``.
    radius:
        Ego-graph radius ``k`` (number of stacked TGAT hops).
    threshold:
        Per-node neighbour truncation ``th``.
    time_window:
        Temporal window ``t_N`` of Definition 3.
    rng:
        Random generator (sampling with replacement above the threshold).
    """
    if radius < 1:
        raise ConfigError(f"ego-graph radius must be >= 1, got {radius}")
    layers: List[np.ndarray] = [np.array([center], dtype=np.int64)]
    edges: List[np.ndarray] = []
    for _ in range(radius):
        parent_layer = layers[-1]
        child_nodes: List[Tuple[int, int]] = []
        child_edges: List[Tuple[int, int]] = []
        seen: dict = {}
        for parent_idx in range(parent_layer.shape[0]):
            node, timestamp = int(parent_layer[parent_idx, 0]), int(parent_layer[parent_idx, 1])
            neigh, times = first_order_neighbors(graph, node, timestamp, time_window)
            neigh, times = sample_neighbors(neigh, times, threshold, rng)
            for v, t_v in zip(neigh.tolist(), times.tolist()):
                key = (v, t_v)
                # Deduplicate within the layer ("ignore repeated nodes each
                # time a new node is inserted into S_k", Sec. IV-C) but keep
                # one edge per distinct (child, parent) pair.
                child_idx = seen.get(key)
                if child_idx is None:
                    child_idx = len(child_nodes)
                    seen[key] = child_idx
                    child_nodes.append(key)
                child_edges.append((child_idx, parent_idx))
        if child_nodes:
            layer_arr = np.array(child_nodes, dtype=np.int64)
            edge_arr = np.unique(np.array(child_edges, dtype=np.int64), axis=0)
        else:
            layer_arr = np.zeros((0, 2), dtype=np.int64)
            edge_arr = np.zeros((0, 2), dtype=np.int64)
        layers.append(layer_arr)
        edges.append(edge_arr)
    return EgoGraph(center=center, layers=layers, edges=edges)


def initial_node_probabilities(graph: TemporalGraph, uniform: bool = False) -> np.ndarray:
    """Eq. 2 sampling distribution over temporal nodes, flattened to (n*T,).

    ``P(u^t) = deg(u^t) / sum_v deg(v^t)``; the ``uniform`` flag implements
    the TGAE-n ablation variant (uniform over *active* temporal nodes).
    """
    degrees = graph.temporal_degrees().astype(np.float64).reshape(-1)
    total = degrees.sum()
    if total == 0:
        raise ConfigError("graph has no edges; cannot build a sampling distribution")
    if uniform:
        active = (degrees > 0).astype(np.float64)
        return active / active.sum()
    return degrees / total


def sample_initial_nodes(
    graph: TemporalGraph,
    count: int,
    rng: np.random.Generator,
    uniform: bool = False,
) -> np.ndarray:
    """Draw ``count`` centre temporal nodes; returns an ``(count, 2)`` array.

    Sampling is with replacement from the Eq. 2 distribution (or the uniform
    variant), matching the per-epoch sampling of the set ``V_s``.
    """
    probs = initial_node_probabilities(graph, uniform=uniform)
    flat = rng.choice(probs.size, size=count, p=probs)
    nodes = flat // graph.num_timestamps
    times = flat % graph.num_timestamps
    return np.stack([nodes, times], axis=1).astype(np.int64)


def ego_graph_batch(
    graph: TemporalGraph,
    centers: np.ndarray,
    radius: int,
    threshold: int,
    time_window: int,
    rng: np.random.Generator,
) -> List[EgoGraph]:
    """Sample one ego-graph per centre row of ``centers`` (the data loader of Alg. 1)."""
    return [
        sample_ego_graph(
            graph,
            (int(centers[i, 0]), int(centers[i, 1])),
            radius=radius,
            threshold=threshold,
            time_window=time_window,
            rng=rng,
        )
        for i in range(centers.shape[0])
    ]
