"""Temporal neighbourhood queries (Definition 3 of the paper).

The temporal neighbourhood of a temporal node ``(v, t)`` contains temporal
nodes ``(u, t')`` whose shortest-path distance from ``v`` is at most ``d_N``
and whose time offset satisfies ``|t - t'| <= t_N``.  The ego-graph sampler
only ever needs the *first-order* neighbourhood (hops are taken one at a
time), which this module serves efficiently from the cached incidence
structure of :class:`~repro.graph.temporal_graph.TemporalGraph`.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from .temporal_graph import TemporalGraph

TemporalNode = Tuple[int, int]


def first_order_neighbors(
    graph: TemporalGraph, node: int, timestamp: int, time_window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """First-order temporal neighbours of ``(node, timestamp)``.

    Returns parallel arrays ``(neighbor_ids, neighbor_timestamps)`` of every
    event ``(u, t')`` with an edge between ``u`` and ``node`` at time ``t'``
    and ``|t' - timestamp| <= time_window``.  Events are returned per edge
    occurrence (multi-edges count multiple times), matching the temporal
    degree definition used by Eq. 2.
    """
    others, times = graph.incident_events(node)
    if others.size == 0:
        return others, times
    lo = np.searchsorted(times, timestamp - time_window, side="left")
    hi = np.searchsorted(times, timestamp + time_window, side="right")
    return others[lo:hi], times[lo:hi]


def temporal_neighborhood(
    graph: TemporalGraph,
    node: int,
    timestamp: int,
    max_hops: int,
    time_window: int,
) -> Set[TemporalNode]:
    """Full Definition-3 neighbourhood via breadth-first expansion.

    Exhaustive (no truncation); used by tests and by the non-truncating
    ablation variant TGAE-t.  The production sampler uses
    :mod:`repro.graph.ego_graph` which applies the threshold of Alg. 1.
    """
    start: TemporalNode = (int(node), int(timestamp))
    visited: Set[TemporalNode] = {start}
    frontier: List[TemporalNode] = [start]
    for _ in range(max_hops):
        next_frontier: List[TemporalNode] = []
        for u, t_u in frontier:
            neigh, times = first_order_neighbors(graph, u, t_u, time_window)
            for v, t_v in zip(neigh.tolist(), times.tolist()):
                # Enforce the global window around the *query* node so the
                # neighbourhood matches Definition 3 rather than drifting.
                if abs(t_v - timestamp) > time_window:
                    continue
                key = (v, t_v)
                if key not in visited:
                    visited.add(key)
                    next_frontier.append(key)
        frontier = next_frontier
        if not frontier:
            break
    visited.discard(start)
    return visited


def temporal_degree(graph: TemporalGraph, node: int, timestamp: int, time_window: int) -> int:
    """Number of first-order temporal neighbours (Eq. 2 weighting)."""
    neigh, _ = first_order_neighbors(graph, node, timestamp, time_window)
    return int(neigh.size)
