"""Continuous-time edge streams (the timestamped-edge view of Sec. III).

The paper models temporal graphs as snapshot series (Def. 2) but notes that
the representation "composed of timestamped edges and nodes ... can provide a
more granular view of the graph's evolution" and that the methodology "can be
extended to process and generate graphs that reflect the temporal changes
among all time stamps".  This module implements that granular view: an
:class:`EventStream` is an ordered sequence of directed edge events
``(src, dst, time)`` with real-valued times, convertible both ways to the
snapshot-based :class:`~repro.graph.temporal_graph.TemporalGraph` that the
TGAE pipeline consumes.

The conversion pair is the bridge between the two worlds:

* :func:`EventStream.to_temporal_graph` bins events into ``T`` snapshots
  (delegating to :mod:`repro.graph.discretize`);
* :func:`from_temporal_graph` smears a snapshot series back into continuous
  times, spreading each snapshot's events across its bin span.

The module also provides the continuous-time statistics used to check that a
generated stream keeps the temporal texture of the observed one:
inter-event times, the Goh-Barabasi burstiness coefficient, the memory
coefficient, and binned event-rate series.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import GraphFormatError
from .discretize import discretize_timestamps
from .temporal_graph import TemporalGraph

PathLike = Union[str, "os.PathLike[str]"]


class EventStream:
    """A directed temporal graph as a time-ordered stream of edge events.

    Parameters
    ----------
    num_nodes:
        Total number of nodes ``n``; node ids must lie in ``[0, n)``.
    src, dst:
        Parallel integer arrays of event sources and destinations.
    times:
        Parallel float array of event times.  Any real values are accepted;
        events are stored sorted by time (stable, so equal-time events keep
        their input order).
    validate:
        Whether to check id ranges and finiteness of times.
    """

    __slots__ = ("num_nodes", "src", "dst", "times")

    def __init__(
        self,
        num_nodes: int,
        src: Sequence[int],
        dst: Sequence[int],
        times: Sequence[float],
        validate: bool = True,
    ) -> None:
        self.num_nodes = int(num_nodes)
        src_arr = np.asarray(src, dtype=np.int64).reshape(-1)
        dst_arr = np.asarray(dst, dtype=np.int64).reshape(-1)
        t_arr = np.asarray(times, dtype=np.float64).reshape(-1)
        if not (src_arr.shape == dst_arr.shape == t_arr.shape):
            raise GraphFormatError(
                f"event arrays must be parallel: src={src_arr.shape}, "
                f"dst={dst_arr.shape}, times={t_arr.shape}"
            )
        if validate:
            if self.num_nodes <= 0:
                raise GraphFormatError(f"num_nodes must be positive, got {self.num_nodes}")
            if src_arr.size:
                for name, arr in (("src", src_arr), ("dst", dst_arr)):
                    low, high = int(arr.min()), int(arr.max())
                    if low < 0 or high >= self.num_nodes:
                        raise GraphFormatError(
                            f"{name} values must lie in [0, {self.num_nodes}), "
                            f"found [{low}, {high}]"
                        )
                if not np.all(np.isfinite(t_arr)):
                    raise GraphFormatError("event times must be finite")
        order = np.argsort(t_arr, kind="stable")
        self.src = src_arr[order]
        self.dst = dst_arr[order]
        self.times = t_arr[order]

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        """Total number of edge events."""
        return int(self.src.size)

    @property
    def time_span(self) -> Tuple[float, float]:
        """``(earliest, latest)`` event time; ``(0.0, 0.0)`` when empty."""
        if self.num_events == 0:
            return (0.0, 0.0)
        return (float(self.times[0]), float(self.times[-1]))

    @property
    def duration(self) -> float:
        """Length of the observation window spanned by the events."""
        lo, hi = self.time_span
        return hi - lo

    def __repr__(self) -> str:
        return f"EventStream(n={self.num_nodes}, events={self.num_events})"

    def __len__(self) -> int:
        return self.num_events

    def __iter__(self) -> Iterator[Tuple[int, int, float]]:
        for s, d, time in zip(self.src.tolist(), self.dst.tolist(), self.times.tolist()):
            yield (s, d, time)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventStream):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and self.num_events == other.num_events
            and bool(np.array_equal(self.src, other.src))
            and bool(np.array_equal(self.dst, other.dst))
            and bool(np.allclose(self.times, other.times))
        )

    def copy(self) -> "EventStream":
        """Deep copy of the event arrays."""
        return EventStream(
            self.num_nodes, self.src.copy(), self.dst.copy(), self.times.copy(),
            validate=False,
        )

    # ------------------------------------------------------------------
    # Slicing / transformation
    # ------------------------------------------------------------------
    def window(self, start: float, end: float) -> "EventStream":
        """Events with ``start <= time < end`` (same node universe)."""
        if end < start:
            raise GraphFormatError(f"window end {end} precedes start {start}")
        lo = np.searchsorted(self.times, start, side="left")
        hi = np.searchsorted(self.times, end, side="left")
        return EventStream(
            self.num_nodes, self.src[lo:hi], self.dst[lo:hi], self.times[lo:hi],
            validate=False,
        )

    def shifted(self, offset: float) -> "EventStream":
        """The same events with every time translated by ``offset``."""
        return EventStream(
            self.num_nodes, self.src, self.dst, self.times + float(offset),
            validate=False,
        )

    def rescaled(self, factor: float) -> "EventStream":
        """The same events with times multiplied by ``factor > 0``."""
        if factor <= 0:
            raise GraphFormatError(f"rescale factor must be positive, got {factor}")
        return EventStream(
            self.num_nodes, self.src, self.dst, self.times * float(factor),
            validate=False,
        )

    def events_of(self, node: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All events incident to ``node`` as ``(src, dst, times)``, time-sorted."""
        mask = (self.src == node) | (self.dst == node)
        return self.src[mask], self.dst[mask], self.times[mask]

    def neighbors_in_window(
        self, node: int, time: float, half_width: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Continuous-time first-order temporal neighbourhood (Def. 3 analogue).

        Returns ``(neighbor_ids, event_times)`` for every event incident to
        ``node`` with ``|event_time - time| <= half_width``.
        """
        if half_width < 0:
            raise GraphFormatError(f"half_width must be non-negative, got {half_width}")
        srcs, dsts, times = self.events_of(node)
        mask = np.abs(times - time) <= half_width
        others = np.where(srcs[mask] == node, dsts[mask], srcs[mask])
        return others, times[mask]

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_temporal_graph(
        self, num_bins: int, policy: str = "equal_width"
    ) -> TemporalGraph:
        """Bin this stream into a ``T = num_bins`` snapshot series."""
        if self.num_events == 0:
            return TemporalGraph(self.num_nodes, [], [], [], num_timestamps=num_bins)
        bins, _ = discretize_timestamps(self.times, num_bins, policy=policy)
        return TemporalGraph(self.num_nodes, self.src, self.dst, bins, num_timestamps=num_bins)


def merge(first: EventStream, second: EventStream) -> EventStream:
    """Union of two event streams over the same node universe."""
    if first.num_nodes != second.num_nodes:
        raise GraphFormatError(
            f"cannot merge streams over different node universes "
            f"({first.num_nodes} vs {second.num_nodes})"
        )
    return EventStream(
        first.num_nodes,
        np.concatenate([first.src, second.src]),
        np.concatenate([first.dst, second.dst]),
        np.concatenate([first.times, second.times]),
        validate=False,
    )


def from_temporal_graph(
    graph: TemporalGraph,
    bin_width: float = 1.0,
    spread: str = "uniform",
    seed: Optional[int] = None,
) -> EventStream:
    """Smear a snapshot series back into a continuous-time event stream.

    Each edge at discrete timestamp ``t`` receives a continuous time inside
    the half-open span ``[t * bin_width, (t + 1) * bin_width)``.

    Parameters
    ----------
    graph:
        The snapshot-based temporal graph to convert.
    bin_width:
        Time span covered by one snapshot.
    spread:
        ``"uniform"`` draws times i.i.d. uniformly inside each span (needs a
        ``seed`` for reproducibility); ``"start"`` places every event at its
        span's left edge, which makes the conversion deterministic and
        exactly invertible by equal-width re-binning.
    seed:
        RNG seed for ``spread="uniform"``.
    """
    if bin_width <= 0:
        raise GraphFormatError(f"bin_width must be positive, got {bin_width}")
    base = graph.t.astype(np.float64) * bin_width
    if spread == "start":
        times = base
    elif spread == "uniform":
        rng = np.random.default_rng(seed)
        times = base + rng.uniform(0.0, bin_width, size=graph.num_edges)
    else:
        raise GraphFormatError(f"unknown spread {spread!r}; options: uniform, start")
    return EventStream(graph.num_nodes, graph.src, graph.dst, times, validate=False)


# ----------------------------------------------------------------------
# Continuous-time statistics
# ----------------------------------------------------------------------
def inter_event_times(stream: EventStream, per: str = "global") -> np.ndarray:
    """Gaps between consecutive events.

    Parameters
    ----------
    stream:
        The event stream to analyse.
    per:
        ``"global"`` -- gaps over the whole time-ordered stream;
        ``"node"`` -- gaps between consecutive events *of each node*
        (both directions), concatenated over nodes;
        ``"pair"`` -- gaps between consecutive events of each ordered
        ``(src, dst)`` pair, concatenated over pairs.

    Returns an array of non-negative gaps (empty when there are fewer than
    two qualifying events).
    """
    if per == "global":
        if stream.num_events < 2:
            return np.empty(0, dtype=np.float64)
        return np.diff(stream.times)
    if per == "node":
        keys = np.concatenate([stream.src, stream.dst])
        times = np.concatenate([stream.times, stream.times])
    elif per == "pair":
        keys = stream.src * stream.num_nodes + stream.dst
        times = stream.times
    else:
        raise GraphFormatError(f"unknown per={per!r}; options: global, node, pair")
    if times.size < 2:
        return np.empty(0, dtype=np.float64)
    order = np.lexsort((times, keys))
    keys_sorted = keys[order]
    times_sorted = times[order]
    gaps = np.diff(times_sorted)
    same_key = keys_sorted[1:] == keys_sorted[:-1]
    return gaps[same_key]


def burstiness(gaps: Sequence[float]) -> float:
    """Goh-Barabasi burstiness coefficient ``B = (sigma - mu) / (sigma + mu)``.

    ``B = -1`` for perfectly regular streams, ``0`` for Poisson, ``-> 1`` for
    extremely bursty ones.  Returns ``0.0`` when fewer than two gaps exist or
    the gaps are all zero (degenerate stream).
    """
    arr = np.asarray(gaps, dtype=np.float64).reshape(-1)
    if arr.size < 2:
        return 0.0
    mu = float(arr.mean())
    sigma = float(arr.std())
    if mu + sigma == 0.0:
        return 0.0
    return (sigma - mu) / (sigma + mu)


def memory_coefficient(gaps: Sequence[float]) -> float:
    """Goh-Barabasi memory coefficient: correlation of consecutive gaps.

    ``M`` in ``[-1, 1]``; positive when long gaps follow long gaps.  Returns
    ``0.0`` when fewer than three gaps exist or either slice is constant.
    """
    arr = np.asarray(gaps, dtype=np.float64).reshape(-1)
    if arr.size < 3:
        return 0.0
    first, second = arr[:-1], arr[1:]
    std1, std2 = float(first.std()), float(second.std())
    if std1 == 0.0 or std2 == 0.0:
        return 0.0
    cov = float(((first - first.mean()) * (second - second.mean())).mean())
    return cov / (std1 * std2)


def event_rate_series(stream: EventStream, num_bins: int) -> np.ndarray:
    """Events per equal-width time bin across the stream's span."""
    if num_bins < 1:
        raise GraphFormatError(f"num_bins must be >= 1, got {num_bins}")
    if stream.num_events == 0:
        return np.zeros(num_bins, dtype=np.int64)
    bins, _ = discretize_timestamps(stream.times, num_bins, policy="equal_width")
    return np.bincount(bins, minlength=num_bins)


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def save_event_stream(stream: EventStream, path: PathLike, header: bool = True) -> None:
    """Write an event stream as ``src dst time`` lines (float times)."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(
                f"# event stream: n={stream.num_nodes} events={stream.num_events}\n"
            )
        for s, d, time in stream:
            handle.write(f"{s} {d} {time!r}\n")


def load_event_stream(path: PathLike, num_nodes: Optional[int] = None) -> EventStream:
    """Read ``src dst time`` lines into an :class:`EventStream`.

    Node ids are kept as-is when ``num_nodes`` is given (and validated
    against it), otherwise the universe size is inferred as ``max id + 1``.
    ``#``-prefixed lines are comments.
    """
    srcs, dsts, times = [], [], []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) != 3:
                raise GraphFormatError(
                    f"{path!s}:{lineno}: expected 'src dst time', got {text!r}"
                )
            try:
                srcs.append(int(parts[0]))
                dsts.append(int(parts[1]))
                times.append(float(parts[2]))
            except ValueError as exc:
                raise GraphFormatError(f"{path!s}:{lineno}: {exc}") from exc
    if not srcs:
        raise GraphFormatError(f"no events found in {path!s}")
    if num_nodes is None:
        num_nodes = max(max(srcs), max(dsts)) + 1
    return EventStream(num_nodes, srcs, dsts, times)
