"""Temporal graph data structures and sampling (Definitions 1-4, Alg. 1, Fig. 4)."""

from .bipartite import (
    BipartiteBatch,
    BipartiteLevel,
    PackedEgoBatch,
    PackedLevel,
    build_bipartite_batch,
    pack_ego_batch,
)
from .ego_graph import (
    EgoGraph,
    ego_graph_batch,
    initial_node_probabilities,
    sample_ego_graph,
    sample_initial_nodes,
    sample_neighbors,
)
from .discretize import (
    discretize_timestamps,
    edges_per_snapshot,
    from_continuous,
    rebin,
)
from .event_stream import (
    EventStream,
    burstiness,
    event_rate_series,
    from_temporal_graph,
    inter_event_times,
    load_event_stream,
    memory_coefficient,
    save_event_stream,
)
from .event_stream import merge as merge_streams
from .io import load_edge_list, save_edge_list
from .validation import ValidationReport, validate_generated
from .neighborhood import first_order_neighbors, temporal_degree, temporal_neighborhood
from .snapshot import Snapshot, cumulative_snapshots, snapshot_at
from .transforms import (
    perturb_edges,
    relabel_nodes,
    reverse_time,
    rewire_degree_preserving,
    shuffle_timestamps,
    subsample_nodes,
)
from .temporal_graph import TemporalGraph, dense_temporal_adjacency, merge
from .walks import sample_temporal_walk, sample_walk_corpus, walks_to_graph

__all__ = [
    "discretize_timestamps",
    "from_continuous",
    "rebin",
    "edges_per_snapshot",
    "validate_generated",
    "ValidationReport",
    "TemporalGraph",
    "dense_temporal_adjacency",
    "merge",
    "Snapshot",
    "cumulative_snapshots",
    "snapshot_at",
    "first_order_neighbors",
    "temporal_neighborhood",
    "temporal_degree",
    "EgoGraph",
    "sample_ego_graph",
    "sample_neighbors",
    "sample_initial_nodes",
    "initial_node_probabilities",
    "ego_graph_batch",
    "BipartiteBatch",
    "BipartiteLevel",
    "PackedEgoBatch",
    "PackedLevel",
    "build_bipartite_batch",
    "pack_ego_batch",
    "sample_temporal_walk",
    "sample_walk_corpus",
    "walks_to_graph",
    "load_edge_list",
    "save_edge_list",
    "EventStream",
    "merge_streams",
    "from_temporal_graph",
    "inter_event_times",
    "burstiness",
    "memory_coefficient",
    "event_rate_series",
    "save_event_stream",
    "load_event_stream",
    "shuffle_timestamps",
    "rewire_degree_preserving",
    "perturb_edges",
    "reverse_time",
    "relabel_nodes",
    "subsample_nodes",
]
