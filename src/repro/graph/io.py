"""Plain-text persistence for temporal graphs.

The on-disk format is the de-facto standard for public temporal network
datasets (SNAP et al.): one ``src dst timestamp`` triple per line, whitespace
separated, ``#``-prefixed comment lines ignored.  Loading re-indexes node ids
and timestamps to dense 0-based ranges, which is what every public loader for
these datasets does before modelling.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple, Union

import numpy as np

from ..errors import GraphFormatError
from .temporal_graph import TemporalGraph

PathLike = Union[str, "os.PathLike[str]"]


def save_edge_list(graph: TemporalGraph, path: PathLike, header: bool = True) -> None:
    """Write a temporal graph as a ``src dst t`` edge list."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(
                f"# temporal graph: n={graph.num_nodes} m={graph.num_edges} "
                f"T={graph.num_timestamps}\n"
            )
        for s, d, time in zip(graph.src.tolist(), graph.dst.tolist(), graph.t.tolist()):
            handle.write(f"{s} {d} {time}\n")


def load_edge_list(
    path: PathLike,
    num_nodes: Optional[int] = None,
    num_timestamps: Optional[int] = None,
    reindex: bool = True,
) -> TemporalGraph:
    """Read a ``src dst t`` edge list into a :class:`TemporalGraph`.

    Parameters
    ----------
    path:
        File of whitespace-separated triples; ``#`` lines are comments.
    num_nodes, num_timestamps:
        Optional explicit universe sizes (only valid with ``reindex=False``).
    reindex:
        Remap raw node ids to ``0..n-1`` and raw timestamps to dense
        ``0..T-1`` ranks (timestamps keep their order).
    """
    src_raw, dst_raw, t_raw = _read_triples(path)
    if src_raw.size == 0:
        raise GraphFormatError(f"no edges found in {path!s}")
    if reindex:
        node_ids, inverse = np.unique(np.concatenate([src_raw, dst_raw]), return_inverse=True)
        src = inverse[: src_raw.size]
        dst = inverse[src_raw.size :]
        times_unique, t = np.unique(t_raw, return_inverse=True)
        return TemporalGraph(
            node_ids.size, src, dst, t, num_timestamps=times_unique.size, validate=False
        )
    return TemporalGraph(
        num_nodes if num_nodes is not None else int(max(src_raw.max(), dst_raw.max())) + 1,
        src_raw,
        dst_raw,
        t_raw,
        num_timestamps=num_timestamps,
    )


def _read_triples(path: PathLike) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    srcs, dsts, ts = [], [], []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.replace(",", " ").split()
            if len(parts) < 3:
                raise GraphFormatError(
                    f"{path!s}:{line_no}: expected 'src dst t', got {line!r}"
                )
            try:
                srcs.append(int(float(parts[0])))
                dsts.append(int(float(parts[1])))
                ts.append(int(float(parts[2])))
            except ValueError as exc:
                raise GraphFormatError(f"{path!s}:{line_no}: non-numeric field in {line!r}") from exc
    return (
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(ts, dtype=np.int64),
    )
