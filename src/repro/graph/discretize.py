"""Continuous-time ingestion: binning raw timestamps into snapshots.

The public temporal-network datasets of Table II carry UNIX timestamps;
the paper models temporal graphs as series of snapshots (Def. 2), obtained
by aggregating timestamps into ``T`` bins.  This module provides the two
standard binning policies plus helpers to inspect the result:

* **equal-width** -- bins of equal time span (calendar-like periods);
* **equal-frequency** -- bins holding (approximately) equal numbers of
  edges, which is what evaluation protocols use on bursty networks so no
  snapshot is empty.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import GraphFormatError
from .temporal_graph import TemporalGraph


def discretize_timestamps(
    raw_times: Sequence[float],
    num_bins: int,
    policy: str = "equal_width",
) -> Tuple[np.ndarray, np.ndarray]:
    """Map raw (continuous) timestamps to integer bins ``0..num_bins-1``.

    Returns ``(bins, boundaries)`` where ``boundaries`` has
    ``num_bins + 1`` entries (``boundaries[i] <= bin i < boundaries[i+1]``).
    """
    times = np.asarray(raw_times, dtype=np.float64).reshape(-1)
    if times.size == 0:
        raise GraphFormatError("cannot discretise an empty timestamp array")
    if num_bins < 1:
        raise GraphFormatError(f"num_bins must be >= 1, got {num_bins}")
    lo, hi = float(times.min()), float(times.max())
    if policy == "equal_width":
        if hi == lo:
            boundaries = np.linspace(lo, lo + 1.0, num_bins + 1)
        else:
            boundaries = np.linspace(lo, hi, num_bins + 1)
    elif policy == "equal_frequency":
        quantiles = np.linspace(0.0, 1.0, num_bins + 1)
        boundaries = np.quantile(times, quantiles)
        # Strictly increasing boundaries (ties collapse bins otherwise).
        for i in range(1, boundaries.size):
            if boundaries[i] <= boundaries[i - 1]:
                boundaries[i] = boundaries[i - 1] + 1e-9
    else:
        raise GraphFormatError(
            f"unknown policy {policy!r}; options: equal_width, equal_frequency"
        )
    bins = np.clip(np.searchsorted(boundaries, times, side="right") - 1, 0, num_bins - 1)
    return bins.astype(np.int64), boundaries


def from_continuous(
    num_nodes: int,
    src: Sequence[int],
    dst: Sequence[int],
    raw_times: Sequence[float],
    num_bins: int,
    policy: str = "equal_width",
) -> TemporalGraph:
    """Build a :class:`TemporalGraph` from continuously-timestamped edges."""
    bins, _ = discretize_timestamps(raw_times, num_bins, policy=policy)
    return TemporalGraph(num_nodes, src, dst, bins, num_timestamps=num_bins)


def edges_per_snapshot(graph: TemporalGraph) -> np.ndarray:
    """Edge count per timestamp (useful to check binning balance)."""
    return np.bincount(graph.t, minlength=graph.num_timestamps)


def rebin(graph: TemporalGraph, num_bins: int, policy: str = "equal_width") -> TemporalGraph:
    """Re-discretise an existing temporal graph to a different ``T``.

    The integer timestamps are treated as the continuous times; this is the
    coarsening operation used to trade temporal resolution for speed.
    """
    return from_continuous(
        graph.num_nodes, graph.src, graph.dst, graph.t.astype(np.float64),
        num_bins, policy=policy,
    )
