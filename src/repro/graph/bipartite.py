"""k-bipartite computation graphs (Fig. 4 of the paper).

All ego-graphs of a mini-batch are merged, layer by layer, into ``k``
bipartite graphs.  Level ``l`` connects source temporal nodes at hop ``l``
to target temporal nodes at hop ``l-1``; the encoder then runs one TGAT
layer per level, so every target representation in a level is computed
concurrently -- the GPU-friendly parallel training strategy that reduces the
number of sequential computation steps from ``O(nT)`` to ``O(nT / n_s)``.

Two details matter for correctness:

* **Deduplication** -- a temporal node appearing in several ego-graphs (or
  several times in one) is stored once per level, so repeated work is
  eliminated exactly as Sec. IV-C describes.
* **Self-loops / nesting** -- every level-``l-1`` node is also injected into
  level ``l`` with a zero-offset self-edge ("we added self-loops to all
  temporal nodes to pass messages to themselves"), which guarantees each
  target can see its own previous representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import GraphFormatError
from .ego_graph import EgoGraph

TemporalNode = Tuple[int, int]


@dataclass
class PackedLevel:
    """Padded edge tensors of one bipartite level across a batch of egos.

    All arrays are ``(batch, max_edges)``; ``src_index[b, e]`` points into
    ego ``b``'s padded level-``l`` node table and ``dst_index[b, e]`` into
    its level-``l-1`` table.  Entries with ``edge_mask[b, e] == False`` are
    padding and must not contribute messages.
    """

    src_index: np.ndarray
    dst_index: np.ndarray
    delta_t: np.ndarray
    edge_mask: np.ndarray

    @property
    def num_edges(self) -> int:
        """Total number of *real* (unmasked) edges in the level."""
        return int(self.edge_mask.sum())


@dataclass
class PackedEgoBatch:
    """A batch of layered ego-graphs in padded, ego-parallel bipartite form.

    Unlike :class:`BipartiteBatch` (which merges and deduplicates temporal
    nodes *across* ego-graphs, so a shared node aggregates messages from
    neighbours sampled in other egos), a packed batch keeps every ego-graph
    independent: encoding a packed batch is numerically equivalent to
    encoding each ego-graph on its own, just vectorised over the leading
    batch dimension.  This is the fast path used by training minibatches and
    the Sec. IV-G score-matrix row construction.

    Attributes
    ----------
    level_nodes:
        ``level_nodes[l]`` is ``(batch, n_l, 2)`` of padded
        ``(node_id, timestamp)`` pairs at hop ``l``; padding rows are zeros.
    node_mask:
        ``node_mask[l]`` is ``(batch, n_l)`` with ``True`` on real rows.
    levels:
        ``levels[l-1]`` holds the padded edges from level ``l`` sources to
        level ``l-1`` targets.
    center_index:
        ``(batch,)`` row of each ego's centre inside its level-0 table
        (always 0: level 0 holds exactly the centre).
    """

    level_nodes: List[np.ndarray]
    node_mask: List[np.ndarray]
    levels: List[PackedLevel]
    center_index: np.ndarray

    @property
    def radius(self) -> int:
        """Ego-graph radius ``k`` (number of bipartite levels)."""
        return len(self.levels)

    @property
    def batch_size(self) -> int:
        """Number of ego-graphs packed into the batch."""
        return int(self.level_nodes[0].shape[0])

    @property
    def num_centers(self) -> int:
        """Alias of :attr:`batch_size` (one centre per ego-graph)."""
        return self.batch_size

    @property
    def center_nodes(self) -> np.ndarray:
        """``(batch, 2)`` array of centre ``(node_id, timestamp)`` pairs."""
        return self.level_nodes[0][np.arange(self.batch_size), self.center_index]


def _pack_single_ego(
    ego: EgoGraph, key_mod: int
) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
    """Nested per-level node tables and edge lists for one ego-graph.

    Replicates the single-ego semantics of :func:`build_bipartite_batch`
    (within-ego deduplication, level nesting, self-loop edges) with
    vectorised ``np.unique`` interning instead of per-node dict lookups.
    """
    tables: List[np.ndarray] = [ego.layers[0].reshape(1, 2).astype(np.int64)]
    layer_maps: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    edge_src: List[np.ndarray] = []
    edge_dst: List[np.ndarray] = []
    for level in range(1, ego.radius + 1):
        layer = ego.layers[level].reshape(-1, 2)
        prev = tables[level - 1]
        n_layer = layer.shape[0]
        combined = np.concatenate([layer, prev], axis=0)
        keys = combined[:, 0] * key_mod + combined[:, 1]
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        table = np.stack([unique_keys // key_mod, unique_keys % key_mod], axis=1)
        layer_map = inverse[:n_layer]
        nest_map = inverse[n_layer:]
        edges = ego.edges[level - 1].reshape(-1, 2)
        sampled_src = layer_map[edges[:, 0]]
        sampled_dst = layer_maps[level - 1][edges[:, 1]]
        # Nesting self-loops: every level-(l-1) node receives its own
        # previous representation through a zero-offset self edge.
        edge_src.append(np.concatenate([sampled_src, nest_map]))
        edge_dst.append(
            np.concatenate([sampled_dst, np.arange(prev.shape[0], dtype=np.int64)])
        )
        tables.append(table)
        layer_maps.append(layer_map)
    return tables, edge_src, edge_dst


def pack_ego_batch(ego_graphs: Sequence[EgoGraph]) -> PackedEgoBatch:
    """Pack ego-graphs into one padded, ego-parallel k-bipartite batch.

    Each ego-graph keeps its own (deduplicated, nested) node tables; tables
    and edge lists are right-padded to the batch maximum per level so the
    encoder can run one vectorised forward over the whole batch.  Encoding
    the result matches encoding each ego-graph individually, which makes
    this the exact batched counterpart of the per-node hot path.
    """
    if not ego_graphs:
        raise GraphFormatError("cannot pack a batch of zero ego-graphs")
    radius = ego_graphs[0].radius
    if any(eg.radius != radius for eg in ego_graphs):
        raise GraphFormatError("all ego-graphs in a batch must share the same radius")
    max_time = 0
    for ego in ego_graphs:
        for layer in ego.layers:
            if layer.size:
                max_time = max(max_time, int(layer[:, 1].max()))
    key_mod = max_time + 1

    packed = [_pack_single_ego(ego, key_mod) for ego in ego_graphs]
    batch = len(packed)

    level_nodes: List[np.ndarray] = []
    node_mask: List[np.ndarray] = []
    for level in range(radius + 1):
        width = max(tables[level].shape[0] for tables, _, _ in packed)
        nodes = np.zeros((batch, width, 2), dtype=np.int64)
        mask = np.zeros((batch, width), dtype=bool)
        for b, (tables, _, _) in enumerate(packed):
            rows = tables[level].shape[0]
            nodes[b, :rows] = tables[level]
            mask[b, :rows] = True
        level_nodes.append(nodes)
        node_mask.append(mask)

    levels: List[PackedLevel] = []
    for level in range(1, radius + 1):
        width = max(src[level - 1].shape[0] for _, src, _ in packed)
        src_index = np.zeros((batch, width), dtype=np.int64)
        dst_index = np.zeros((batch, width), dtype=np.int64)
        edge_mask = np.zeros((batch, width), dtype=bool)
        for b, (_, src, dst) in enumerate(packed):
            count = src[level - 1].shape[0]
            src_index[b, :count] = src[level - 1]
            dst_index[b, :count] = dst[level - 1]
            edge_mask[b, :count] = True
        t_src = np.take_along_axis(level_nodes[level][:, :, 1], src_index, axis=1)
        t_dst = np.take_along_axis(level_nodes[level - 1][:, :, 1], dst_index, axis=1)
        delta_t = np.where(edge_mask, (t_dst - t_src).astype(np.float64), 0.0)
        levels.append(
            PackedLevel(
                src_index=src_index,
                dst_index=dst_index,
                delta_t=delta_t,
                edge_mask=edge_mask,
            )
        )
    return PackedEgoBatch(
        level_nodes=level_nodes,
        node_mask=node_mask,
        levels=levels,
        center_index=np.zeros(batch, dtype=np.int64),
    )


@dataclass
class BipartiteLevel:
    """Edges of one bipartite computation graph (hop ``l``).

    ``src_index[e]`` points into the level-``l`` node table and
    ``dst_index[e]`` into the level-``l-1`` table; ``delta_t[e]`` is the time
    offset ``t_dst - t_src`` fed to the temporal encoding.
    """

    src_index: np.ndarray
    dst_index: np.ndarray
    delta_t: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.src_index.size)


@dataclass
class BipartiteBatch:
    """A merged mini-batch of ego-graphs in layered bipartite form.

    Attributes
    ----------
    level_nodes:
        ``level_nodes[l]`` is an ``(n_l, 2)`` array of distinct
        ``(node_id, timestamp)`` pairs at hop ``l`` (level 0 = centres).
        Levels are nested: every level-``l-1`` node also appears in level
        ``l``.
    levels:
        ``levels[l-1]`` holds the edges from level ``l`` sources to level
        ``l-1`` targets.
    center_index:
        For each ego-graph in the original batch, the row of its centre in
        ``level_nodes[0]``.
    """

    level_nodes: List[np.ndarray]
    levels: List[BipartiteLevel]
    center_index: np.ndarray

    @property
    def radius(self) -> int:
        return len(self.levels)

    @property
    def num_centers(self) -> int:
        return int(self.level_nodes[0].shape[0])


def build_bipartite_batch(ego_graphs: Sequence[EgoGraph]) -> BipartiteBatch:
    """Merge ego-graphs into the k-bipartite computation graphs of Fig. 4."""
    if not ego_graphs:
        raise GraphFormatError("cannot build a bipartite batch from zero ego-graphs")
    radius = ego_graphs[0].radius
    if any(eg.radius != radius for eg in ego_graphs):
        raise GraphFormatError("all ego-graphs in a batch must share the same radius")

    # ------------------------------------------------------------------
    # Level 0: deduplicated centres.
    # ------------------------------------------------------------------
    index_maps: List[Dict[TemporalNode, int]] = [dict() for _ in range(radius + 1)]
    node_tables: List[List[TemporalNode]] = [[] for _ in range(radius + 1)]

    def intern(level: int, node: TemporalNode) -> int:
        idx = index_maps[level].get(node)
        if idx is None:
            idx = len(node_tables[level])
            index_maps[level][node] = idx
            node_tables[level].append(node)
        return idx

    center_index = np.array(
        [intern(0, (int(eg.center[0]), int(eg.center[1]))) for eg in ego_graphs],
        dtype=np.int64,
    )

    # ------------------------------------------------------------------
    # Levels 1..k: union of per-ego layers, then nesting self-loops.
    # ------------------------------------------------------------------
    edge_sets: List[set] = [set() for _ in range(radius)]
    for eg in ego_graphs:
        # Per-ego local-index -> batch-index maps, built level by level.
        local_maps: List[np.ndarray] = []
        layer0 = eg.layers[0]
        local_maps.append(
            np.array([index_maps[0][(int(layer0[0, 0]), int(layer0[0, 1]))]], dtype=np.int64)
        )
        for level in range(1, radius + 1):
            layer = eg.layers[level]
            mapped = np.array(
                [intern(level, (int(layer[i, 0]), int(layer[i, 1]))) for i in range(layer.shape[0])],
                dtype=np.int64,
            )
            local_maps.append(mapped)
            for child_local, parent_local in eg.edges[level - 1]:
                src_batch = int(mapped[child_local])
                dst_batch = int(local_maps[level - 1][parent_local])
                edge_sets[level - 1].add((src_batch, dst_batch))

    # Nesting: inject each level-(l-1) node into level l and add a self edge.
    self_edges: List[List[Tuple[int, int]]] = [[] for _ in range(radius)]
    for level in range(1, radius + 1):
        for node, dst_idx in list(index_maps[level - 1].items()):
            src_idx = intern(level, node)
            self_edges[level - 1].append((src_idx, dst_idx))

    level_nodes = [np.array(table, dtype=np.int64).reshape(-1, 2) for table in node_tables]
    levels: List[BipartiteLevel] = []
    for level in range(1, radius + 1):
        pairs = sorted(edge_sets[level - 1]) + self_edges[level - 1]
        arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
        src_idx, dst_idx = arr[:, 0], arr[:, 1]
        t_src = level_nodes[level][src_idx, 1]
        t_dst = level_nodes[level - 1][dst_idx, 1]
        levels.append(
            BipartiteLevel(
                src_index=src_idx,
                dst_index=dst_idx,
                delta_t=(t_dst - t_src).astype(np.float64),
            )
        )
    return BipartiteBatch(level_nodes=level_nodes, levels=levels, center_index=center_index)
