"""k-bipartite computation graphs (Fig. 4 of the paper).

All ego-graphs of a mini-batch are merged, layer by layer, into ``k``
bipartite graphs.  Level ``l`` connects source temporal nodes at hop ``l``
to target temporal nodes at hop ``l-1``; the encoder then runs one TGAT
layer per level, so every target representation in a level is computed
concurrently -- the GPU-friendly parallel training strategy that reduces the
number of sequential computation steps from ``O(nT)`` to ``O(nT / n_s)``.

Two details matter for correctness:

* **Deduplication** -- a temporal node appearing in several ego-graphs (or
  several times in one) is stored once per level, so repeated work is
  eliminated exactly as Sec. IV-C describes.
* **Self-loops / nesting** -- every level-``l-1`` node is also injected into
  level ``l`` with a zero-offset self-edge ("we added self-loops to all
  temporal nodes to pass messages to themselves"), which guarantees each
  target can see its own previous representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import GraphFormatError
from .ego_graph import EgoGraph

TemporalNode = Tuple[int, int]


@dataclass
class BipartiteLevel:
    """Edges of one bipartite computation graph (hop ``l``).

    ``src_index[e]`` points into the level-``l`` node table and
    ``dst_index[e]`` into the level-``l-1`` table; ``delta_t[e]`` is the time
    offset ``t_dst - t_src`` fed to the temporal encoding.
    """

    src_index: np.ndarray
    dst_index: np.ndarray
    delta_t: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.src_index.size)


@dataclass
class BipartiteBatch:
    """A merged mini-batch of ego-graphs in layered bipartite form.

    Attributes
    ----------
    level_nodes:
        ``level_nodes[l]`` is an ``(n_l, 2)`` array of distinct
        ``(node_id, timestamp)`` pairs at hop ``l`` (level 0 = centres).
        Levels are nested: every level-``l-1`` node also appears in level
        ``l``.
    levels:
        ``levels[l-1]`` holds the edges from level ``l`` sources to level
        ``l-1`` targets.
    center_index:
        For each ego-graph in the original batch, the row of its centre in
        ``level_nodes[0]``.
    """

    level_nodes: List[np.ndarray]
    levels: List[BipartiteLevel]
    center_index: np.ndarray

    @property
    def radius(self) -> int:
        return len(self.levels)

    @property
    def num_centers(self) -> int:
        return int(self.level_nodes[0].shape[0])


def build_bipartite_batch(ego_graphs: Sequence[EgoGraph]) -> BipartiteBatch:
    """Merge ego-graphs into the k-bipartite computation graphs of Fig. 4."""
    if not ego_graphs:
        raise GraphFormatError("cannot build a bipartite batch from zero ego-graphs")
    radius = ego_graphs[0].radius
    if any(eg.radius != radius for eg in ego_graphs):
        raise GraphFormatError("all ego-graphs in a batch must share the same radius")

    # ------------------------------------------------------------------
    # Level 0: deduplicated centres.
    # ------------------------------------------------------------------
    index_maps: List[Dict[TemporalNode, int]] = [dict() for _ in range(radius + 1)]
    node_tables: List[List[TemporalNode]] = [[] for _ in range(radius + 1)]

    def intern(level: int, node: TemporalNode) -> int:
        idx = index_maps[level].get(node)
        if idx is None:
            idx = len(node_tables[level])
            index_maps[level][node] = idx
            node_tables[level].append(node)
        return idx

    center_index = np.array(
        [intern(0, (int(eg.center[0]), int(eg.center[1]))) for eg in ego_graphs],
        dtype=np.int64,
    )

    # ------------------------------------------------------------------
    # Levels 1..k: union of per-ego layers, then nesting self-loops.
    # ------------------------------------------------------------------
    edge_sets: List[set] = [set() for _ in range(radius)]
    for eg in ego_graphs:
        # Per-ego local-index -> batch-index maps, built level by level.
        local_maps: List[np.ndarray] = []
        layer0 = eg.layers[0]
        local_maps.append(
            np.array([index_maps[0][(int(layer0[0, 0]), int(layer0[0, 1]))]], dtype=np.int64)
        )
        for level in range(1, radius + 1):
            layer = eg.layers[level]
            mapped = np.array(
                [intern(level, (int(layer[i, 0]), int(layer[i, 1]))) for i in range(layer.shape[0])],
                dtype=np.int64,
            )
            local_maps.append(mapped)
            for child_local, parent_local in eg.edges[level - 1]:
                src_batch = int(mapped[child_local])
                dst_batch = int(local_maps[level - 1][parent_local])
                edge_sets[level - 1].add((src_batch, dst_batch))

    # Nesting: inject each level-(l-1) node into level l and add a self edge.
    self_edges: List[List[Tuple[int, int]]] = [[] for _ in range(radius)]
    for level in range(1, radius + 1):
        for node, dst_idx in list(index_maps[level - 1].items()):
            src_idx = intern(level, node)
            self_edges[level - 1].append((src_idx, dst_idx))

    level_nodes = [np.array(table, dtype=np.int64).reshape(-1, 2) for table in node_tables]
    levels: List[BipartiteLevel] = []
    for level in range(1, radius + 1):
        pairs = sorted(edge_sets[level - 1]) + self_edges[level - 1]
        arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
        src_idx, dst_idx = arr[:, 0], arr[:, 1]
        t_src = level_nodes[level][src_idx, 1]
        t_dst = level_nodes[level - 1][dst_idx, 1]
        levels.append(
            BipartiteLevel(
                src_index=src_idx,
                dst_index=dst_idx,
                delta_t=(t_dst - t_src).astype(np.float64),
            )
        )
    return BipartiteBatch(level_nodes=level_nodes, levels=levels, center_index=center_index)
