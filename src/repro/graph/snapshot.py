"""Static snapshot views of a temporal graph.

Evaluation (Sec. V) compares *cumulative* snapshots: all edges from the
initial timestamp up to ``t``.  :class:`Snapshot` is a light immutable static
directed graph over the full node universe, with conversions to scipy sparse
adjacency and networkx for metric computation.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx
import numpy as np
import scipy.sparse as sp

from ..errors import GraphFormatError
from .temporal_graph import TemporalGraph


class Snapshot:
    """A static directed graph ``G_t`` over ``num_nodes`` nodes."""

    __slots__ = ("num_nodes", "src", "dst", "_adjacency", "_undirected")

    def __init__(self, num_nodes: int, src: np.ndarray, dst: np.ndarray) -> None:
        self.num_nodes = int(num_nodes)
        self.src = np.asarray(src, dtype=np.int64).reshape(-1)
        self.dst = np.asarray(dst, dtype=np.int64).reshape(-1)
        if self.src.shape != self.dst.shape:
            raise GraphFormatError("snapshot src/dst must be parallel arrays")
        self._adjacency: Optional[sp.csr_matrix] = None
        self._undirected: Optional[sp.csr_matrix] = None

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    def __repr__(self) -> str:
        return f"Snapshot(n={self.num_nodes}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        """Directed binary adjacency as a cached scipy CSR matrix.

        Multi-edges are always deduplicated to 1.0 -- the cached matrix is
        shared by every downstream consumer (undirected view, degrees,
        metrics, baselines), so it must not depend on call-site flags.
        """
        if self._adjacency is None:
            data = np.ones(self.num_edges, dtype=np.float64)
            mat = sp.coo_matrix(
                (data, (self.src, self.dst)), shape=(self.num_nodes, self.num_nodes)
            ).tocsr()
            mat.data = np.minimum(mat.data, 1.0)
            self._adjacency = mat
        return self._adjacency

    def undirected_adjacency(self) -> sp.csr_matrix:
        """Symmetrised binary adjacency, built once and shared.

        Every undirected statistic (clustering, assortativity, density,
        spectra) reads this cached CSR, so a snapshot symmetrises its edge
        list exactly once however many metrics are computed on it.
        """
        if self._undirected is None:
            adj = self.adjacency()
            sym = adj.maximum(adj.T)
            sym.setdiag(0)
            sym.eliminate_zeros()
            self._undirected = sym.tocsr()
        return self._undirected

    def to_networkx(self, directed: bool = True) -> nx.Graph:
        """Convert to a networkx graph over the *active* nodes only."""
        graph: nx.Graph = nx.DiGraph() if directed else nx.Graph()
        graph.add_edges_from(zip(self.src.tolist(), self.dst.tolist()))
        return graph

    # ------------------------------------------------------------------
    # Degree views
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Undirected degree per node (unique neighbours, self-loops ignored)."""
        sym = self.undirected_adjacency()
        return np.asarray(sym.sum(axis=1)).reshape(-1)

    def active_nodes(self) -> np.ndarray:
        """Nodes that participate in at least one edge."""
        return np.unique(np.concatenate([self.src, self.dst])) if self.num_edges else np.array(
            [], dtype=np.int64
        )


def cumulative_snapshots(graph: TemporalGraph) -> List[Snapshot]:
    """Build the paper's evaluation sequence: snapshot ``t`` holds all edges with time <= t."""
    result: List[Snapshot] = []
    order = np.argsort(graph.t, kind="stable")
    sorted_t = graph.t[order]
    bounds = np.searchsorted(sorted_t, np.arange(graph.num_timestamps + 1), side="right")
    # bounds[t] = number of edges with timestamp <= t (using side='right' on value t).
    cut = np.searchsorted(sorted_t, np.arange(graph.num_timestamps), side="right")
    for timestamp in range(graph.num_timestamps):
        sel = order[: cut[timestamp]]
        result.append(Snapshot(graph.num_nodes, graph.src[sel], graph.dst[sel]))
    return result


def snapshot_at(graph: TemporalGraph, timestamp: int) -> Snapshot:
    """Single cumulative snapshot at ``timestamp``."""
    if not 0 <= timestamp < graph.num_timestamps:
        raise GraphFormatError(
            f"timestamp {timestamp} outside [0, {graph.num_timestamps})"
        )
    src, dst = graph.edges_until(timestamp)
    return Snapshot(graph.num_nodes, src, dst)
