"""Batched-vs-sequential equivalence of the ego-graph encoding pipeline.

The padded ego-parallel hot path (``pack_ego_batch`` + ``encode_batch``)
must be a pure vectorisation: same centre representations as encoding each
ego-graph on its own, same sampling distribution as the per-row generation
path, and a guarded degenerate-row fallback that can never divide by zero
or emit a forbidden index.
"""

import numpy as np
import pytest

from repro.core import EgoGraphSampler, TGAEEncoder, TGAEGenerator, TGAEModel, fast_config
from repro.core.generator import (
    _sample_rows_without_replacement,
    _sample_without_replacement,
)
from repro.errors import GraphFormatError
from repro.graph import (
    TemporalGraph,
    build_bipartite_batch,
    ego_graph_batch,
    pack_ego_batch,
)
from repro.nn import TemporalGraphAttention


def toy_graph(num_nodes=15, num_edges=70, num_timestamps=5, seed=0):
    rng = np.random.default_rng(seed)
    return TemporalGraph(
        num_nodes,
        rng.integers(0, num_nodes, num_edges),
        rng.integers(0, num_nodes, num_edges),
        np.sort(rng.integers(0, num_timestamps, num_edges)),
        num_timestamps=num_timestamps,
    )


def sample_egos(graph, config, count=10, seed=1):
    sampler = EgoGraphSampler(graph, config, np.random.default_rng(seed))
    centers = sampler.sample_centers(count)
    egos = ego_graph_batch(
        graph,
        centers,
        radius=config.radius,
        threshold=config.neighbor_threshold,
        time_window=config.time_window,
        rng=np.random.default_rng(seed + 1),
    )
    return centers, egos


class TestPackEgoBatch:
    def test_structure(self):
        g = toy_graph()
        config = fast_config()
        centers, egos = sample_egos(g, config, count=8)
        packed = pack_ego_batch(egos)
        assert packed.radius == config.radius
        assert packed.batch_size == 8
        assert packed.num_centers == 8
        np.testing.assert_array_equal(packed.center_nodes, centers)
        for level in range(config.radius + 1):
            nodes = packed.level_nodes[level]
            mask = packed.node_mask[level]
            assert nodes.shape[:2] == mask.shape
            # Padding rows are zeroed.
            assert (nodes[~mask] == 0).all()
        for level in packed.levels:
            assert level.src_index.shape == level.dst_index.shape
            assert level.edge_mask.shape == level.src_index.shape
            assert level.num_edges == int(level.edge_mask.sum())
            # Real edges have zero-padded delta_t only where masked.
            assert (level.delta_t[~level.edge_mask] == 0).all()

    def test_matches_single_ego_bipartite_counts(self):
        g = toy_graph()
        config = fast_config()
        _, egos = sample_egos(g, config, count=6)
        packed = pack_ego_batch(egos)
        for b, ego in enumerate(egos):
            merged = build_bipartite_batch([ego])
            for level in range(config.radius + 1):
                assert int(packed.node_mask[level][b].sum()) == merged.level_nodes[level].shape[0]
            for level in range(config.radius):
                assert int(packed.levels[level].edge_mask[b].sum()) == merged.levels[level].num_edges

    def test_empty_batch_rejected(self):
        with pytest.raises(GraphFormatError):
            pack_ego_batch([])

    def test_mixed_radius_rejected(self):
        g = toy_graph()
        c1 = fast_config(radius=1)
        c2 = fast_config(radius=2)
        _, egos1 = sample_egos(g, c1, count=2)
        _, egos2 = sample_egos(g, c2, count=2)
        with pytest.raises(GraphFormatError):
            pack_ego_batch([egos1[0], egos2[0]])


class TestBatchedEncodingEquivalence:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_encode_batch_matches_per_node_encode(self, radius):
        g = toy_graph(seed=radius)
        config = fast_config(radius=radius)
        _, egos = sample_egos(g, config, count=12, seed=radius)
        encoder = TGAEEncoder(g.num_nodes, g.num_timestamps, config)
        batched = encoder.encode_batch(pack_ego_batch(egos)).numpy()
        sequential = np.stack(
            [encoder.encode_centers(build_bipartite_batch([ego])).numpy()[0] for ego in egos]
        )
        assert batched.shape == (12, config.hidden_dim)
        np.testing.assert_allclose(batched, sequential, atol=1e-9)

    def test_model_forward_matches_per_node_forward(self):
        g = toy_graph()
        config = fast_config()
        _, egos = sample_egos(g, config, count=6)
        model = TGAEModel(g.num_nodes, g.num_timestamps, config)
        batched = model(pack_ego_batch(egos), sample=False).logits.numpy()
        sequential = np.stack(
            [model(build_bipartite_batch([ego]), sample=False).logits.numpy()[0] for ego in egos]
        )
        np.testing.assert_allclose(batched, sequential, atol=1e-8)

    def test_gradients_flow_through_packed_path(self):
        g = toy_graph()
        config = fast_config(num_initial_nodes=6)
        sampler = EgoGraphSampler(g, config, np.random.default_rng(3))
        model = TGAEModel(g.num_nodes, g.num_timestamps, config)
        batch = sampler.next_batch()
        out = model(batch.packed, sample=True)
        out.logits.sum().backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads and all(np.isfinite(gr).all() for gr in grads)

    def test_training_batch_exposes_both_views(self):
        g = toy_graph()
        config = fast_config(num_initial_nodes=5)
        sampler = EgoGraphSampler(g, config, np.random.default_rng(5))
        batch = sampler.next_batch()
        assert batch.packed.batch_size == 5
        assert batch.bipartite.num_centers == 5
        assert batch.computation_batch(True) is batch.packed
        assert batch.computation_batch(False) is batch.bipartite


class TestBatchedAttentionMasking:
    def test_padding_edges_and_rows_do_not_leak(self):
        rng = np.random.default_rng(0)
        layer = TemporalGraphAttention(4, 4, num_heads=2, time_dim=3, rng=rng)
        # Two independent graphs with different sizes, padded to a batch.
        h_src = rng.standard_normal((2, 3, 4))
        h_dst = rng.standard_normal((2, 2, 4))
        src_index = np.array([[0, 1, 2], [0, 1, 0]])
        dst_index = np.array([[0, 1, 1], [0, 0, 0]])
        delta_t = np.array([[1.0, 0.0, 2.0], [1.0, 0.0, 0.0]])
        # Graph 1 has only two real edges; its third entry is padding that
        # points at real rows and must not contribute anything.
        edge_mask = np.array([[True, True, True], [True, True, False]])

        from repro.autograd import Tensor

        batched = layer(
            Tensor(h_src), Tensor(h_dst), src_index, dst_index,
            delta_t=delta_t, edge_mask=edge_mask,
        ).numpy()
        for b in range(2):
            keep = edge_mask[b]
            flat = layer(
                Tensor(h_src[b]), Tensor(h_dst[b]),
                src_index[b][keep], dst_index[b][keep], delta_t=delta_t[b][keep],
            ).numpy()
            np.testing.assert_allclose(batched[b], flat, atol=1e-10)


class TestLayerNormMasking:
    def test_masked_rows_are_zeroed(self):
        from repro.autograd import Tensor
        from repro.nn import LayerNorm

        rng = np.random.default_rng(0)
        norm = LayerNorm(4)
        x = rng.standard_normal((2, 3, 4))
        mask = np.array([[True, True, False], [True, False, False]])
        out = norm(Tensor(x), mask=mask).numpy()
        unmasked = norm(Tensor(x)).numpy()
        np.testing.assert_allclose(out[mask], unmasked[mask])
        assert (out[~mask] == 0).all()


class TestSamplingWithoutReplacement:
    def test_degenerate_row_all_mass_forbidden_falls_back_to_uniform(self):
        rng = np.random.default_rng(0)
        probs = np.array([0.0, 0.0, 1.0])
        draws = [
            _sample_without_replacement(probs, 2, rng, forbid=2) for _ in range(200)
        ]
        for drawn in draws:
            assert 2 not in drawn  # the forbidden index never appears
            assert drawn.size == 2  # uniform fallback over {0, 1}
        counts = np.bincount(np.concatenate(draws), minlength=3)
        assert counts[0] == counts[1] == 200

    def test_degenerate_single_column_returns_empty(self):
        # Regression: all probability mass forbidden AND no allowed column
        # left -- previously divided by zero and could return the forbidden
        # index itself.
        rng = np.random.default_rng(0)
        drawn = _sample_without_replacement(np.array([0.7]), 3, rng, forbid=0)
        assert drawn.size == 0
        rows = _sample_rows_without_replacement(
            np.array([[0.7], [0.3]]), np.array([2, 2]), rng, forbid=np.array([0, 0])
        )
        assert all(r.size == 0 for r in rows)

    def test_zero_mass_rows_fall_back_uniformly(self):
        rng = np.random.default_rng(1)
        rows = _sample_rows_without_replacement(
            np.zeros((3, 4)), np.array([4, 2, 0]), rng
        )
        assert sorted(rows[0].tolist()) == [0, 1, 2, 3]
        assert rows[1].size == 2
        assert rows[2].size == 0

    def test_batched_matches_sequential_distribution(self):
        # The batched Gumbel top-k must reproduce the sequential per-row
        # sampler's edge multiset distributionally: same support, same
        # marginal inclusion frequencies within Monte-Carlo tolerance.
        probs = np.array([[0.5, 0.3, 0.15, 0.05], [0.05, 0.05, 0.45, 0.45]])
        counts = np.array([2, 2])
        trials = 3000
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(8)
        freq_batched = np.zeros_like(probs)
        freq_sequential = np.zeros_like(probs)
        for _ in range(trials):
            for row, drawn in enumerate(
                _sample_rows_without_replacement(probs, counts, rng_a)
            ):
                freq_batched[row, drawn] += 1
            for row in range(probs.shape[0]):
                drawn = _sample_without_replacement(probs[row], int(counts[row]), rng_b)
                freq_sequential[row, drawn] += 1
        np.testing.assert_allclose(
            freq_batched / trials, freq_sequential / trials, atol=0.035
        )

    def test_forbid_respected_in_every_row(self):
        rng = np.random.default_rng(2)
        probs = rng.random((6, 8))
        forbid = np.array([0, 1, 2, 3, 4, 5])
        rows = _sample_rows_without_replacement(
            probs, np.full(6, 5), rng, forbid=forbid
        )
        for row, drawn in enumerate(rows):
            assert forbid[row] not in drawn
            assert drawn.size == 5
            assert np.unique(drawn).size == drawn.size  # without replacement


class TestBatchedGeneration:
    def test_packed_and_merged_generation_reproduce_observed_budgets(self):
        # Generation reproduces the observed (src, t) out-degree budgets
        # regardless of encoder layout, so the generated edge multiset
        # matches the sequential path on everything the budgets determine.
        g = toy_graph(num_nodes=12, num_edges=60, num_timestamps=4, seed=9)
        packed_gen = TGAEGenerator(fast_config(epochs=2, num_initial_nodes=8))
        merged_gen = TGAEGenerator(
            fast_config(epochs=2, num_initial_nodes=8, packed_batches=False)
        )
        packed_graph = packed_gen.fit(g).generate(seed=0)
        merged_graph = merged_gen.fit(g).generate(seed=0)
        assert packed_graph.num_edges == g.num_edges
        assert merged_graph.num_edges == g.num_edges

        def src_time_multiset(graph):
            pairs, counts = np.unique(
                np.stack([graph.src, graph.t], axis=1), axis=0, return_counts=True
            )
            return {tuple(p): int(c) for p, c in zip(pairs, counts)}

        assert src_time_multiset(packed_graph) == src_time_multiset(merged_graph)
        # Self-loops are forbidden on both paths.
        assert (packed_graph.src != packed_graph.dst).all()

    def test_generation_deterministic_under_packed_path(self):
        g = toy_graph(num_nodes=10, num_edges=40, num_timestamps=3, seed=4)
        gen = TGAEGenerator(fast_config(epochs=2, num_initial_nodes=8)).fit(g)
        a = gen.generate(seed=5)
        b = gen.generate(seed=5)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)
        np.testing.assert_array_equal(a.t, b.t)
