"""Coverage for small cross-cutting pieces: errors, base class, helpers."""

import numpy as np
import pytest

from repro import (
    ConfigError,
    DatasetError,
    GenerationError,
    GradientError,
    GraphFormatError,
    NotFittedError,
    ReproError,
    ShapeError,
    TemporalGraph,
    TemporalGraphGenerator,
)
from repro.autograd import logsumexp, tensor
from repro.bench import default_tgae_config
from repro.datasets import communication_network


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ShapeError, GradientError, GraphFormatError, ConfigError,
         DatasetError, GenerationError, NotFittedError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_shape_error_is_value_error(self):
        assert issubclass(ShapeError, ValueError)

    def test_gradient_error_is_runtime_error(self):
        assert issubclass(GradientError, RuntimeError)


class TestLogSumExp:
    def test_matches_numpy(self):
        x = np.random.default_rng(0).standard_normal((3, 5))
        out = logsumexp(tensor(x), axis=-1).numpy()
        expected = np.log(np.exp(x).sum(axis=-1))
        assert np.allclose(out, expected)

    def test_stable_for_large_values(self):
        out = logsumexp(tensor(np.array([[1000.0, 1000.0]])), axis=-1).numpy()
        assert np.allclose(out, 1000.0 + np.log(2.0))


class TestGeneratorBase:
    class _Dummy(TemporalGraphGenerator):
        name = "Dummy"

        def _fit(self, graph):
            self.fitted_on = graph

        def _generate(self, seed):
            return self.observed.copy()

    def test_fit_returns_self(self):
        g = communication_network(10, 40, 3, seed=0)
        dummy = self._Dummy()
        assert dummy.fit(g) is dummy
        assert dummy.is_fitted

    def test_observed_property_guard(self):
        with pytest.raises(NotFittedError):
            _ = self._Dummy().observed

    def test_repr_reflects_state(self):
        dummy = self._Dummy()
        assert "fitted=False" in repr(dummy)
        dummy.fit(communication_network(10, 40, 3, seed=0))
        assert "fitted=True" in repr(dummy)


class TestHarnessDefaults:
    def test_default_config_scales_with_edges(self):
        small = communication_network(10, 50, 3, seed=0)
        big = communication_network(40, 2000, 6, seed=0)
        assert default_tgae_config(big).epochs >= default_tgae_config(small).epochs

    def test_default_config_valid(self):
        g = communication_network(10, 50, 3, seed=0)
        config = default_tgae_config(g)
        assert config.epochs >= 1
        assert config.num_initial_nodes >= 1


class TestPackageSurface:
    def test_version_string(self):
        import repro

        assert repro.__version__

    def test_temporal_graph_reexported(self):
        assert TemporalGraph is not None

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
