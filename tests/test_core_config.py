"""Tests for TGAEConfig validation and the variant constructors."""

import pytest

from repro.core import NO_TRUNCATION, TGAEConfig, fast_config
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        TGAEConfig()

    def test_radius_positive(self):
        with pytest.raises(ConfigError):
            TGAEConfig(radius=0)

    def test_threshold_positive(self):
        with pytest.raises(ConfigError):
            TGAEConfig(neighbor_threshold=0)

    def test_window_non_negative(self):
        with pytest.raises(ConfigError):
            TGAEConfig(time_window=-1)

    @pytest.mark.parametrize(
        "field", ["embed_dim", "hidden_dim", "latent_dim", "num_heads",
                  "num_initial_nodes", "epochs"]
    )
    def test_positive_int_fields(self, field):
        with pytest.raises(ConfigError):
            TGAEConfig(**{field: 0})

    def test_learning_rate_positive(self):
        with pytest.raises(ConfigError):
            TGAEConfig(learning_rate=0.0)

    def test_kl_weight_non_negative(self):
        with pytest.raises(ConfigError):
            TGAEConfig(kl_weight=-0.1)

    def test_frozen(self):
        config = TGAEConfig()
        with pytest.raises(AttributeError):
            config.radius = 5


class TestVariants:
    def test_random_walk_variant(self):
        base = TGAEConfig(neighbor_threshold=20)
        variant = base.as_random_walk_variant()
        assert variant.neighbor_threshold < 2
        assert variant.radius == base.radius

    def test_no_truncation_variant(self):
        variant = TGAEConfig().as_no_truncation_variant()
        assert variant.neighbor_threshold == NO_TRUNCATION

    def test_uniform_sampling_variant(self):
        variant = TGAEConfig().as_uniform_sampling_variant()
        assert variant.uniform_initial_sampling
        assert not TGAEConfig().uniform_initial_sampling

    def test_non_probabilistic_variant(self):
        variant = TGAEConfig().as_non_probabilistic_variant()
        assert not variant.probabilistic

    def test_variants_leave_base_untouched(self):
        base = TGAEConfig()
        base.as_random_walk_variant()
        assert base.neighbor_threshold == 20


class TestFastConfig:
    def test_small_and_valid(self):
        config = fast_config()
        assert config.epochs <= 10
        assert config.embed_dim <= 32

    def test_overrides(self):
        config = fast_config(epochs=99, radius=3)
        assert config.epochs == 99
        assert config.radius == 3
