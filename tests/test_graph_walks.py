"""Tests for temporal random walks and walk-to-graph assembly."""

import numpy as np
import pytest

from repro.errors import ConfigError, GenerationError
from repro.graph import (
    TemporalGraph,
    sample_temporal_walk,
    sample_walk_corpus,
    walks_to_graph,
)


def line_graph():
    # 0->1@0, 1->2@1, 2->3@2, 3->4@3
    return TemporalGraph(5, [0, 1, 2, 3], [1, 2, 3, 4], [0, 1, 2, 3])


class TestSingleWalk:
    def test_time_respecting_moves_forward(self):
        g = line_graph()
        nodes, times = sample_temporal_walk(
            g, 0, 0, length=5, time_window=2, rng=np.random.default_rng(0),
            time_respecting=True,
        )
        assert np.all(np.diff(times) >= 0)

    def test_walk_follows_edges(self):
        g = line_graph()
        nodes, _ = sample_temporal_walk(
            g, 0, 0, length=5, time_window=1, rng=np.random.default_rng(0)
        )
        incident_pairs = {(0, 1), (1, 2), (2, 3), (3, 4)}
        for i in range(nodes.size - 1):
            pair = (min(nodes[i], nodes[i + 1]), max(nodes[i], nodes[i + 1]))
            assert pair in incident_pairs

    def test_dead_end_truncates(self):
        g = TemporalGraph(3, [0], [1], [0], num_timestamps=5)
        nodes, _ = sample_temporal_walk(
            g, 1, 4, length=5, time_window=0, rng=np.random.default_rng(0)
        )
        assert nodes.size == 1

    def test_window_limits_hops(self):
        g = line_graph()
        # From (0,0) with window 0 only the t=0 edge is reachable, so the
        # walk can only bounce on the 0-1 edge and never leave timestamp 0.
        nodes, times = sample_temporal_walk(
            g, 0, 0, length=5, time_window=0, rng=np.random.default_rng(0)
        )
        assert set(nodes.tolist()) <= {0, 1}
        assert np.all(times == 0)

    def test_non_time_respecting_can_go_back(self):
        g = line_graph()
        seen_backward = False
        for seed in range(30):
            _, times = sample_temporal_walk(
                g, 2, 2, length=4, time_window=3,
                rng=np.random.default_rng(seed), time_respecting=False,
            )
            if times.size >= 2 and np.any(np.diff(times) < 0):
                seen_backward = True
                break
        assert seen_backward

    def test_invalid_length(self):
        with pytest.raises(ConfigError):
            sample_temporal_walk(line_graph(), 0, 0, 0, 1, np.random.default_rng(0))


class TestCorpus:
    def test_corpus_size(self):
        corpus = sample_walk_corpus(
            line_graph(), 20, 4, 2, np.random.default_rng(0)
        )
        assert len(corpus) == 20

    def test_all_walks_nontrivial(self):
        corpus = sample_walk_corpus(line_graph(), 10, 4, 2, np.random.default_rng(1))
        assert all(nodes.size >= 2 for nodes, _ in corpus)

    def test_empty_graph_raises(self):
        g = TemporalGraph(3, [], [], [], num_timestamps=2)
        with pytest.raises(GenerationError):
            sample_walk_corpus(g, 5, 4, 1, np.random.default_rng(0))


class TestWalksToGraph:
    def test_edge_count_matches_target(self):
        corpus = sample_walk_corpus(line_graph(), 30, 5, 2, np.random.default_rng(2))
        g = walks_to_graph(corpus, 5, 4, target_edges=17, rng=np.random.default_rng(0))
        assert g.num_edges == 17

    def test_upsamples_when_short(self):
        walks = [(np.array([0, 1]), np.array([0, 0]))]
        g = walks_to_graph(walks, 3, 2, target_edges=5, rng=np.random.default_rng(0))
        assert g.num_edges == 5

    def test_timestamps_in_range(self):
        corpus = sample_walk_corpus(line_graph(), 10, 5, 2, np.random.default_rng(3))
        g = walks_to_graph(corpus, 5, 4)
        assert g.t.min() >= 0
        assert g.t.max() < 4

    def test_empty_walks_raise(self):
        with pytest.raises(GenerationError):
            walks_to_graph([(np.array([0]), np.array([0]))], 3, 2)

    def test_edge_timestamp_is_later_endpoint(self):
        walks = [(np.array([0, 1]), np.array([1, 3]))]
        g = walks_to_graph(walks, 3, 5)
        assert g.t.tolist() == [3]
