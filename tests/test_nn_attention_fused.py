"""Regression tests for the fused per-head attention kernel.

``TemporalGraphAttention._head`` is a single autograd node whose forward
replicates the composed reference implementation expression by expression
and whose backward is a hand-derived VJP.  These tests pin the contract the
fusion relies on: *bitwise* equality with ``_head_reference`` -- forward
output and every gradient, under both dtype policies, with and without the
time encoding -- plus an independent finite-difference check.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import TemporalGraphAttention

N_SRC, N_DST, N_EDGES = 9, 5, 23
IN_F, OUT_F, HEADS, TIME_DIM = 6, 8, 3, 4


def _make_inputs(dtype, with_time, seed=11):
    rng = np.random.default_rng(seed)
    h_src = rng.standard_normal((N_SRC, IN_F)).astype(dtype)
    h_dst = rng.standard_normal((N_DST, IN_F)).astype(dtype)
    src_index = rng.integers(0, N_SRC, size=N_EDGES)
    # Every target receives at least one edge so no segment is empty,
    # then the rest land anywhere (duplicates exercise the scatter paths).
    src_index[:N_DST] = rng.integers(0, N_SRC, size=N_DST)
    dst_index = np.concatenate(
        [np.arange(N_DST), rng.integers(0, N_DST, size=N_EDGES - N_DST)]
    )
    delta_t = rng.integers(0, 7, size=N_EDGES) if with_time else None
    weight = rng.standard_normal((N_DST, 1)).astype(dtype)
    return h_src, h_dst, src_index, dst_index, delta_t, weight


def _run(layer, impl, dtype, with_time):
    """One full forward+backward through ``impl`` for every head.

    Returns the stacked forward data plus a dict of every gradient
    (leaf inputs and layer parameters).
    """
    h_src_a, h_dst_a, src_index, dst_index, delta_t, weight = _make_inputs(
        dtype, with_time
    )
    layer.zero_grad()
    h_src = Tensor(h_src_a.copy(), requires_grad=True)
    h_dst = Tensor(h_dst_a.copy(), requires_grad=True)
    time_feat = (
        layer.time_encoding(delta_t)
        if with_time and layer.time_encoding is not None
        else None
    )
    outs = [
        impl(
            head, src_index, dst_index, N_DST, h_src, h_dst, time_feat,
            layer.w_src, layer.w_dst, layer.attn_src, layer.attn_dst,
            layer.w_time,
        )
        for head in range(HEADS)
    ]
    total = outs[0]
    for out in outs[1:]:
        total = total + out
    (total * Tensor(weight)).sum().backward()
    grads = {"h_src": h_src.grad.copy(), "h_dst": h_dst.grad.copy()}
    for name, param in layer.named_parameters():
        if param.grad is not None:
            grads[name] = param.grad.copy()
    return np.stack([out.data for out in outs]), grads


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("with_time", [True, False], ids=["time", "no-time"])
def test_fused_head_bitwise_equals_reference(dtype, with_time):
    layer = TemporalGraphAttention(
        IN_F, OUT_F, num_heads=HEADS,
        time_dim=TIME_DIM if with_time else 0,
        rng=np.random.default_rng(0),
    ).to_dtype(dtype)
    fused_out, fused_grads = _run(layer, layer._head, dtype, with_time)
    ref_out, ref_grads = _run(layer, layer._head_reference, dtype, with_time)
    assert fused_out.dtype == np.dtype(dtype)
    assert np.array_equal(fused_out, ref_out)
    assert fused_grads.keys() == ref_grads.keys()
    for name in ref_grads:
        assert np.array_equal(fused_grads[name], ref_grads[name]), name


def test_fused_head_finite_differences():
    """The hand-derived VJP agrees with central differences, independently
    of the reference implementation."""
    layer = TemporalGraphAttention(
        4, 4, num_heads=2, time_dim=3, rng=np.random.default_rng(2)
    )
    h_src_a, h_dst_a, src_index, dst_index, delta_t, _ = _make_inputs(
        np.float64, True, seed=5
    )
    h_src_a, h_dst_a = h_src_a[:, :4], h_dst_a[:, :4]
    time_feat_data = layer.time_encoding(delta_t).data

    def fn(hs, hd, tf, ws, wd, a_s, a_d, wt):
        return layer._head(
            0, src_index, dst_index, N_DST, hs, hd, tf, ws, wd, a_s, a_d, wt
        )

    inputs = [
        Tensor(h_src_a, requires_grad=True),
        Tensor(h_dst_a, requires_grad=True),
        Tensor(time_feat_data, requires_grad=True),
        layer.w_src,
        layer.w_dst,
        layer.attn_src,
        layer.attn_dst,
        layer.w_time,
    ]
    assert check_gradients(fn, inputs, atol=1e-6, rtol=1e-5)


def test_checkpointed_layer_matches_plain():
    """Checkpoint mode recomputes the fused node: forward and gradients stay
    bitwise identical to the plain path."""
    results = []
    for use_checkpoint in (False, True):
        layer = TemporalGraphAttention(
            IN_F, OUT_F, num_heads=HEADS, time_dim=TIME_DIM,
            rng=np.random.default_rng(7), checkpoint=use_checkpoint,
        )
        h_src_a, h_dst_a, src_index, dst_index, delta_t, weight = _make_inputs(
            np.float64, True, seed=9
        )
        h_src = Tensor(h_src_a.copy(), requires_grad=True)
        h_dst = Tensor(h_dst_a.copy(), requires_grad=True)
        out = layer(h_src, h_dst, src_index, dst_index, delta_t=delta_t)
        (out * Tensor(weight)).sum().backward()
        grads = {name: p.grad.copy() for name, p in layer.named_parameters()}
        grads["h_src"] = h_src.grad.copy()
        results.append((out.data.copy(), grads))
    (plain_out, plain_grads), (ckpt_out, ckpt_grads) = results
    assert np.array_equal(plain_out, ckpt_out)
    for name in plain_grads:
        assert np.array_equal(plain_grads[name], ckpt_grads[name]), name
