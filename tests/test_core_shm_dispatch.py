"""Shared-memory shard dispatch: the store, bit-identity, and teardown.

Three contracts under test, matching the PR's headline guarantees:

* :class:`~repro.core.parallel.SharedArrayStore` is a correct one-writer /
  N-reader array segment: aligned layout, zero-copy read-only attachment,
  in-place updates visible to attached readers, layout changes rejected.
* Shared-memory dispatch changes *how bytes move*, never the result:
  training and generation through an shm pool are bit-identical to
  ``workers=1`` and to the pickled-payload path, across seeds and backends.
* Segments never outlive their pool: explicit close, trainer teardown, a
  ``KeyboardInterrupt`` mid-epoch, and forked children all leave zero
  leaked segments (a forked child must *not* unlink its parent's).
"""

import dataclasses
import multiprocessing

import numpy as np
import pytest

from repro.core import TGAEGenerator, TGAEModel, WorkerPool, fast_config, train_tgae
from repro.core.parallel import (
    SharedArrayStore,
    attach_shared_arrays,
    shared_memory_supported,
)
from repro.datasets import communication_network

pytestmark = pytest.mark.skipif(
    not shared_memory_supported(), reason="platform has no POSIX shared memory"
)


def attachable(segment_name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=segment_name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


@pytest.fixture(scope="module")
def observed():
    return communication_network(25, 160, 5, seed=11)


def train_run(observed, workers=1, seed=3, pool=None, **overrides):
    params = dict(
        epochs=2, num_initial_nodes=16, candidate_limit=8, train_shard_size=4
    )
    params.update(overrides)
    config = fast_config(seed=seed, **params)
    model = TGAEModel(observed.num_nodes, observed.num_timestamps, config)
    history = train_tgae(model, observed, config, workers=workers, pool=pool)
    return history, model.state_dict()


def assert_same_run(run_a, run_b):
    history_a, state_a = run_a
    history_b, state_b = run_b
    assert history_a.losses == history_b.losses
    assert history_a.grad_norms == history_b.grad_norms
    for name in state_a:
        assert np.array_equal(state_a[name], state_b[name]), name


class TestSharedArrayStore:
    """The one-writer/N-reader segment primitive."""

    @staticmethod
    def sample_arrays():
        return {
            "floats": np.arange(12, dtype=np.float64).reshape(3, 4),
            "ints": np.array([5, -1, 7], dtype=np.int64),
            "small": np.array([[True, False]], dtype=np.bool_),
            "empty": np.empty(0, dtype=np.int32),
        }

    def test_roundtrip_preserves_values_dtypes_shapes(self):
        arrays = self.sample_arrays()
        store = SharedArrayStore(arrays)
        try:
            shm, views = attach_shared_arrays(store.handle)
            try:
                assert set(views) == set(arrays)
                for key, original in arrays.items():
                    assert views[key].dtype == original.dtype
                    assert views[key].shape == original.shape
                    assert np.array_equal(views[key], original)
            finally:
                del views
                shm.close()
        finally:
            store.close()

    def test_layout_is_aligned(self):
        store = SharedArrayStore(self.sample_arrays())
        try:
            for spec in store.handle.specs:
                assert spec.offset % 64 == 0
        finally:
            store.close()

    def test_attached_views_are_read_only(self):
        store = SharedArrayStore({"x": np.ones(3)})
        try:
            shm, views = attach_shared_arrays(store.handle)
            try:
                with pytest.raises(ValueError):
                    views["x"][0] = 2.0
            finally:
                del views
                shm.close()
        finally:
            store.close()

    def test_update_in_place_is_visible_to_attached_reader(self):
        store = SharedArrayStore({"x": np.zeros(4)})
        try:
            shm, views = attach_shared_arrays(store.handle)
            try:
                store.update({"x": np.array([1.0, 2.0, 3.0, 4.0])})
                assert np.array_equal(views["x"], [1.0, 2.0, 3.0, 4.0])
            finally:
                del views
                shm.close()
        finally:
            store.close()

    def test_update_rejects_layout_changes(self):
        store = SharedArrayStore({"x": np.zeros(4)})
        try:
            with pytest.raises(ValueError):
                store.update({"x": np.zeros(5)})
            with pytest.raises(ValueError):
                store.update({"x": np.zeros(4, dtype=np.float32)})
            with pytest.raises(KeyError):
                store.update({"unknown": np.zeros(4)})
        finally:
            store.close()

    def test_close_unlinks_and_is_idempotent(self):
        store = SharedArrayStore({"x": np.ones(2)})
        name = store.handle.segment
        assert attachable(name)
        store.close()
        assert store.closed
        assert not attachable(name)
        store.close()  # second close is a no-op, never a BufferError

    def test_update_after_close_raises(self):
        store = SharedArrayStore({"x": np.ones(2)})
        store.close()
        with pytest.raises(RuntimeError):
            store.update({"x": np.zeros(2)})

    def test_forked_child_close_does_not_unlink(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        store = SharedArrayStore({"x": np.ones(2)})
        try:
            ctx = multiprocessing.get_context("fork")
            child = ctx.Process(target=store.close)
            child.start()
            child.join(timeout=30)
            assert child.exitcode == 0
            # The child closed its mapping but must not have unlinked the
            # parent's segment: the owner-pid guard.
            assert attachable(store.handle.segment)
        finally:
            store.close()
        assert not attachable(store.handle.segment)


class TestShmDispatchBitIdentity:
    """Shm dispatch vs pickled dispatch vs sequential: one trajectory."""

    @pytest.mark.parametrize("seed", [3, 11])
    def test_training_matches_sequential_across_seeds(self, observed, seed):
        sequential = train_run(observed, workers=1, seed=seed)
        with WorkerPool(2, backend="process", shm_dispatch=True) as pool:
            assert pool.shm_active
            pooled = train_run(observed, workers=2, seed=seed, pool=pool)
            assert pool.shm_segments()  # segments actually published
        assert_same_run(sequential, pooled)

    def test_shm_and_pickle_dispatch_agree(self, observed):
        with WorkerPool(2, backend="process", shm_dispatch=True) as shm_pool:
            shm_run = train_run(observed, workers=2, pool=shm_pool)
        with WorkerPool(2, backend="process", shm_dispatch=False) as pickle_pool:
            assert not pickle_pool.shm_active
            pickle_run = train_run(observed, workers=2, pool=pickle_pool)
        assert_same_run(shm_run, pickle_run)

    def test_thread_backend_ignores_shm_and_matches(self, observed):
        sequential = train_run(observed, workers=1)
        with WorkerPool(3, backend="thread", shm_dispatch=True) as pool:
            assert not pool.shm_active  # threads share memory natively
            threaded = train_run(observed, workers=3, pool=pool)
            assert pool.shm_segments() == ()
        assert_same_run(sequential, threaded)

    def test_needs_inline_state_matrix(self):
        with WorkerPool(2, backend="process", shm_dispatch=True) as pool:
            assert pool.needs_inline_state is (not pool.shm_active)
        with WorkerPool(2, backend="process", shm_dispatch=False) as pool:
            assert pool.needs_inline_state is True
        with WorkerPool(2, backend="thread") as pool:
            assert pool.needs_inline_state is False

    def test_generation_through_shm_pool_bit_identical(self, observed):
        config = fast_config(
            epochs=2, num_initial_nodes=12, candidate_limit=8, seed=5
        )
        fitted = TGAEGenerator(config).fit(observed)
        baseline_a = fitted.generate(seed=1, workers=1)
        baseline_b = fitted.generate(seed=2, workers=1)
        with fitted.worker_pool(workers=2) as pool:
            assert pool.shm_active
            first = fitted.generate(seed=1)
            second = fitted.generate(seed=2)
        assert first == baseline_a
        assert second == baseline_b

    def test_weight_change_updates_segment_without_republish(self, observed):
        config = fast_config(
            epochs=1, num_initial_nodes=12, candidate_limit=8, seed=5
        )
        fitted = TGAEGenerator(config).fit(observed)
        pool = WorkerPool(2, backend="process", shm_dispatch=True, track_dispatch=True)
        with pool:
            engine = fitted.engine()
            engine.generate(np.random.default_rng(1), pool=pool)
            assert pool.dispatch_stats["payload_publishes"] == 1
            segments = pool.shm_segments()
            # Same weights again: neither republish nor in-place update.
            engine.generate(np.random.default_rng(2), pool=pool)
            assert pool.dispatch_stats["payload_publishes"] == 1
            assert pool.dispatch_stats["param_updates"] == 0
            # A weight-only change (same shapes) must ride the in-place
            # update path: same segments, same executor, fresh version.
            for _, param in fitted.model.named_parameters():
                param.data = param.data + 0.01
            baseline = engine.generate(np.random.default_rng(3), workers=1)
            refreshed = engine.generate(np.random.default_rng(3), pool=pool)
            assert pool.dispatch_stats["payload_publishes"] == 1
            assert pool.dispatch_stats["param_updates"] == 1
            assert pool.shm_segments() == segments
            assert refreshed == baseline

    def test_dispatch_bytes_are_model_size_independent(self, observed):
        """Task messages carry indices + a version, never the weights."""
        import pickle

        seqs = np.random.SeedSequence(0).spawn(4)
        with WorkerPool(2, backend="process", shm_dispatch=True) as pool:
            train_run(observed, workers=2, pool=pool)
        # The shm trainer leaves task.state=None, so a task pickles to a
        # small constant regardless of parameter count.
        from repro.core.trainer import TrainShardTask

        task = TrainShardTask(
            index=0,
            centers=np.zeros((4, 2), dtype=np.int64),
            target_rows=(np.zeros(3, dtype=np.int64),) * 4,
            recon_scale=1.0,
            kl_scale=1.0,
            seed_seq=seqs[0],
            state=None,
        )
        assert len(pickle.dumps(task)) < 4096


class TestDtypePolicyShm:
    """The shm store under the session dtype policy: segments are packed at
    the policy dtype (float32 halves the parameter segment) and dispatch
    stays bit-identical under either policy."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_reattach_round_trip_per_dtype(self, dtype):
        arrays = {
            "w": np.arange(20, dtype=dtype).reshape(4, 5),
            "b": np.ones(3, dtype=dtype),
        }
        store = SharedArrayStore(arrays)
        try:
            shm, views = attach_shared_arrays(store.handle)
            try:
                for key, original in arrays.items():
                    assert views[key].dtype == np.dtype(dtype)
                    assert np.array_equal(views[key], original)
            finally:
                del views
                shm.close()
        finally:
            store.close()

    def test_float32_param_segment_roughly_half(self, observed):
        sizes = {}
        for dtype in ("float32", "float64"):
            config = fast_config(dtype=dtype)
            model = TGAEModel(observed.num_nodes, observed.num_timestamps, config)
            store = SharedArrayStore(model.state_dict())
            try:
                sizes[dtype] = store.handle.nbytes
            finally:
                store.close()
        ratio = sizes["float32"] / sizes["float64"]
        # Exactly half the payload; per-array 64-byte alignment padding can
        # nudge the segment total slightly above 0.5.
        assert 0.49 <= ratio <= 0.6, sizes

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_shm_training_bit_identical_per_dtype(self, observed, dtype):
        sequential = train_run(observed, workers=1, dtype=dtype)
        with WorkerPool(2, backend="process", shm_dispatch=True) as pool:
            assert pool.shm_active
            pooled = train_run(observed, workers=2, dtype=dtype, pool=pool)
        assert_same_run(sequential, pooled)


class TestShmTeardown:
    """Segments never outlive the pool, whatever kills it."""

    def test_close_unlinks_segments(self, observed):
        pool = WorkerPool(2, backend="process", shm_dispatch=True)
        train_run(observed, workers=2, pool=pool)
        segments = pool.shm_segments()
        assert segments
        pool.close()
        assert pool.shm_segments() == ()
        for name in segments:
            assert not attachable(name)
        pool.close()  # idempotent (atexit may race an explicit close)

    def test_trainer_owned_pool_unlinks_on_completion(self, observed, monkeypatch):
        import repro.core.trainer as trainer_mod

        created = []
        original_pool = trainer_mod.WorkerPool

        def recording_pool(*args, **kwargs):
            pool = original_pool(*args, **kwargs)
            created.append(pool)
            return pool

        monkeypatch.setattr(trainer_mod, "WorkerPool", recording_pool)
        train_run(observed, workers=2)
        assert len(created) == 1
        assert created[0].closed
        assert created[0].shm_segments() == ()

    def test_keyboard_interrupt_mid_epoch_unlinks_segments(
        self, observed, monkeypatch
    ):
        import repro.core.trainer as trainer_mod

        created = []
        segments_seen = []
        original_pool = trainer_mod.WorkerPool

        def recording_pool(*args, **kwargs):
            pool = original_pool(*args, **kwargs)
            created.append(pool)
            return pool

        calls = {"n": 0}

        def interrupting_clip(parameters, max_norm):
            calls["n"] += 1
            segments_seen.extend(created[0].shm_segments())
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            from repro.optim.clip import clip_grad_norm

            return clip_grad_norm(parameters, max_norm)

        monkeypatch.setattr(trainer_mod, "WorkerPool", recording_pool)
        monkeypatch.setattr(trainer_mod, "clip_grad_norm", interrupting_clip)
        with pytest.raises(KeyboardInterrupt):
            train_run(observed, workers=2, epochs=3)
        assert segments_seen  # shm was live mid-training
        assert created[0].closed
        for name in set(segments_seen):
            assert not attachable(name)

    def test_degrade_ladder_releases_segments(self, observed):
        """When the shm rung dies, its segments die with it -- step by step.

        A persistent dispatch-side fault walks the pool down the full
        ladder: the shm rung's segments are unlinked at the first step,
        the process backend is abandoned at the second, and the final run
        on the thread rung still reproduces the exact trajectory.
        """
        from repro import faults

        pool = WorkerPool(2, backend="process", shm_dispatch=True)
        try:
            train_run(observed, workers=2, pool=pool, epochs=1)
            segments = pool.shm_segments()
            assert segments
            with faults.inject("dispatch", exc=OSError, times=2):
                with pytest.warns(RuntimeWarning, match="degrading"):
                    degraded = train_run(observed, workers=2, pool=pool, epochs=1)
            assert pool.health["degrades"] == ["shm->pickle", "pickle->thread"]
            assert pool.backend == "thread"
            assert pool.shm_segments() == ()
            for name in segments:
                assert not attachable(name)
            # ... and the thread retry still produced the exact trajectory.
            assert_same_run(degraded, train_run(observed, workers=1, epochs=1))
        finally:
            pool.close()

    def test_close_from_forked_child_leaves_parent_pool_alone(self, observed):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        pool = WorkerPool(2, backend="process", shm_dispatch=True)
        try:
            train_run(observed, workers=2, pool=pool, epochs=1)
            segments = pool.shm_segments()
            assert segments
            ctx = multiprocessing.get_context("fork")
            # A forked child running the pool's atexit-style close must not
            # unlink the parent's live segments.
            child = ctx.Process(target=pool.close)
            child.start()
            child.join(timeout=30)
            assert child.exitcode == 0
            for name in segments:
                assert attachable(name)
            # The parent pool still works after the child's no-op close.
            rerun = train_run(observed, workers=2, pool=pool, epochs=1)
            assert_same_run(rerun, train_run(observed, workers=1, epochs=1))
        finally:
            pool.close()
        for name in segments:
            assert not attachable(name)


class TestShmConfigWiring:
    """The config flag reaches pools built by the generator and trainer."""

    def test_generator_pool_inherits_config_flag(self, observed):
        config = fast_config(
            epochs=1, num_initial_nodes=12, candidate_limit=8,
            shm_dispatch=False,
        )
        fitted = TGAEGenerator(config).fit(observed)
        with fitted.worker_pool(workers=2) as pool:
            assert pool.shm_dispatch is False
            assert not pool.shm_active

    def test_config_roundtrips_through_persistence(self, observed, tmp_path):
        from repro.core import load_generator, save_generator

        config = fast_config(
            epochs=1, num_initial_nodes=12, candidate_limit=8,
            shm_dispatch=False,
        )
        fitted = TGAEGenerator(config).fit(observed)
        path = tmp_path / "model.npz"
        save_generator(fitted, path)
        loaded = load_generator(path)
        assert loaded.config.shm_dispatch is False
        assert fitted.generate(seed=3) == loaded.generate(seed=3)
