"""Data-parallel sharded training, checkpointed attention, persistent pools.

Three contracts under test, matching the PR's headline guarantees:

* ``train_tgae(workers=N)`` is **bit-identical** to ``workers=1`` for any
  ``N`` and backend: shard partitioning and per-shard seed-sequence children
  never depend on who executes the shards, and gradients merge in shard
  order.
* ``checkpoint_attention`` (recompute-in-backward) changes peak memory, not
  a single bit of the loss/gradient trajectory or the final weights.
* :class:`~repro.core.parallel.WorkerPool` persists across calls -- the same
  pool serves repeated ``generate()`` draws and whole training runs -- and
  shuts down cleanly.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, checkpoint, segment_softmax
from repro.core import (
    TGAEGenerator,
    TGAEModel,
    WorkerPool,
    fast_config,
    train_tgae,
)
from repro.core.parallel import close_shared_pools, shared_pool
from repro.datasets import communication_network
from repro.errors import ConfigError
from repro.nn import TemporalGraphAttention


@pytest.fixture(scope="module")
def observed():
    return communication_network(25, 160, 5, seed=11)


def train_run(observed, workers=1, backend="process", seed=3, **overrides):
    params = dict(
        epochs=3, num_initial_nodes=16, candidate_limit=8, train_shard_size=4
    )
    params.update(overrides)
    config = fast_config(seed=seed, **params)
    model = TGAEModel(observed.num_nodes, observed.num_timestamps, config)
    history = train_tgae(model, observed, config, workers=workers, backend=backend)
    return history, model.state_dict()


def assert_same_run(run_a, run_b):
    history_a, state_a = run_a
    history_b, state_b = run_b
    assert history_a.losses == history_b.losses
    assert history_a.grad_norms == history_b.grad_norms
    assert set(state_a) == set(state_b)
    for name in state_a:
        assert np.array_equal(state_a[name], state_b[name]), name


class TestShardedTrainingDeterminism:
    """workers=1 and workers=4 produce bit-identical training trajectories."""

    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_workers_1_vs_4_bit_identical(self, observed, seed, backend):
        assert_same_run(
            train_run(observed, workers=1, seed=seed),
            train_run(observed, workers=4, backend=backend, seed=seed),
        )

    def test_dense_decoder_path_bit_identical(self, observed):
        assert_same_run(
            train_run(observed, workers=1, candidate_limit=0),
            train_run(observed, workers=3, candidate_limit=0),
        )

    def test_different_seeds_differ(self, observed):
        history_a, _ = train_run(observed, seed=3)
        history_b, _ = train_run(observed, seed=4)
        assert history_a.losses != history_b.losses

    def test_single_shard_config_still_works(self, observed):
        history, _ = train_run(observed, workers=2, train_shard_size=16)
        assert len(history.losses) == 3

    def test_generation_after_parallel_training_matches(self, observed):
        config = fast_config(
            epochs=2, num_initial_nodes=16, candidate_limit=8,
            train_shard_size=4, seed=5,
        )
        seq = TGAEGenerator(config).fit(observed).generate(seed=9)
        import dataclasses

        par_config = dataclasses.replace(config, workers=3)
        par = TGAEGenerator(par_config).fit(observed).generate(seed=9)
        assert seq == par


class TestTrainingHistoryDiagnostics:
    def test_epoch_seconds_always_recorded(self, observed):
        history, _ = train_run(observed)
        assert len(history.epoch_seconds) == 3
        assert all(seconds >= 0 for seconds in history.epoch_seconds)
        assert history.total_seconds == pytest.approx(sum(history.epoch_seconds))

    def test_peak_memory_tracked_on_request(self, observed):
        config = fast_config(
            epochs=2, num_initial_nodes=8, candidate_limit=8, seed=1
        )
        model = TGAEModel(observed.num_nodes, observed.num_timestamps, config)
        history = train_tgae(model, observed, config, track_memory=True)
        assert len(history.peak_memory_bytes) == 2
        assert history.peak_memory > 0

    def test_peak_memory_zero_without_tracking(self, observed):
        history, _ = train_run(observed)
        assert history.peak_memory == 0
        assert history.peak_memory_bytes == [0, 0, 0]


class TestTrainerGuards:
    def test_rejects_bad_workers(self, observed):
        config = fast_config(epochs=1)
        model = TGAEModel(observed.num_nodes, observed.num_timestamps, config)
        with pytest.raises(ConfigError):
            train_tgae(model, observed, config, workers=0)

    def test_rejects_bad_backend(self, observed):
        config = fast_config(epochs=1)
        model = TGAEModel(observed.num_nodes, observed.num_timestamps, config)
        with pytest.raises(ConfigError):
            train_tgae(model, observed, config, backend="gpu")

    def test_config_rejects_bad_train_shard_size(self):
        with pytest.raises(ConfigError):
            fast_config(train_shard_size=0)

    def test_model_back_in_eval_mode_when_epoch_raises(self, observed, monkeypatch):
        from repro.optim import Adam

        config = fast_config(epochs=4, num_initial_nodes=8, seed=2)
        model = TGAEModel(observed.num_nodes, observed.num_timestamps, config)
        calls = {"n": 0}
        original = Adam.step

        def failing_step(self):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("injected optimiser failure")
            return original(self)

        monkeypatch.setattr(Adam, "step", failing_step)
        with pytest.raises(RuntimeError, match="injected"):
            train_tgae(model, observed, config)
        # The try/finally restored inference mode despite the mid-epoch raise.
        assert model.training is False

    def test_internal_pool_torn_down_when_epoch_raises(self, observed, monkeypatch):
        import repro.core.trainer as trainer_mod

        created = []
        original_pool = trainer_mod.WorkerPool

        def recording_pool(*args, **kwargs):
            pool = original_pool(*args, **kwargs)
            created.append(pool)
            return pool

        monkeypatch.setattr(trainer_mod, "WorkerPool", recording_pool)
        from repro.optim import Adam

        def failing_step(self):
            raise RuntimeError("injected")

        monkeypatch.setattr(Adam, "step", failing_step)
        config = fast_config(
            epochs=2, num_initial_nodes=8, train_shard_size=4, seed=2
        )
        model = TGAEModel(observed.num_nodes, observed.num_timestamps, config)
        with pytest.raises(RuntimeError, match="injected"):
            train_tgae(model, observed, config, workers=2, backend="thread")
        assert len(created) == 1
        assert created[0].closed

    def test_caller_owned_pool_survives_training(self, observed):
        config = fast_config(
            epochs=2, num_initial_nodes=8, train_shard_size=4, seed=2
        )
        model = TGAEModel(observed.num_nodes, observed.num_timestamps, config)
        with WorkerPool(2, backend="thread") as pool:
            train_tgae(model, observed, config, workers=2, pool=pool)
            assert not pool.closed
            assert pool.runs == 2  # one dispatch per epoch
        assert pool.closed


class TestCheckpointedTraining:
    """Recompute-in-backward must not change the trajectory by one bit."""

    def test_bit_identical_loss_trajectory(self, observed):
        assert_same_run(
            train_run(observed, checkpoint_attention=False),
            train_run(observed, checkpoint_attention=True),
        )

    def test_bit_identical_under_workers(self, observed):
        assert_same_run(
            train_run(observed, workers=1, checkpoint_attention=True),
            train_run(observed, workers=4, checkpoint_attention=True),
        )

    def test_generation_identical_after_checkpointed_training(self, observed):
        import dataclasses

        config = fast_config(
            epochs=2, num_initial_nodes=12, candidate_limit=8, seed=6
        )
        plain = TGAEGenerator(config).fit(observed).generate(seed=4)
        ckpt_config = dataclasses.replace(config, checkpoint_attention=True)
        ckpt = TGAEGenerator(ckpt_config).fit(observed).generate(seed=4)
        assert plain == ckpt


class TestCheckpointPrimitive:
    """The autograd checkpoint op: exact values, exact gradients."""

    def test_forward_and_gradients_match_plain_bitwise(self):
        rng = np.random.default_rng(0)
        x_data = rng.standard_normal((7, 5))
        w_data = rng.standard_normal((5, 3))

        def compute(x, w):
            return ((x @ w).tanh() * 2.0).sum(axis=0)

        x_plain = Tensor(x_data, requires_grad=True)
        w_plain = Tensor(w_data, requires_grad=True)
        out_plain = compute(x_plain, w_plain)
        out_plain.sum().backward()

        x_ckpt = Tensor(x_data, requires_grad=True)
        w_ckpt = Tensor(w_data, requires_grad=True)
        out_ckpt = checkpoint(compute, x_ckpt, w_ckpt)
        out_ckpt.sum().backward()

        assert np.array_equal(out_plain.data, out_ckpt.data)
        assert np.array_equal(x_plain.grad, x_ckpt.grad)
        assert np.array_equal(w_plain.grad, w_ckpt.grad)

    def test_checkpoint_against_finite_differences(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        assert check_gradients(
            lambda t: checkpoint(lambda u: (u * u).sigmoid().sum(axis=-1), t), [x]
        )

    def test_checkpoint_under_no_grad_is_plain(self):
        from repro.autograd import no_grad

        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            out = checkpoint(lambda t: t * 3.0, x)
        assert not out.requires_grad

    def test_segment_softmax_checkpoint_bitwise(self):
        rng = np.random.default_rng(2)
        scores_data = rng.standard_normal(10)
        ids = rng.integers(0, 4, size=10)

        plain_in = Tensor(scores_data, requires_grad=True)
        plain_out = segment_softmax(plain_in, ids, 4)
        (plain_out * np.arange(10)).sum().backward()

        ckpt_in = Tensor(scores_data, requires_grad=True)
        ckpt_out = segment_softmax(ckpt_in, ids, 4, checkpoint=True)
        (ckpt_out * np.arange(10)).sum().backward()

        assert np.array_equal(plain_out.data, ckpt_out.data)
        assert np.array_equal(plain_in.grad, ckpt_in.grad)

    def test_segment_softmax_checkpoint_against_finite_differences(self):
        rng = np.random.default_rng(3)
        scores = Tensor(rng.standard_normal(8), requires_grad=True)
        ids = np.array([0, 0, 1, 1, 2, 2, 2, 3])
        assert check_gradients(
            lambda s: segment_softmax(s, ids, 4, checkpoint=True), [scores]
        )


class TestCheckpointedAttention:
    """The TGAT layer's recompute mode: grad_check exactness + bit parity."""

    @staticmethod
    def _layer_pair():
        rng = np.random.default_rng(4)
        plain = TemporalGraphAttention(
            6, 6, num_heads=2, time_dim=4, rng=np.random.default_rng(4)
        )
        ckpt = TemporalGraphAttention(
            6, 6, num_heads=2, time_dim=4, rng=np.random.default_rng(4),
            checkpoint=True,
        )
        src_index = np.array([0, 1, 2, 2, 3])
        dst_index = np.array([0, 0, 1, 2, 2])
        delta_t = np.array([0.0, 1.0, 0.5, 2.0, 0.0])
        h_src = rng.standard_normal((4, 6))
        h_dst = rng.standard_normal((3, 6))
        return plain, ckpt, h_src, h_dst, src_index, dst_index, delta_t

    def test_checkpointed_matches_plain_bitwise(self):
        plain, ckpt, h_src, h_dst, src_index, dst_index, delta_t = self._layer_pair()

        def run(layer):
            hs = Tensor(h_src, requires_grad=True)
            hd = Tensor(h_dst, requires_grad=True)
            out = layer(hs, hd, src_index, dst_index, delta_t=delta_t)
            out.sum().backward()
            grads = {
                name: param.grad for name, param in layer.named_parameters()
                if param.grad is not None
            }
            return out.data, hs.grad, hd.grad, grads

        out_p, hs_p, hd_p, grads_p = run(plain)
        out_c, hs_c, hd_c, grads_c = run(ckpt)
        assert np.array_equal(out_p, out_c)
        assert np.array_equal(hs_p, hs_c)
        assert np.array_equal(hd_p, hd_c)
        assert set(grads_p) == set(grads_c)
        for name in grads_p:
            assert np.array_equal(grads_p[name], grads_c[name]), name

    def test_checkpointed_attention_against_finite_differences(self):
        _, ckpt, h_src, h_dst, src_index, dst_index, delta_t = self._layer_pair()
        hs = Tensor(h_src, requires_grad=True)
        hd = Tensor(h_dst, requires_grad=True)
        assert check_gradients(
            lambda a, b: ckpt(a, b, src_index, dst_index, delta_t=delta_t),
            [hs, hd],
        )

    def test_inference_path_unchanged(self):
        from repro.autograd import no_grad

        plain, ckpt, h_src, h_dst, src_index, dst_index, delta_t = self._layer_pair()
        with no_grad():
            out_p = plain(Tensor(h_src), Tensor(h_dst), src_index, dst_index, delta_t=delta_t)
            out_c = ckpt(Tensor(h_src), Tensor(h_dst), src_index, dst_index, delta_t=delta_t)
        assert np.array_equal(out_p.data, out_c.data)


class TestPersistentPool:
    """One pool outlives many calls; shutdown is explicit and clean."""

    @pytest.fixture(scope="class")
    def fitted(self, observed):
        config = fast_config(epochs=2, num_initial_nodes=12, candidate_limit=8)
        return TGAEGenerator(config).fit(observed)

    def test_pool_reused_across_generate_calls(self, fitted):
        baseline_a = fitted.generate(seed=1, workers=1)
        baseline_b = fitted.generate(seed=2, workers=1)
        with fitted.worker_pool(workers=2, backend="thread") as pool:
            first = fitted.generate(seed=1)
            second = fitted.generate(seed=2)
            assert fitted.worker_pool(workers=2, backend="thread") is pool
            assert pool.runs == 2
            assert not pool.closed
        assert pool.closed
        assert first == baseline_a
        assert second == baseline_b

    def test_process_pool_reused_and_bit_identical(self, fitted):
        baseline = fitted.generate(seed=5, workers=1)
        with WorkerPool(2, backend="process") as pool:
            engine = fitted.engine()
            first = engine.generate(np.random.default_rng(5), pool=pool)
            second = engine.generate(np.random.default_rng(5), pool=pool)
            assert pool.runs == 2
        assert first == baseline
        assert second == baseline

    def test_score_topk_through_pool(self, fitted):
        sequential = fitted.score_topk(3, workers=1)
        with fitted.worker_pool(workers=2, backend="thread"):
            pooled = fitted.score_topk(3)
        for field in ("node", "timestamp", "target", "score"):
            assert np.array_equal(
                getattr(sequential, field), getattr(pooled, field)
            ), field

    def test_closed_pool_rejects_runs(self):
        pool = WorkerPool(2, backend="thread")
        pool.close()
        with pytest.raises(RuntimeError):
            pool.run(None, "generate", [])
        pool.close()  # idempotent

    def test_generator_close_pool(self, fitted):
        pool = fitted.worker_pool(workers=2, backend="thread")
        fitted.close_pool()
        assert pool.closed
        # generate() falls back to the pool-less path afterwards.
        graph = fitted.generate(seed=3, workers=1)
        assert graph.num_edges == fitted.observed.num_edges

    def test_pool_validates_arguments(self):
        with pytest.raises(ConfigError):
            WorkerPool(0)
        with pytest.raises(ConfigError):
            WorkerPool(2, backend="gpu")

    def test_shared_pool_singleton(self):
        try:
            pool_a = shared_pool(2, "thread")
            assert shared_pool(2, "thread") is pool_a
            assert shared_pool(3, "thread") is not pool_a
        finally:
            close_shared_pools()
        assert pool_a.closed
        fresh = shared_pool(2, "thread")
        try:
            assert fresh is not pool_a
            assert not fresh.closed
        finally:
            close_shared_pools()

    def test_training_through_explicit_pool_matches_sequential(self, observed):
        sequential = train_run(observed, workers=1, seed=13)
        config = fast_config(
            epochs=3, num_initial_nodes=16, candidate_limit=8,
            train_shard_size=4, seed=13,
        )
        model = TGAEModel(observed.num_nodes, observed.num_timestamps, config)
        with WorkerPool(2, backend="process") as pool:
            history = train_tgae(model, observed, config, workers=2, pool=pool)
            assert pool.runs == 3  # one per epoch, same pool throughout
        assert_same_run(sequential, (history, model.state_dict()))
