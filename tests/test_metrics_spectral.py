"""Tests for the spectral snapshot statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from strategies import SLOW_SETTINGS, STANDARD_SETTINGS

from repro.graph.snapshot import Snapshot
from repro.metrics import (
    adjacency_spectrum,
    laplacian_spectrum,
    spectral_distance,
    spectral_gap,
)


def snapshot_from_edges(num_nodes, edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return Snapshot(num_nodes, src, dst)


def complete_graph(n):
    return snapshot_from_edges(n, [(i, j) for i in range(n) for j in range(n) if i != j])


def two_triangles():
    return snapshot_from_edges(
        6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    )


class TestAdjacencySpectrum:
    def test_complete_graph_known_spectrum(self):
        # K_n has eigenvalues n-1 (once) and -1 (n-1 times).
        spec = adjacency_spectrum(complete_graph(5), k=4)
        assert spec[0] == pytest.approx(4.0)
        assert np.allclose(spec[1:], -1.0)

    def test_single_edge(self):
        spec = adjacency_spectrum(snapshot_from_edges(2, [(0, 1)]), k=2)
        assert spec[0] == pytest.approx(1.0)

    def test_empty_graph(self):
        assert adjacency_spectrum(snapshot_from_edges(3, []), k=2).size == 0

    def test_descending_order(self):
        spec = adjacency_spectrum(two_triangles(), k=5)
        assert np.all(np.diff(spec) <= 1e-9)

    def test_k_capped_by_size(self):
        spec = adjacency_spectrum(snapshot_from_edges(3, [(0, 1), (1, 2)]), k=100)
        assert spec.size <= 3


class TestLaplacianSpectrum:
    def test_spectrum_in_unit_interval(self):
        spec = laplacian_spectrum(two_triangles(), k=6)
        assert np.all(spec >= 0.0)
        assert np.all(spec <= 2.0)

    def test_zero_multiplicity_counts_components(self):
        # Two disjoint triangles -> eigenvalue 0 with multiplicity 2.
        spec = laplacian_spectrum(two_triangles(), k=6)
        assert int(np.sum(spec < 1e-8)) == 2

    def test_connected_graph_single_zero(self):
        spec = laplacian_spectrum(complete_graph(5), k=5)
        assert int(np.sum(spec < 1e-8)) == 1

    def test_isolated_nodes_ignored(self):
        # Triangle in a 50-node universe behaves like a 3-node triangle.
        big = snapshot_from_edges(50, [(0, 1), (1, 2), (2, 0)])
        small = snapshot_from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert np.allclose(
            laplacian_spectrum(big, k=3), laplacian_spectrum(small, k=3)
        )

    def test_empty_graph(self):
        assert laplacian_spectrum(snapshot_from_edges(4, []), k=3).size == 0


class TestSpectralGap:
    def test_complete_graph_has_large_gap(self):
        # K_n normalised Laplacian: eigenvalues 0 and n/(n-1).
        assert spectral_gap(complete_graph(6)) == pytest.approx(6 / 5, abs=1e-6)

    def test_disconnected_graph_zero_gap(self):
        assert spectral_gap(two_triangles()) == pytest.approx(0.0, abs=1e-8)

    def test_empty_graph_zero(self):
        assert spectral_gap(snapshot_from_edges(3, [])) == 0.0

    def test_path_smaller_gap_than_complete(self):
        path = snapshot_from_edges(6, [(i, i + 1) for i in range(5)])
        assert spectral_gap(path) < spectral_gap(complete_graph(6))


class TestSpectralDistance:
    def test_identical_zero(self):
        s = two_triangles()
        assert spectral_distance(s, s) == pytest.approx(0.0, abs=1e-9)

    def test_both_empty_zero(self):
        e = snapshot_from_edges(3, [])
        assert spectral_distance(e, e) == 0.0

    def test_different_positive(self):
        assert spectral_distance(complete_graph(6), two_triangles()) > 0.0

    def test_symmetry(self):
        a, b = complete_graph(5), two_triangles()
        assert spectral_distance(a, b) == pytest.approx(spectral_distance(b, a))


@st.composite
def snapshots(draw, max_nodes=12, max_edges=40):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return Snapshot(n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64))


class TestProperties:
    @given(snapshots())
    @STANDARD_SETTINGS
    def test_laplacian_spectrum_bounded(self, snap):
        spec = laplacian_spectrum(snap, k=6)
        if spec.size:
            assert np.all(spec >= -1e-9)
            assert np.all(spec <= 2.0 + 1e-9)

    @given(snapshots())
    @STANDARD_SETTINGS
    def test_gap_nonnegative(self, snap):
        assert spectral_gap(snap) >= 0.0

    @given(snapshots(), snapshots())
    @SLOW_SETTINGS
    def test_distance_symmetric_nonnegative(self, a, b):
        d = spectral_distance(a, b)
        assert d >= 0.0
        assert d == pytest.approx(spectral_distance(b, a), abs=1e-9)
