"""Tests for Module: parameter discovery, modes, state_dict round-trips."""

import numpy as np
import pytest

from repro.nn import MLP, Dropout, Linear, Module, ModuleList, Parameter, Sequential


class _Custom(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.linear = Linear(3, 4, rng=rng)
        self.free = Parameter(np.zeros(5))
        self.children_list = ModuleList([Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)])

    def forward(self, x):
        return self.linear(x)


class TestParameterDiscovery:
    def test_finds_direct_parameters(self):
        m = _Custom()
        names = dict(m.named_parameters())
        assert "free" in names
        assert "linear.weight" in names
        assert "linear.bias" in names

    def test_finds_parameters_in_module_lists(self):
        names = dict(_Custom().named_parameters())
        assert "children_list.items.0.weight" in names
        assert "children_list.items.1.weight" in names

    def test_parameters_all_require_grad(self):
        assert all(p.requires_grad for p in _Custom().parameters())

    def test_num_parameters(self):
        m = _Custom()
        expected = 3 * 4 + 4 + 5 + 2 * (2 * 2 + 2)
        assert m.num_parameters() == expected


class TestModes:
    def test_train_eval_recursive(self):
        m = Sequential(Linear(2, 2), Dropout(0.5), Linear(2, 2))
        m.eval()
        assert all(not mod.training for mod in m.modules())
        m.train()
        assert all(mod.training for mod in m.modules())

    def test_dropout_inactive_in_eval(self):
        d = Dropout(0.9, rng=np.random.default_rng(0))
        d.eval()
        x = np.ones((10, 10))
        from repro.autograd import tensor

        assert np.allclose(d(tensor(x)).numpy(), x)

    def test_dropout_active_in_train(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        from repro.autograd import tensor

        out = d(tensor(np.ones((20, 20)))).numpy()
        assert (out == 0).any()

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestStateDict:
    def test_roundtrip(self):
        m1 = _Custom()
        m2 = _Custom()
        # Perturb m1, load into m2, outputs must match.
        for p in m1.parameters():
            p.data = p.data + 1.0
        m2.load_state_dict(m1.state_dict())
        from repro.autograd import tensor

        x = tensor(np.random.default_rng(1).standard_normal((2, 3)))
        assert np.allclose(m1(x).numpy(), m2(x).numpy())

    def test_state_dict_is_copy(self):
        m = _Custom()
        state = m.state_dict()
        state["free"][:] = 99.0
        assert not np.allclose(m.free.data, 99.0)

    def test_missing_key_raises(self):
        m = _Custom()
        state = m.state_dict()
        del state["free"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_unexpected_key_raises(self):
        m = _Custom()
        state = m.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        m = _Custom()
        state = m.state_dict()
        state["free"] = np.zeros(99)
        with pytest.raises(ValueError):
            m.load_state_dict(state)


class TestZeroGrad:
    def test_clears_all_gradients(self):
        m = MLP([2, 3, 1], rng=np.random.default_rng(0))
        from repro.autograd import tensor

        m(tensor(np.ones((4, 2)))).sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())
