"""Versioned inference embedding cache: hot path, invalidation, parity.

The cache's one contract is *bitwise transparency*: every public inference
output (``generate``, ``score_topk``, ``dense_score_rows``) is identical
with the cache on, off, cold, warm, incrementally invalidated, or served
out of a shared-memory segment.  These tests pin each face of that
contract plus the perf counters that prove the encoder was actually
skipped:

* the encode/decode model split composes to the plain forward, bit for bit;
* a warm repeat call does **zero** encoder work (``encoded_rows`` /
  ``encode_calls`` frozen) and still reproduces the cold output;
* after an observed-edge append with ``epochs=0`` only the dirty
  ego-neighbourhood rows are dropped -- surviving rows keep serving hits
  under the rebound graph token -- and the post-append outputs equal a
  cold-cache (and cache-off) twin;
* ``dirty_temporal_nodes`` is a sound superset of the rows whose
  embeddings actually moved;
* retraining flushes loudly through the weights token;
* the shm segment publishes/updates through the worker pool and pooled
  output equals the sequential cache-off path;
* a Hypothesis state machine interleaves fit/update/generate/score_topk
  against a cache-off twin and demands parity after every step.
"""

import copy
import dataclasses
import functools
import hashlib

import numpy as np
import pytest
from hypothesis import settings as hyp_settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from strategies import STATE_MACHINE_SETTINGS
from repro.core import (
    EMBED_TILE,
    EmbeddingCache,
    GenerationEngine,
    TGAEGenerator,
    dirty_temporal_nodes,
    fast_config,
    graph_token,
    weights_token,
)
from repro.core.parallel import shared_memory_supported
from repro.core.sampler import EgoGraphSampler
from repro.datasets import communication_network
from repro.graph import TemporalGraph


def graph_fingerprint(graph: TemporalGraph) -> str:
    triples = np.stack([graph.t, graph.src, graph.dst], axis=1)
    order = np.lexsort((graph.dst, graph.src, graph.t))
    return hashlib.sha256(np.ascontiguousarray(triples[order]).tobytes()).hexdigest()


def assert_topk_equal(a, b):
    assert np.array_equal(a.node, b.node)
    assert np.array_equal(a.timestamp, b.timestamp)
    assert np.array_equal(a.target, b.target)
    assert a.score.tobytes() == b.score.tobytes()


def all_centers(graph: TemporalGraph) -> np.ndarray:
    """Every ``(u, t)`` pair of the universe, in key order."""
    keys = np.arange(graph.num_nodes * graph.num_timestamps, dtype=np.int64)
    T = graph.num_timestamps
    return np.stack([keys // T, keys % T], axis=1)


@pytest.fixture(scope="module")
def observed():
    return communication_network(25, 150, 5, seed=17)


def fit_twin(observed, embed_cache, **overrides):
    params = dict(epochs=3, num_initial_nodes=12, dtype="float64")
    params.update(overrides)
    return TGAEGenerator(
        fast_config(embed_cache=embed_cache, **params)
    ).fit(observed)


@pytest.fixture(scope="module")
def fitted_on(observed):
    return fit_twin(observed, embed_cache=True)


@pytest.fixture(scope="module")
def fitted_off(observed):
    return fit_twin(observed, embed_cache=False)


class TestModelSplit:
    """encode_inference + decode_from_embeddings == forward(sample=False)."""

    @pytest.mark.parametrize("packed", [True, False])
    def test_composition_is_bitwise_identical(self, observed, fitted_on, packed):
        model = fitted_on.model
        config = dataclasses.replace(fitted_on.config, packed_batches=packed)
        centers = np.array([[0, 1], [3, 2], [7, 0], [12, 4]], dtype=np.int64)
        batch = EgoGraphSampler(observed, config).inference_batch(centers)
        comp = batch.computation_batch(packed)

        full = model(comp, sample=False)
        emb = model.encode_inference(comp)
        split = model.decode_from_embeddings(emb, centers)
        assert full.logits.numpy().tobytes() == split.logits.numpy().tobytes()
        assert full.mu.numpy().tobytes() == split.mu.numpy().tobytes()

    def test_candidate_composition_is_bitwise_identical(self, observed, fitted_on):
        model = fitted_on.model
        centers = np.array([[1, 1], [5, 3]], dtype=np.int64)
        candidates = np.array([[0, 2, 4, 6], [1, 3, 5, 7]], dtype=np.int64)
        batch = EgoGraphSampler(observed, fitted_on.config).inference_batch(centers)
        comp = batch.computation_batch(True)

        full = model(comp, sample=False, candidates=candidates)
        emb = model.encode_inference(comp)
        split = model.decode_from_embeddings(emb, centers, candidates=candidates)
        assert full.logits.numpy().tobytes() == split.logits.numpy().tobytes()


class TestCacheParity:
    """Cache-on outputs equal cache-off outputs, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_generate_parity(self, fitted_on, fitted_off, seed):
        assert graph_fingerprint(fitted_on.generate(seed=seed)) == graph_fingerprint(
            fitted_off.generate(seed=seed)
        )

    def test_score_topk_parity(self, fitted_on, fitted_off):
        assert_topk_equal(fitted_on.score_topk(4), fitted_off.score_topk(4))

    def test_dense_rows_parity(self, observed, fitted_on, fitted_off):
        centers = all_centers(observed)[::7]
        rows_on = fitted_on.engine().dense_score_rows(centers)
        rows_off = fitted_off.engine().dense_score_rows(centers)
        assert rows_on.tobytes() == rows_off.tobytes()

    def test_cache_off_generator_reports_no_stats(self, fitted_off):
        fitted_off.generate(seed=0)
        assert fitted_off.cache_stats() is None
        assert fitted_off.engine().cache is None


class TestWarmPath:
    """A warm repeat call is decode-only: the counters prove it."""

    def test_warm_generate_skips_all_encoder_work(self, observed):
        generator = fit_twin(observed, embed_cache=True)
        cold = generator.generate(seed=0)
        after_cold = generator.cache_stats()
        assert after_cold["encoded_rows"] > 0
        assert after_cold["encode_calls"] > 0
        assert after_cold["encoded_rows"] % EMBED_TILE in (
            0,
            observed.num_nodes * observed.num_timestamps % EMBED_TILE,
        )

        warm = generator.generate(seed=0)
        after_warm = generator.cache_stats()
        assert after_warm["encoded_rows"] == after_cold["encoded_rows"]
        assert after_warm["encode_calls"] == after_cold["encode_calls"]
        assert after_warm["hit_rows"] > after_cold["hit_rows"]
        assert graph_fingerprint(warm) == graph_fingerprint(cold)

    def test_warm_score_topk_skips_all_encoder_work(self, observed):
        generator = fit_twin(observed, embed_cache=True)
        first = generator.score_topk(3)
        after_first = generator.cache_stats()
        second = generator.score_topk(3)
        after_second = generator.cache_stats()
        assert after_second["encoded_rows"] == after_first["encoded_rows"]
        assert after_second["encode_calls"] == after_first["encode_calls"]
        assert after_second["hit_rows"] > after_first["hit_rows"]
        assert_topk_equal(first, second)

    def test_generate_then_score_share_rows(self, observed):
        generator = fit_twin(observed, embed_cache=True)
        generator.score_topk(3)  # warms every active row
        after_score = generator.cache_stats()
        generator.generate(seed=1)
        after_generate = generator.cache_stats()
        assert after_generate["encoded_rows"] == after_score["encoded_rows"]

    def test_engine_and_cache_persist_across_calls(self, observed):
        generator = fit_twin(observed, embed_cache=True)
        generator.generate(seed=0)
        engine = generator.engine()
        cache = engine.cache
        generator.generate(seed=1)
        assert generator.engine() is engine
        assert generator.engine().cache is cache


class TestIncrementalInvalidation:
    """Append with epochs=0: only dirty rows drop, outputs match cold."""

    @staticmethod
    def localized_append(observed, fraction=0.05):
        """~``fraction`` of the edge count, concentrated on two nodes."""
        k = max(1, int(fraction * observed.num_edges))
        src = np.zeros(k, dtype=np.int64)
        dst = np.ones(k, dtype=np.int64)
        t = np.zeros(k, dtype=np.int64)
        return src, dst, t

    def test_only_dirty_rows_invalidated(self, observed):
        generator = fit_twin(observed, embed_cache=True)
        generator.score_topk(3)  # fully warm the active universe
        cache = generator.engine().cache
        valid_before = cache.valid.copy()
        before = generator.cache_stats()

        src, dst, t = self.localized_append(observed)
        generator.update((src, dst, t), epochs=0)
        dirty = dirty_temporal_nodes(
            generator.observed, src, dst, t,
            radius=generator.config.radius,
            time_window=generator.config.time_window,
        )
        num_rows = observed.num_nodes * observed.num_timestamps
        assert 0 < dirty.size < num_rows, "append must dirty a strict subset"

        after = generator.cache_stats()
        assert after["invalidated_rows"] - before["invalidated_rows"] == int(
            valid_before[dirty].sum()
        )
        assert after["flushes"] == before["flushes"], "no full flush on append"
        # Exactly the dirty rows dropped; every clean row survived.
        assert not cache.valid[dirty].any()
        clean = np.setdiff1d(np.arange(num_rows), dirty)
        assert np.array_equal(cache.valid[clean], valid_before[clean])

    def test_post_append_output_matches_cold_and_off(self, observed):
        warm = fit_twin(observed, embed_cache=True)
        cold = fit_twin(observed, embed_cache=True)
        off = fit_twin(observed, embed_cache=False)
        warm.generate(seed=0)  # populate before the append

        src, dst, t = self.localized_append(observed)
        for generator in (warm, cold, off):
            generator.update((src, dst, t), epochs=0)

        fp_warm = graph_fingerprint(warm.generate(seed=0))
        assert fp_warm == graph_fingerprint(cold.generate(seed=0))
        assert fp_warm == graph_fingerprint(off.generate(seed=0))
        assert_topk_equal(warm.score_topk(3), off.score_topk(3))

    def test_surviving_rows_keep_serving_hits(self):
        # A sparser, larger universe than the module graph: the 2-hop
        # dirty neighbourhood of one appended edge must cover a strict
        # subset of the encode tiles for the partial-recompute assertion
        # to have teeth.
        observed = communication_network(60, 180, 5, seed=17)
        generator = fit_twin(observed, embed_cache=True, epochs=2,
                             num_initial_nodes=8)
        generator.score_topk(3)
        before = generator.cache_stats()

        src, dst, t = self.localized_append(observed)
        generator.update((src, dst, t), epochs=0)
        dirty = dirty_temporal_nodes(
            generator.observed, src, dst, t,
            radius=generator.config.radius,
            time_window=generator.config.time_window,
        )
        generator.score_topk(3)
        after = generator.cache_stats()
        # Re-encoded rows are bounded by the tiles covering the dirty set --
        # never the whole universe again.
        dirty_tiles = np.unique(dirty // EMBED_TILE)
        assert (
            after["encoded_rows"] - before["encoded_rows"]
            <= dirty_tiles.size * EMBED_TILE
        )
        assert after["encoded_rows"] - before["encoded_rows"] < before["encoded_rows"]
        assert after["hit_rows"] > before["hit_rows"]

    def test_dirty_set_covers_all_changed_rows(self, observed):
        """Soundness: rows whose embeddings moved are inside the dirty set."""
        generator = fit_twin(observed, embed_cache=False)
        engine_before = generator.engine()
        centers = all_centers(observed)
        emb_before = engine_before.chunk_embeddings(centers)

        src, dst, t = self.localized_append(observed)
        generator.update((src, dst, t), epochs=0)
        dirty = dirty_temporal_nodes(
            generator.observed, src, dst, t,
            radius=generator.config.radius,
            time_window=generator.config.time_window,
        )
        emb_after = generator.engine().chunk_embeddings(centers)
        changed = np.flatnonzero(np.any(emb_before != emb_after, axis=1))
        assert np.isin(changed, dirty).all(), (
            "dirty_temporal_nodes missed rows whose embeddings changed: "
            f"{np.setdiff1d(changed, dirty)}"
        )

    def test_retraining_flushes_via_weights_token(self, observed):
        generator = fit_twin(observed, embed_cache=True)
        off = fit_twin(observed, embed_cache=False)
        generator.generate(seed=0)
        before = generator.cache_stats()
        assert before["weight_flushes"] == 0

        generator.update(epochs=1)
        off.update(epochs=1)
        fp_on = graph_fingerprint(generator.generate(seed=0))
        after = generator.cache_stats()
        assert after["weight_flushes"] == before["weight_flushes"] + 1
        assert fp_on == graph_fingerprint(off.generate(seed=0))


class TestCacheUnit:
    """EmbeddingCache versioning semantics in isolation."""

    WT_A = "a" * 64
    WT_B = "b" * 64
    GT_A = "c" * 64
    GT_B = "d" * 64

    def test_ensure_binds_then_flushes_on_weight_change(self):
        cache = EmbeddingCache(8, 4, dtype=np.float64)
        assert not cache.tokens_set
        assert cache.ensure(self.WT_A, self.GT_A)
        cache.store(np.arange(8), np.ones((8, 4)))
        assert cache.ensure(self.WT_A, self.GT_A)  # re-ensure is a no-op
        assert cache.valid.all()

        assert cache.ensure(self.WT_B, self.GT_A)  # writable always rebinds
        assert not cache.valid.any()
        assert cache.stats["flushes"] == 1
        assert cache.stats["weight_flushes"] == 1
        assert cache.stats["graph_flushes"] == 0

    def test_invalidate_rows_rebinds_graph_token(self):
        cache = EmbeddingCache(8, 4, dtype=np.float64)
        cache.ensure(self.WT_A, self.GT_A)
        cache.store(np.arange(8), np.ones((8, 4)))
        dropped = cache.invalidate_rows(np.array([1, 3]), graph=self.GT_B)
        assert dropped == 2
        assert cache.ensure(self.WT_A, self.GT_B)  # rebound, not flushed
        assert cache.stats["flushes"] == 0
        assert int(cache.valid.sum()) == 6

    def test_attached_cache_is_read_only_and_stale_safe(self):
        cache = EmbeddingCache(8, 4, dtype=np.float64)
        cache.ensure(self.WT_A, self.GT_A)
        cache.store(np.arange(8), np.arange(32, dtype=np.float64).reshape(8, 4))
        attached = EmbeddingCache.attached(cache.share_arrays())
        assert not attached.writable
        assert attached.ensure(self.WT_A, self.GT_A)
        out = np.empty((2, 4))
        assert attached.fill(np.array([0, 5]), out).all()
        assert np.array_equal(out, cache.rows[[0, 5]])
        # A stale segment (token mismatch) refuses to serve, loudly.
        assert not attached.ensure(self.WT_B, self.GT_A)
        assert attached.stats["stale_misses"] == 1
        with pytest.raises(ValueError):
            attached.invalidate_rows(np.array([0]))
        with pytest.raises(ValueError):
            attached.flush()

    def test_tokens_match_shm_state_token(self, fitted_on, observed):
        from repro.core.parallel import _state_token

        assert weights_token(fitted_on.model) == _state_token(fitted_on.engine())
        token = graph_token(observed, fitted_on.config, None)
        assert token != graph_token(
            observed, dataclasses.replace(fitted_on.config, radius=1), None
        )


class TestConfigAndCli:
    """The off switches: config field, env sweep, CLI flags."""

    def test_fast_config_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_EMBED_CACHE", "off")
        assert fast_config().embed_cache is False
        monkeypatch.setenv("REPRO_EMBED_CACHE", "on")
        assert fast_config().embed_cache is True
        monkeypatch.delenv("REPRO_EMBED_CACHE")
        assert fast_config().embed_cache is True

    def test_cli_flag_disables_cache(self):
        from repro.cli import _config_from, build_parser

        parser = build_parser()
        base = ["fit", "--dataset", "EMAIL", "--model", "m.npz"]
        args = parser.parse_args(base + ["--no-embed-cache"])
        assert _config_from(args).embed_cache is False
        args = parser.parse_args(base)
        assert _config_from(args).embed_cache is True

    def test_generate_command_has_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["generate", "--model", "m.npz", "--output", "o.txt", "--no-embed-cache"]
        )
        assert args.embed_cache is False


@pytest.mark.skipif(
    not shared_memory_supported(), reason="platform has no POSIX shared memory"
)
class TestSharedMemoryCache:
    """The cache rides the shm dispatch path as one more read-only segment."""

    def test_pool_publishes_and_updates_embed_segment(self, observed, fitted_off):
        generator = fit_twin(observed, embed_cache=True, workers=2)
        with generator.worker_pool(workers=2) as pool:
            pooled = generator.generate(seed=0, workers=2)
            assert "embed" in pool._stores
            assert pool.health["embed_publishes"] >= 1
            # Mutate the cache in place (same graph/weights): the next
            # dispatch must sync the segment rather than republish it.
            generator.engine().cache.invalidate_rows(np.arange(4))
            publishes = pool.health["embed_publishes"]
            again = generator.generate(seed=0, workers=2)
            assert pool.health["embed_updates"] >= 1
            assert pool.health["embed_publishes"] == publishes
        assert graph_fingerprint(pooled) == graph_fingerprint(
            fitted_off.generate(seed=0)
        )
        assert graph_fingerprint(again) == graph_fingerprint(pooled)
        assert pool.shm_segments() == (), "embed segment must be reaped on close"

    def test_no_segment_without_cache(self, observed):
        generator = fit_twin(observed, embed_cache=False, workers=2)
        with generator.worker_pool(workers=2) as pool:
            generator.generate(seed=0, workers=2)
            assert "embed" not in pool._stores
            assert pool.health["embed_publishes"] == 0

    def test_pooled_score_topk_parity(self, observed, fitted_off):
        generator = fit_twin(observed, embed_cache=True, workers=2)
        with generator.worker_pool(workers=2):
            pooled = generator.score_topk(4, workers=2)
        assert_topk_equal(pooled, fitted_off.score_topk(4))


# ---------------------------------------------------------------------------
# Satellite (c): stateful parity between a cache-on and a cache-off twin.
# ---------------------------------------------------------------------------
_SM_GRAPH = communication_network(14, 60, 3, seed=5)
_SM_CONFIG = fast_config(
    epochs=2, num_initial_nodes=8, neighbor_threshold=4,
    embed_dim=8, hidden_dim=8, latent_dim=4, num_heads=1, time_dim=4,
    dtype="float64", seed=11,
)


@functools.lru_cache(maxsize=None)
def _sm_template():
    """One shared fitted pair; every machine run deep-copies it."""
    on = TGAEGenerator(dataclasses.replace(_SM_CONFIG, embed_cache=True))
    off = TGAEGenerator(dataclasses.replace(_SM_CONFIG, embed_cache=False))
    return on.fit(_SM_GRAPH), off.fit(_SM_GRAPH)


class CacheParityMachine(RuleBasedStateMachine):
    """Interleave the generator lifecycle; the twins may never disagree.

    ``self.on`` runs with the embedding cache, ``self.off`` without; every
    rule drives both through the same operation and asserts bitwise-equal
    outputs.  Appends use ``epochs=0`` (incremental invalidation),
    ``retrain_step`` moves the weights (token flush), ``refit`` rebuilds
    the model from scratch on the accumulated graph.
    """

    def __init__(self):
        super().__init__()
        template_on, template_off = _sm_template()
        self.on = copy.deepcopy(template_on)
        self.off = copy.deepcopy(template_off)

    @rule(seed=st.integers(0, 3))
    def generate_parity(self, seed):
        assert graph_fingerprint(self.on.generate(seed=seed)) == graph_fingerprint(
            self.off.generate(seed=seed)
        )

    @rule(k=st.integers(1, 4))
    def topk_parity(self, k):
        assert_topk_equal(self.on.score_topk(k), self.off.score_topk(k))

    @rule(
        edges=st.lists(
            st.tuples(
                st.integers(0, 13), st.integers(0, 13), st.integers(0, 2)
            ),
            min_size=1,
            max_size=3,
        )
    )
    def append_ingest(self, edges):
        src = np.array([e[0] for e in edges], dtype=np.int64)
        dst = np.array([e[1] for e in edges], dtype=np.int64)
        t = np.array([e[2] for e in edges], dtype=np.int64)
        self.on.update((src, dst, t), epochs=0)
        self.off.update((src, dst, t), epochs=0)

    @rule()
    def retrain_step(self):
        self.on.update(epochs=1)
        self.off.update(epochs=1)

    @rule()
    def refit(self):
        self.on.fit(self.on.observed)
        self.off.fit(self.off.observed)

    @invariant()
    def twins_share_the_world(self):
        assert graph_fingerprint(self.on.observed) == graph_fingerprint(
            self.off.observed
        )
        stats = self.on.cache_stats()
        if stats is not None:
            assert stats["stale_misses"] == 0


CacheParityMachine.TestCase.settings = hyp_settings(
    STATE_MACHINE_SETTINGS, stateful_step_count=5,
)
TestCacheParityMachine = CacheParityMachine.TestCase
