"""Tests for all ten baseline generators through the common API."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINES,
    BarabasiAlbertGenerator,
    DymondGenerator,
    ErdosRenyiGenerator,
    NetGANGenerator,
    TagGenGenerator,
    TiggerGenerator,
    VGAEGenerator,
)
from repro.baselines.common import (
    normalized_adjacency,
    sample_edges_from_scores,
    snapshot_dense_adjacency,
)
from repro.datasets import communication_network
from repro.errors import NotFittedError
from repro.graph import cumulative_snapshots


@pytest.fixture(scope="module")
def observed():
    return communication_network(25, 150, 5, seed=9)


class TestCommonHelpers:
    def test_normalized_adjacency_symmetric(self):
        adj = np.array([[0.0, 1.0], [1.0, 0.0]])
        norm = normalized_adjacency(adj)
        assert np.allclose(norm, norm.T)

    def test_normalized_adjacency_row_scale(self):
        # For a regular graph (with self-loops added) rows sum to 1.
        adj = np.ones((3, 3)) - np.eye(3)
        norm = normalized_adjacency(adj)
        assert np.allclose(norm.sum(axis=1), 1.0)

    def test_dense_adjacency_no_self_loops(self):
        adj = snapshot_dense_adjacency(3, np.array([0, 1]), np.array([0, 2]))
        assert adj[0, 0] == 0.0
        assert adj[1, 2] == 1.0
        assert adj[2, 1] == 1.0  # symmetrised

    def test_sample_edges_count_and_no_loops(self):
        rng = np.random.default_rng(0)
        scores = np.ones((6, 6))
        src, dst = sample_edges_from_scores(scores, 10, rng)
        assert src.size == 10
        assert np.all(src != dst)

    def test_sample_edges_distinct(self):
        rng = np.random.default_rng(1)
        src, dst = sample_edges_from_scores(np.ones((5, 5)), 15, rng)
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert len(pairs) == 15

    def test_sample_edges_respects_scores(self):
        rng = np.random.default_rng(2)
        scores = np.zeros((4, 4))
        scores[0, 1] = 1.0
        scores[2, 3] = 1.0
        src, dst = sample_edges_from_scores(scores, 2, rng)
        assert set(zip(src.tolist(), dst.tolist())) == {(0, 1), (2, 3)}


@pytest.mark.parametrize("name", list(BASELINES))
class TestAllBaselines:
    def test_end_to_end(self, observed, name):
        generator = BASELINES[name]().fit(observed)
        generated = generator.generate(seed=0)
        assert generated.num_edges == observed.num_edges
        assert generated.num_nodes == observed.num_nodes
        assert generated.num_timestamps == observed.num_timestamps
        if generated.num_edges:
            assert generated.src.max() < observed.num_nodes
            assert generated.t.max() < observed.num_timestamps

    def test_unfitted_raises(self, observed, name):
        with pytest.raises(NotFittedError):
            BASELINES[name]().generate()

    def test_name_attribute(self, observed, name):
        assert BASELINES[name]().name == name


class TestErdosRenyi:
    def test_per_timestamp_counts_match(self, observed):
        generated = ErdosRenyiGenerator().fit(observed).generate(seed=3)
        obs_counts = np.bincount(observed.t, minlength=observed.num_timestamps)
        gen_counts = np.bincount(generated.t, minlength=observed.num_timestamps)
        assert np.array_equal(obs_counts, gen_counts)

    def test_uniformity(self, observed):
        """E-R endpoints should be roughly uniform (no hub formation)."""
        generated = ErdosRenyiGenerator().fit(observed).generate(seed=4)
        degrees = generated.static_degrees()
        assert degrees.max() < 12 * max(degrees.mean(), 1)


class TestBarabasiAlbert:
    def test_creates_hubs(self):
        g = communication_network(40, 400, 4, seed=1)
        generated = BarabasiAlbertGenerator().fit(g).generate(seed=0)
        degrees = generated.static_degrees()
        # Preferential attachment must concentrate degree.
        assert degrees.max() > 3 * degrees.mean()

    def test_generate_twice_independent(self, observed):
        gen = BarabasiAlbertGenerator().fit(observed)
        a = gen.generate(seed=0)
        b = gen.generate(seed=0)
        assert a == b  # degree state resets between calls


class TestDymond:
    def test_motif_decomposition_triangle(self):
        tri = DymondGenerator._decompose_snapshot(
            np.array([0, 1, 2]), np.array([1, 2, 0])
        )
        assert tri == (1, 0, 0)

    def test_motif_decomposition_wedge(self):
        mix = DymondGenerator._decompose_snapshot(np.array([0, 1]), np.array([1, 2]))
        assert mix == (0, 1, 0)

    def test_motif_decomposition_single(self):
        mix = DymondGenerator._decompose_snapshot(np.array([0]), np.array([1]))
        assert mix == (0, 0, 1)

    def test_motif_decomposition_dedups(self):
        mix = DymondGenerator._decompose_snapshot(
            np.array([0, 0, 0]), np.array([1, 1, 1])
        )
        assert mix == (0, 0, 1)

    def test_preserves_triangle_tendency(self):
        """DYMOND output should contain triangles when the input is triangle-rich."""
        rng = np.random.default_rng(3)
        src, dst, t = [], [], []
        for i in range(0, 24, 3):
            a, b, c = i % 20, (i + 1) % 20, (i + 2) % 20
            for (u, v) in ((a, b), (b, c), (a, c)):
                src.append(u)
                dst.append(v)
                t.append(i % 4)
        from repro.graph import TemporalGraph
        from repro.metrics import triangle_count

        g = TemporalGraph(20, src, dst, t, num_timestamps=4)
        generated = DymondGenerator(seed=0).fit(g).generate(seed=0)
        final = cumulative_snapshots(generated)[-1]
        assert triangle_count(final) > 0


class TestLearnedBaselinesImprove:
    def test_netgan_beats_uniform_on_structure(self, observed):
        """NetGAN's walk model should capture degree structure better than E-R."""
        from repro.metrics import compare_graphs

        netgan = NetGANGenerator(epochs=15).fit(observed).generate(seed=0)
        er = ErdosRenyiGenerator().fit(observed).generate(seed=0)
        ng = compare_graphs(observed, netgan, statistics=["wedge_count"], reduction="mean")
        err = compare_graphs(observed, er, statistics=["wedge_count"], reduction="mean")
        assert ng["wedge_count"] <= err["wedge_count"] * 1.5

    def test_taggen_timestamps_nontrivial(self, observed):
        generated = TagGenGenerator(num_walks=150).fit(observed).generate(seed=0)
        # Walk-based assembly must spread edges across multiple timestamps.
        assert np.unique(generated.t).size > 1

    def test_tigger_uses_learned_model(self, observed):
        gen = TiggerGenerator(epochs=2, num_walks=80)
        gen.fit(observed)
        assert gen.model is not None
        generated = gen.generate(seed=0)
        assert generated.num_edges == observed.num_edges

    def test_vgae_scores_fit_observed_edges(self, observed):
        """VGAE per-snapshot scores should rank observed edges above random pairs."""
        gen = VGAEGenerator(epochs=25, seed=0)
        gen.fit(observed)
        timestamp = int(np.argmax(np.bincount(observed.t)))
        scores = np.asarray(gen._snapshot_states[timestamp])
        src, dst = observed.edges_at(timestamp)
        observed_mean = scores[src, dst].mean()
        rng = np.random.default_rng(0)
        rand_mean = scores[
            rng.integers(0, observed.num_nodes, 500),
            rng.integers(0, observed.num_nodes, 500),
        ].mean()
        assert observed_mean > rand_mean
