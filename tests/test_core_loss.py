"""Tests for the TGAE objective (Eqs. 6-7) and target-row extraction."""

import numpy as np
import pytest

from repro.autograd import tensor
from repro.core import adjacency_target_rows, reconstruction_loss, tgae_loss
from repro.core.decoder import DecoderOutput
from repro.errors import ShapeError


class TestReconstructionLoss:
    def test_perfect_prediction_near_zero(self):
        logits = tensor(np.array([[50.0, 0.0, 0.0], [0.0, 50.0, 0.0]]))
        loss = reconstruction_loss(logits, [np.array([0]), np.array([1])])
        assert loss.item() < 1e-6

    def test_uniform_logits_log_n(self):
        n = 4
        logits = tensor(np.zeros((1, n)))
        loss = reconstruction_loss(logits, [np.array([2])])
        assert loss.item() == pytest.approx(np.log(n))

    def test_empty_rows_skipped(self):
        logits = tensor(np.zeros((2, 3)))
        loss_one = reconstruction_loss(logits, [np.array([0]), np.array([])])
        loss_full = reconstruction_loss(logits, [np.array([0]), np.array([0])])
        assert loss_one.item() == pytest.approx(loss_full.item())

    def test_all_empty_rows_zero_loss(self):
        logits = tensor(np.zeros((2, 3)))
        assert reconstruction_loss(logits, [np.array([]), np.array([])]).item() == 0.0

    def test_multi_edge_targets_weighted(self):
        """Repeated neighbours concentrate target mass."""
        logits = tensor(np.array([[10.0, 0.0]]))
        concentrated = reconstruction_loss(logits, [np.array([0, 0, 0])])
        spread = reconstruction_loss(logits, [np.array([0, 1, 1])])
        assert concentrated.item() < spread.item()

    def test_row_count_mismatch_raises(self):
        with pytest.raises(ShapeError):
            reconstruction_loss(tensor(np.zeros((2, 3))), [np.array([0])])

    def test_gradient_direction(self):
        """The gradient must push probability mass towards the target."""
        logits = tensor(np.zeros((1, 3)), requires_grad=True)
        reconstruction_loss(logits, [np.array([1])]).backward()
        grad = logits.grad[0]
        assert grad[1] < 0  # increase target logit
        assert grad[0] > 0 and grad[2] > 0


class TestTgaeLoss:
    def _decoded(self, with_sigma=True):
        logits = tensor(np.zeros((2, 3)), requires_grad=True)
        mu = tensor(np.ones((2, 2)), requires_grad=True)
        log_sigma = tensor(np.zeros((2, 2)), requires_grad=True) if with_sigma else None
        return DecoderOutput(logits=logits, mu=mu, log_sigma=log_sigma, latent=mu)

    def test_kl_term_added(self):
        targets = [np.array([0]), np.array([1])]
        with_kl = tgae_loss(self._decoded(), targets, kl_weight=1.0).item()
        without_kl = tgae_loss(self._decoded(), targets, kl_weight=0.0).item()
        assert with_kl > without_kl

    def test_non_probabilistic_ignores_kl(self):
        targets = [np.array([0]), np.array([1])]
        loss = tgae_loss(self._decoded(with_sigma=False), targets, kl_weight=1.0).item()
        reference = tgae_loss(self._decoded(), targets, kl_weight=0.0).item()
        assert loss == pytest.approx(reference)


class TestTargetRows:
    def test_extracts_out_neighbors_at_timestamp(self):
        src = np.array([0, 0, 1, 0])
        dst = np.array([1, 2, 2, 1])
        t = np.array([0, 0, 1, 1])
        rows = adjacency_target_rows(src, dst, t, np.array([[0, 0], [0, 1], [1, 1]]))
        assert sorted(rows[0].tolist()) == [1, 2]
        assert rows[1].tolist() == [1]
        assert rows[2].tolist() == [2]

    def test_missing_center_gets_empty_row(self):
        src, dst, t = np.array([0]), np.array([1]), np.array([0])
        rows = adjacency_target_rows(src, dst, t, np.array([[1, 0], [0, 1]]))
        assert rows[0].size == 0
        assert rows[1].size == 0

    def test_multi_edges_preserved(self):
        src = np.array([0, 0])
        dst = np.array([1, 1])
        t = np.array([0, 0])
        rows = adjacency_target_rows(src, dst, t, np.array([[0, 0]]))
        assert rows[0].tolist() == [1, 1]
