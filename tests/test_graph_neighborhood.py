"""Tests for temporal neighbourhood queries (Definition 3)."""

from repro.graph import (
    TemporalGraph,
    first_order_neighbors,
    temporal_degree,
    temporal_neighborhood,
)


def chain_graph():
    # 0 -1@0- 1 -2@1- 2 -3@2- 3, plus 0->3 at t=5
    return TemporalGraph(
        4, [0, 1, 2, 0], [1, 2, 3, 3], [0, 1, 2, 5], num_timestamps=6
    )


class TestFirstOrder:
    def test_respects_time_window(self):
        g = chain_graph()
        neigh, times = first_order_neighbors(g, 0, 0, time_window=1)
        assert set(neigh.tolist()) == {1}
        neigh, _ = first_order_neighbors(g, 0, 0, time_window=5)
        assert set(neigh.tolist()) == {1, 3}

    def test_window_zero_exact_timestamp(self):
        g = chain_graph()
        neigh, times = first_order_neighbors(g, 1, 1, time_window=0)
        assert set(zip(neigh.tolist(), times.tolist())) == {(2, 1)}

    def test_counts_multi_edges(self):
        g = TemporalGraph(2, [0, 0], [1, 1], [0, 0])
        neigh, _ = first_order_neighbors(g, 0, 0, time_window=0)
        assert neigh.size == 2

    def test_isolated_node(self):
        g = TemporalGraph(3, [0], [1], [0])
        neigh, _ = first_order_neighbors(g, 2, 0, time_window=10)
        assert neigh.size == 0

    def test_direction_agnostic(self):
        g = TemporalGraph(2, [0], [1], [0])
        neigh_src, _ = first_order_neighbors(g, 0, 0, 0)
        neigh_dst, _ = first_order_neighbors(g, 1, 0, 0)
        assert neigh_src.tolist() == [1]
        assert neigh_dst.tolist() == [0]


class TestTemporalDegree:
    def test_matches_first_order_count(self):
        g = chain_graph()
        assert temporal_degree(g, 1, 1, time_window=1) == 2  # edges 0-1@0 and 1-2@1

    def test_degree_weighted_by_window(self):
        g = chain_graph()
        assert temporal_degree(g, 0, 0, time_window=0) == 1
        assert temporal_degree(g, 0, 0, time_window=5) == 2


class TestBFSNeighborhood:
    def test_hop_limit(self):
        g = chain_graph()
        one_hop = temporal_neighborhood(g, 0, 0, max_hops=1, time_window=5)
        assert (1, 0) in one_hop
        assert all(node != 2 for node, _ in one_hop)
        two_hop = temporal_neighborhood(g, 0, 0, max_hops=2, time_window=5)
        assert any(node == 2 for node, _ in two_hop)

    def test_window_enforced_globally(self):
        g = chain_graph()
        hood = temporal_neighborhood(g, 0, 0, max_hops=3, time_window=1)
        # edge 2-3@2 is outside |t - 0| <= 1, so (3, 2) must not appear.
        assert (3, 2) not in hood

    def test_excludes_center(self):
        g = chain_graph()
        hood = temporal_neighborhood(g, 0, 0, max_hops=2, time_window=5)
        assert (0, 0) not in hood

    def test_empty_for_isolated(self):
        g = TemporalGraph(3, [0], [1], [0])
        assert temporal_neighborhood(g, 2, 0, max_hops=2, time_window=5) == set()
