"""Tests for upscaled (larger-than-observed) generation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from strategies import SLOW_SETTINGS

from repro.baselines import ErdosRenyiGenerator
from repro.core import TGAEGenerator, UpscaledGenerator, expand_temporal_graph, fast_config
from repro.datasets import communication_network
from repro.errors import ConfigError, NotFittedError
from repro.graph import TemporalGraph


def small_graph(seed=0, n=15, m=90, T=4):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = (src + 1 + rng.integers(0, n - 1, m)) % n
    t = rng.integers(0, T, m)
    return TemporalGraph(n, src, dst, t, num_timestamps=T)


class TestExpand:
    def test_counts_scale_exactly(self):
        g = small_graph()
        big = expand_temporal_graph(g, 3, seed=0)
        assert big.num_nodes == g.num_nodes * 3
        assert big.num_edges == g.num_edges * 3
        assert big.num_timestamps == g.num_timestamps

    def test_factor_one_is_copy(self):
        g = small_graph()
        same = expand_temporal_graph(g, 1, seed=0)
        assert same == g
        assert same is not g

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigError):
            expand_temporal_graph(small_graph(), 0)

    def test_per_timestamp_counts_scale(self):
        g = small_graph()
        big = expand_temporal_graph(g, 4, seed=1)
        obs = np.bincount(g.t, minlength=g.num_timestamps)
        got = np.bincount(big.t, minlength=big.num_timestamps)
        assert np.array_equal(got, obs * 4)

    def test_clone_blocks_respected(self):
        """Every expanded endpoint is a clone of the original endpoint."""
        g = small_graph()
        factor = 3
        big = expand_temporal_graph(g, factor, seed=2)
        src_proto = big.src // factor
        dst_proto = big.dst // factor
        assert np.array_equal(src_proto, np.repeat(g.src, factor))
        assert np.array_equal(dst_proto, np.repeat(g.dst, factor))

    def test_no_self_loops_when_input_clean(self):
        g = small_graph()
        assert not np.any(g.src == g.dst)
        big = expand_temporal_graph(g, 2, seed=3)
        assert not np.any(big.src == big.dst)

    def test_deterministic_under_seed(self):
        g = small_graph()
        assert expand_temporal_graph(g, 3, seed=5) == expand_temporal_graph(g, 3, seed=5)

    def test_degree_mass_conserved_per_prototype(self):
        """Clones of ``u`` carry exactly ``factor`` times u's degree in total,
        so the degree distribution is preserved in expectation."""
        g = communication_network(40, 600, 4, seed=7)
        factor = 4
        big = expand_temporal_graph(g, factor, seed=0)
        obs_deg = g.static_degrees()
        clone_deg = big.static_degrees().reshape(g.num_nodes, factor).sum(axis=1)
        assert np.array_equal(clone_deg, obs_deg * factor)

    def test_mean_clone_degree_matches_prototype(self):
        """Per-clone mean degree equals the prototype degree (sampled check)."""
        g = communication_network(40, 600, 4, seed=7)
        factor = 8
        big = expand_temporal_graph(g, factor, seed=1)
        obs_deg = g.static_degrees().astype(np.float64)
        clone_mean = big.static_degrees().reshape(g.num_nodes, factor).mean(axis=1)
        assert np.allclose(clone_mean, obs_deg)


class TestUpscaledGenerator:
    def test_wraps_any_generator(self):
        g = small_graph()
        up = UpscaledGenerator(ErdosRenyiGenerator(), factor=3).fit(g)
        big = up.generate(seed=0)
        assert big.num_nodes == g.num_nodes * 3
        assert big.num_edges == g.num_edges * 3

    def test_wraps_tgae(self):
        g = small_graph(m=60)
        up = UpscaledGenerator(
            TGAEGenerator(fast_config(epochs=2, num_initial_nodes=8)), factor=2
        ).fit(g)
        big = up.generate(seed=0)
        assert big.num_nodes == g.num_nodes * 2

    def test_name_includes_factor(self):
        up = UpscaledGenerator(ErdosRenyiGenerator(), factor=5)
        assert up.name.endswith("x5")

    def test_not_fitted_error(self):
        with pytest.raises(NotFittedError):
            UpscaledGenerator(ErdosRenyiGenerator(), factor=2).generate()

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigError):
            UpscaledGenerator(ErdosRenyiGenerator(), factor=0)

    def test_reproducible(self):
        g = small_graph()
        up = UpscaledGenerator(ErdosRenyiGenerator(), factor=2).fit(g)
        assert up.generate(seed=4) == up.generate(seed=4)

    def test_different_seeds_differ(self):
        g = small_graph()
        up = UpscaledGenerator(ErdosRenyiGenerator(), factor=2).fit(g)
        assert up.generate(seed=1) != up.generate(seed=2)


class TestProperties:
    @given(st.integers(1, 5), st.integers(0, 2**16))
    @SLOW_SETTINGS
    def test_scaling_invariants(self, factor, seed):
        g = small_graph(seed=seed % 7)
        big = expand_temporal_graph(g, factor, seed=seed)
        assert big.num_nodes == g.num_nodes * factor
        assert big.num_edges == g.num_edges * factor
        assert big.src.max() < big.num_nodes
        assert big.dst.max() < big.num_nodes
