"""Tests for Snapshot and cumulative snapshot construction."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import Snapshot, TemporalGraph, cumulative_snapshots, snapshot_at


def triangle_snapshot():
    return Snapshot(4, np.array([0, 1, 2]), np.array([1, 2, 0]))


class TestSnapshot:
    def test_counts(self):
        s = triangle_snapshot()
        assert s.num_nodes == 4
        assert s.num_edges == 3

    def test_mismatched_arrays(self):
        with pytest.raises(GraphFormatError):
            Snapshot(3, np.array([0]), np.array([1, 2]))

    def test_adjacency_binary_after_dedup(self):
        s = Snapshot(3, np.array([0, 0, 0]), np.array([1, 1, 1]))
        adj = s.adjacency()
        assert adj[0, 1] == 1.0
        assert adj.nnz == 1

    def test_undirected_adjacency_symmetric(self):
        s = triangle_snapshot()
        sym = s.undirected_adjacency()
        assert (sym != sym.T).nnz == 0

    def test_undirected_drops_self_loops(self):
        s = Snapshot(2, np.array([0, 0]), np.array([0, 1]))
        assert s.undirected_adjacency().diagonal().sum() == 0

    def test_degrees_of_triangle(self):
        degrees = triangle_snapshot().degrees()
        assert np.allclose(degrees[:3], 2)
        assert degrees[3] == 0

    def test_active_nodes(self):
        assert triangle_snapshot().active_nodes().tolist() == [0, 1, 2]

    def test_active_nodes_empty(self):
        s = Snapshot(3, np.array([], dtype=int), np.array([], dtype=int))
        assert s.active_nodes().size == 0

    def test_to_networkx(self):
        g = triangle_snapshot().to_networkx()
        assert g.number_of_edges() == 3
        assert g.is_directed()

    def test_to_networkx_undirected(self):
        g = triangle_snapshot().to_networkx(directed=False)
        assert not g.is_directed()


class TestCumulativeSnapshots:
    def graph(self):
        return TemporalGraph(3, [0, 1, 2], [1, 2, 0], [0, 1, 2])

    def test_length_matches_timestamps(self):
        assert len(cumulative_snapshots(self.graph())) == 3

    def test_monotone_edge_counts(self):
        snaps = cumulative_snapshots(self.graph())
        counts = [s.num_edges for s in snaps]
        assert counts == [1, 2, 3]
        assert counts == sorted(counts)

    def test_last_snapshot_has_all_edges(self):
        g = self.graph()
        assert cumulative_snapshots(g)[-1].num_edges == g.num_edges

    def test_snapshot_at_matches_list(self):
        g = self.graph()
        listed = cumulative_snapshots(g)[1]
        single = snapshot_at(g, 1)
        assert single.num_edges == listed.num_edges

    def test_snapshot_at_out_of_range(self):
        with pytest.raises(GraphFormatError):
            snapshot_at(self.graph(), 3)
        with pytest.raises(GraphFormatError):
            snapshot_at(self.graph(), -1)

    def test_empty_timestamps_produce_empty_prefix(self):
        g = TemporalGraph(3, [0], [1], [2], num_timestamps=3)
        snaps = cumulative_snapshots(g)
        assert snaps[0].num_edges == 0
        assert snaps[1].num_edges == 0
        assert snaps[2].num_edges == 1
