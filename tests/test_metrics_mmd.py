"""Tests for total variation and the Gaussian-TV MMD (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from strategies import QUICK_SETTINGS

from repro.errors import ShapeError
from repro.metrics import gaussian_tv_kernel, mmd_squared, motif_mmd, total_variation


def dist(values):
    arr = np.asarray(values, dtype=float)
    return arr / arr.sum()


class TestTotalVariation:
    def test_identical_is_zero(self):
        p = dist([1, 2, 3])
        assert total_variation(p, p) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_symmetry(self):
        p, q = dist([1, 2, 3]), dist([3, 1, 1])
        assert total_variation(p, q) == total_variation(q, p)

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.75, 0.25])
        assert total_variation(p, q) == pytest.approx(0.25)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            total_variation(np.ones(2), np.ones(3))


class TestKernel:
    def test_self_kernel_is_one(self):
        p = dist([1, 2, 3])
        assert gaussian_tv_kernel(p, p) == 1.0

    def test_bounded(self):
        p, q = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        k = gaussian_tv_kernel(p, q, sigma=0.5)
        assert 0.0 < k < 1.0

    def test_sigma_widens_kernel(self):
        p, q = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert gaussian_tv_kernel(p, q, sigma=2.0) > gaussian_tv_kernel(p, q, sigma=0.5)


class TestMMD:
    def test_identical_samples_zero(self):
        samples = [dist([1, 2, 3]), dist([2, 2, 1])]
        assert mmd_squared(samples, list(samples)) == pytest.approx(0.0, abs=1e-12)

    def test_single_sample_closed_form(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        expected = 2.0 - 2.0 * gaussian_tv_kernel(p, q)
        assert motif_mmd(p, q) == pytest.approx(expected)

    def test_symmetry(self):
        p, q = dist([5, 1, 1]), dist([1, 1, 5])
        assert motif_mmd(p, q) == pytest.approx(motif_mmd(q, p))

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            p = dist(rng.random(6) + 0.01)
            q = dist(rng.random(6) + 0.01)
            assert motif_mmd(p, q) >= 0.0

    def test_monotone_in_divergence(self):
        base = dist([10, 1, 1])
        near = dist([9, 2, 1])
        far = dist([1, 1, 10])
        assert motif_mmd(base, near) < motif_mmd(base, far)

    def test_empty_samples_raise(self):
        with pytest.raises(ShapeError):
            mmd_squared([], [np.ones(2)])


@given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=8), st.integers(0, 10**6))
@QUICK_SETTINGS
def test_mmd_self_zero_property(values, _seed):
    p = dist(values)
    assert motif_mmd(p, p) == pytest.approx(0.0, abs=1e-12)


@given(
    st.lists(st.floats(0.01, 10.0), min_size=3, max_size=3),
    st.lists(st.floats(0.01, 10.0), min_size=3, max_size=3),
)
@QUICK_SETTINGS
def test_tv_triangle_inequality(a, b):
    p, q = dist(a), dist(b)
    r = dist(np.ones(3))
    assert total_variation(p, q) <= total_variation(p, r) + total_variation(r, q) + 1e-12
