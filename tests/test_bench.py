"""Tests for the benchmark harness, table builders, figures and timing."""

import numpy as np
import pytest

from repro.bench import (
    FIGURE5_METRICS,
    ablation_table,
    dataset_table,
    format_table,
    format_value,
    log_series,
    measure_point,
    method_registry,
    quality_table,
    render_sweep,
    render_tendency,
    run_method,
    run_methods,
    sweep,
    tendency_fit_error,
    tendency_series,
)
from repro.baselines import ErdosRenyiGenerator
from repro.core import fast_config
from repro.datasets import ScalabilityPoint, communication_network
from repro.errors import ConfigError
from repro.metrics import statistic_names

CONFIG = fast_config(epochs=2, num_initial_nodes=16)
FAST_METHODS = ["TGAE", "E-R", "B-A"]


@pytest.fixture(scope="module")
def observed():
    return communication_network(20, 120, 5, seed=3)


class TestHarness:
    def test_registry_contains_all_methods(self):
        registry = method_registry()
        assert "TGAE" in registry
        assert len(registry) == 11  # TGAE + 10 baselines

    def test_run_method_measures(self, observed):
        result = run_method(ErdosRenyiGenerator, observed, trace_memory=True)
        assert result.fit_seconds >= 0
        assert result.generate_seconds >= 0
        assert result.peak_memory_bytes > 0
        assert result.generated.num_edges == observed.num_edges
        assert result.total_seconds == pytest.approx(
            result.fit_seconds + result.generate_seconds
        )

    def test_run_methods_subset(self, observed):
        run = run_methods(observed, methods=FAST_METHODS, tgae_config=CONFIG)
        assert set(run.results) == set(FAST_METHODS)

    def test_unknown_method_raises(self, observed):
        with pytest.raises(ConfigError):
            run_methods(observed, methods=["NOPE"])


class TestFormatting:
    def test_format_value_paper_style(self):
        assert format_value(2.41e-3) == "2.41E-3"
        assert format_value(1.21e1) == "1.21E+1"
        assert format_value(0.0) == "0.00E+0"

    def test_format_table_alignment(self):
        rows = {"metric_a": {"X": 0.5, "Y": 1.0}}
        text = format_table(rows, columns=["X", "Y"])
        lines = text.splitlines()
        assert len(lines) == 2
        assert "metric_a" in lines[1]
        assert "5.00E-1" in lines[1]

    def test_format_table_missing_cell(self):
        text = format_table({"m": {"X": 0.5}}, columns=["X", "Y"])
        assert "--" in text


class TestTables:
    def test_dataset_table(self):
        table = dataset_table(["DBLP", "MSG"], scale="small")
        assert set(table) == {"DBLP", "MSG"}
        assert table["DBLP"]["edges"] > 0

    def test_quality_table_structure(self, observed):
        table = quality_table(
            observed, methods=FAST_METHODS, reduction="median", tgae_config=CONFIG
        )
        assert set(table) == set(statistic_names())
        for metric_row in table.values():
            assert set(metric_row) == set(FAST_METHODS)
            assert all(np.isfinite(v) for v in metric_row.values())

    def test_ablation_table_structure(self, observed):
        table = ablation_table(observed, config=CONFIG, delta=2)
        assert set(table) == {"degree", "motif"}
        assert set(table["degree"]) == {"TGAE", "TGAE-g", "TGAE-t", "TGAE-n", "TGAE-p"}


class TestFigures:
    def test_tendency_series_includes_origin(self, observed):
        data = tendency_series(observed, methods=["E-R"], metrics=["wedge_count"])
        assert "Origin" in data
        assert "E-R" in data
        assert data["Origin"]["wedge_count"].shape == (observed.num_timestamps,)

    def test_figure5_metric_list(self):
        assert len(FIGURE5_METRICS) == 6
        assert "mean_degree" not in FIGURE5_METRICS

    def test_log_series_zero_floor(self):
        out = log_series(np.array([0.0, 1.0, np.e]))
        assert out[0] == 0.0
        assert out[2] == pytest.approx(1.0)

    def test_render_tendency_text(self, observed):
        data = tendency_series(observed, methods=["E-R"], metrics=["wedge_count"])
        text = render_tendency(data, "wedge_count")
        assert "Origin" in text.splitlines()[0]
        assert len(text.splitlines()) == observed.num_timestamps + 1

    def test_fit_error_identity_zero(self, observed):
        from repro.metrics import statistic_time_series

        data = {
            "Origin": statistic_time_series(observed, ["wedge_count"]),
            "Copy": statistic_time_series(observed, ["wedge_count"]),
        }
        errors = tendency_fit_error(data, "wedge_count")
        assert errors["Copy"] == 0.0


class TestTiming:
    def test_measure_point(self):
        point = ScalabilityPoint(40, 5, 0.02)
        m = measure_point(ErdosRenyiGenerator, point)
        assert m.label == "40*5*0.02"
        assert m.inference_seconds >= 0
        assert m.peak_memory_bytes > 0
        assert np.isfinite(m.log_time)
        assert np.isfinite(m.log_memory_mib)

    def test_sweep_and_render(self):
        points = [ScalabilityPoint(30, 4, 0.02), ScalabilityPoint(60, 4, 0.02)]
        results = sweep(points, methods={"E-R": ErdosRenyiGenerator})
        assert len(results["E-R"]) == 2
        text = render_sweep(results, quantity="memory")
        assert "30*4*0.02" in text
