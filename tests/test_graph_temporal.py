"""Tests for the TemporalGraph container (Definitions 1-2)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import TemporalGraph, dense_temporal_adjacency, merge


def small_graph():
    #  edges: 0->1@0, 1->2@0, 2->0@1, 0->2@2, 1->0@2
    return TemporalGraph(3, [0, 1, 2, 0, 1], [1, 2, 0, 2, 0], [0, 0, 1, 2, 2])


class TestConstruction:
    def test_basic_properties(self):
        g = small_graph()
        assert g.num_nodes == 3
        assert g.num_edges == 5
        assert g.num_timestamps == 3

    def test_infers_num_timestamps(self):
        g = TemporalGraph(2, [0], [1], [7])
        assert g.num_timestamps == 8

    def test_empty_graph(self):
        g = TemporalGraph(3, [], [], [], num_timestamps=4)
        assert g.num_edges == 0
        assert g.num_temporal_nodes == 0

    def test_mismatched_arrays_raise(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph(3, [0, 1], [1], [0, 0])

    def test_out_of_range_node_raises(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph(2, [0], [5], [0])

    def test_negative_timestamp_raises(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph(2, [0], [1], [-1])

    def test_timestamp_beyond_t_raises(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph(2, [0], [1], [5], num_timestamps=3)

    def test_nonpositive_nodes_raise(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph(0, [], [], [])

    def test_equality(self):
        assert small_graph() == small_graph()
        other = TemporalGraph(3, [0], [1], [0])
        assert small_graph() != other

    def test_equality_order_independent(self):
        a = TemporalGraph(3, [0, 1], [1, 2], [0, 1])
        b = TemporalGraph(3, [1, 0], [2, 1], [1, 0])
        assert a == b


class TestSnapshots:
    def test_edges_at(self):
        g = small_graph()
        src, dst = g.edges_at(0)
        assert set(zip(src.tolist(), dst.tolist())) == {(0, 1), (1, 2)}

    def test_edges_until_accumulates(self):
        g = small_graph()
        src, _ = g.edges_until(1)
        assert src.size == 3

    def test_snapshots_iterator_covers_all_edges(self):
        g = small_graph()
        total = sum(src.size for _, src, _ in g.snapshots())
        assert total == g.num_edges

    def test_snapshots_yield_every_timestamp(self):
        g = small_graph()
        stamps = [t for t, _, _ in g.snapshots()]
        assert stamps == [0, 1, 2]


class TestDegrees:
    def test_temporal_degrees(self):
        g = small_graph()
        deg = g.temporal_degrees()
        assert deg.shape == (3, 3)
        # node 0 at t=0: one out-edge -> degree 1
        assert deg[0, 0] == 1
        # node 2 at t=1: out-edge 2->0 -> 1
        assert deg[2, 1] == 1
        assert deg.sum() == 2 * g.num_edges

    def test_static_degrees(self):
        g = small_graph()
        deg = g.static_degrees()
        assert deg.sum() == 2 * g.num_edges

    def test_num_temporal_nodes(self):
        g = small_graph()
        # occurrences: (0,0),(1,0),(2,0),(2,1),(0,1),(0,2),(2,2),(1,2)
        assert g.num_temporal_nodes == 8


class TestIncidence:
    def test_events_sorted_by_time(self):
        g = small_graph()
        _, times = g.incident_events(0)
        assert np.all(np.diff(times) >= 0)

    def test_events_count_both_directions(self):
        g = small_graph()
        others, _ = g.incident_events(0)
        assert others.size == 4  # 0->1@0, 2->0@1, 0->2@2, 1->0@2

    def test_isolated_node(self):
        g = TemporalGraph(4, [0], [1], [0])
        others, times = g.incident_events(3)
        assert others.size == 0


class TestTransformations:
    def test_copy_is_deep(self):
        g = small_graph()
        clone = g.copy()
        clone.src[0] = 2
        assert g.src[0] == 0

    def test_restricted_to(self):
        g = small_graph()
        sub = g.restricted_to(1)
        assert sub.num_edges == 3
        assert sub.num_timestamps == 2

    def test_deduplicated(self):
        g = TemporalGraph(2, [0, 0, 0], [1, 1, 1], [0, 0, 1])
        assert g.deduplicated().num_edges == 2

    def test_without_self_loops(self):
        g = TemporalGraph(2, [0, 1], [0, 0], [0, 0])
        assert g.without_self_loops().num_edges == 1

    def test_temporal_adjacency_dense(self):
        g = small_graph()
        adj = dense_temporal_adjacency(g)
        assert adj.shape == (3, 3, 3)
        assert adj[0, 0, 1] == 1
        assert adj[0, 1, 0] == 0  # directed
        assert adj.sum() == g.num_edges


def random_graph(num_nodes, num_edges, num_timestamps, seed):
    rng = np.random.default_rng(seed)
    return TemporalGraph(
        num_nodes,
        rng.integers(0, num_nodes, size=num_edges),
        rng.integers(0, num_nodes, size=num_edges),
        rng.integers(0, num_timestamps, size=num_edges),
        num_timestamps=num_timestamps,
    )


class TestSparseAdjacencyProvider:
    """The CSR providers must agree with the dense (T, n, n) reference."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_adjacency_at_matches_dense(self, seed):
        g = random_graph(12, 60, 4, seed)
        dense = dense_temporal_adjacency(g)
        for t in range(g.num_timestamps):
            sparse = g.adjacency_at(t).toarray()
            assert np.array_equal(sparse > 0, dense[t] > 0)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_symmetric_adjacency_matches_dense(self, seed):
        g = random_graph(10, 40, 3, seed)
        dense = dense_temporal_adjacency(g)
        for t in range(g.num_timestamps):
            ref = np.maximum(dense[t], dense[t].T).astype(np.float64)
            np.fill_diagonal(ref, 0.0)
            sparse = g.adjacency_at(t, symmetric=True).toarray()
            assert np.array_equal(sparse > 0, ref > 0)

    def test_adjacency_at_is_cached(self):
        g = small_graph()
        assert g.snapshot_view(0) is g.snapshot_view(0)
        # The CSR itself is the shared object, not just the Snapshot.
        assert g.adjacency_at(0, symmetric=True) is g.adjacency_at(0, symmetric=True)

    def test_adjacency_at_empty_timestamp(self):
        g = TemporalGraph(4, [0], [1], [0], num_timestamps=3)
        assert g.adjacency_at(2).nnz == 0

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_out_partner_groups_match_dict_of_sets(self, seed):
        g = random_graph(15, 80, 4, seed)
        offsets, partners = g.out_partner_groups()
        reference = {}
        for u, v in zip(g.src.tolist(), g.dst.tolist()):
            reference.setdefault(u, set()).add(v)
        assert offsets.shape == (g.num_nodes + 1,)
        for u in range(g.num_nodes):
            pool = partners[offsets[u] : offsets[u + 1]]
            assert sorted(pool.tolist()) == sorted(reference.get(u, set()))
            assert np.all(np.diff(pool) > 0)  # sorted + distinct

    def test_out_partner_groups_empty_graph(self):
        g = TemporalGraph(3, [], [], [], num_timestamps=2)
        offsets, partners = g.out_partner_groups()
        assert partners.size == 0
        assert np.array_equal(offsets, np.zeros(4, dtype=np.int64))


class TestMerge:
    def test_merge_unions_edges(self):
        a = TemporalGraph(3, [0], [1], [0])
        b = TemporalGraph(3, [1], [2], [1])
        merged = merge([a, b])
        assert merged.num_edges == 2
        assert merged.num_timestamps == 2

    def test_merge_empty_list_raises(self):
        with pytest.raises(GraphFormatError):
            merge([])

    def test_merge_takes_max_universe(self):
        a = TemporalGraph(2, [0], [1], [0])
        b = TemporalGraph(5, [4], [0], [0])
        assert merge([a, b]).num_nodes == 5
