"""Property-based tests (hypothesis) certifying the autograd substrate.

Every primitive used by the models is checked against finite differences on
randomly generated shapes and values, plus algebraic invariants that must
hold for arbitrary inputs.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from strategies import QUICK_SETTINGS

from repro.autograd import (
    check_gradients,
    log_softmax,
    segment_softmax,
    softmax,
    tensor,
)



def arrays(min_dim=1, max_dim=6, lo=-3.0, hi=3.0):
    return st.integers(min_dim, max_dim).flatmap(
        lambda n: st.lists(
            st.floats(lo, hi, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )


@given(arrays(), arrays())
@QUICK_SETTINGS
def test_add_commutative(a, b):
    n = min(len(a), len(b))
    x, y = tensor(a[:n]), tensor(b[:n])
    assert np.allclose((x + y).numpy(), (y + x).numpy())


@given(arrays(), arrays(), arrays())
@QUICK_SETTINGS
def test_mul_distributes_over_add(a, b, c):
    n = min(len(a), len(b), len(c))
    x, y, z = tensor(a[:n]), tensor(b[:n]), tensor(c[:n])
    left = (x * (y + z)).numpy()
    right = (x * y + x * z).numpy()
    assert np.allclose(left, right, atol=1e-9)


@given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_matmul_gradients_random_shapes(rows, inner, seed):
    rng = np.random.default_rng(seed)
    a = tensor(rng.standard_normal((rows, inner)), requires_grad=True)
    b = tensor(rng.standard_normal((inner, 3)), requires_grad=True)
    assert check_gradients(lambda x, y: x @ y, [a, b])


@given(st.integers(2, 6), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_softmax_is_distribution(cols, seed):
    rng = np.random.default_rng(seed)
    out = softmax(tensor(rng.standard_normal((3, cols)))).numpy()
    assert np.all(out > 0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@given(st.integers(2, 5), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_softmax_gradcheck_random(cols, seed):
    rng = np.random.default_rng(seed)
    x = tensor(rng.standard_normal((2, cols)), requires_grad=True)
    assert check_gradients(lambda t: softmax(t), [x])


@given(st.integers(2, 6), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_log_softmax_upper_bound(cols, seed):
    rng = np.random.default_rng(seed)
    out = log_softmax(tensor(rng.standard_normal((3, cols)))).numpy()
    assert np.all(out <= 1e-12)


@given(st.integers(1, 4), st.integers(2, 8), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_segment_softmax_partition_of_unity(num_segments, num_edges, seed):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, num_segments, size=num_edges)
    out = segment_softmax(tensor(rng.standard_normal(num_edges)), ids, num_segments).numpy()
    for segment in range(num_segments):
        mask = ids == segment
        if mask.any():
            assert np.isclose(out[mask].sum(), 1.0)


@given(st.integers(0, 2**31 - 1), st.integers(1, 4))
@QUICK_SETTINGS
def test_sum_reduction_gradients(seed, axis_count):
    rng = np.random.default_rng(seed)
    x = tensor(rng.standard_normal((3, 4)), requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, np.ones((3, 4)))


@given(st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_take_rows_then_segment_sum_roundtrip(seed):
    """segment_sum(take_rows(x, idx), idx) counts row multiplicity."""
    rng = np.random.default_rng(seed)
    x = tensor(rng.standard_normal((4, 2)))
    idx = rng.integers(0, 4, size=6)
    gathered = x.take_rows(idx)
    scattered = gathered.segment_sum(idx, 4).numpy()
    counts = np.bincount(idx, minlength=4).astype(float)
    assert np.allclose(scattered, x.numpy() * counts[:, None])


@given(st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_exp_log_inverse(seed):
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.1, 5.0, size=6)
    x = tensor(data)
    assert np.allclose(x.log().exp().numpy(), data)


@given(st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_reshape_preserves_sum_and_grad(seed):
    rng = np.random.default_rng(seed)
    x = tensor(rng.standard_normal(12), requires_grad=True)
    y = x.reshape(3, 4)
    assert np.isclose(y.sum().item(), x.numpy().sum())
    y.sum().backward()
    assert np.allclose(x.grad, np.ones(12))


@given(st.integers(2, 6), st.integers(1, 4), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_cross_entropy_gradcheck(classes, rows, seed):
    from repro.autograd import cross_entropy_with_logits

    rng = np.random.default_rng(seed)
    logits = tensor(rng.standard_normal((rows, classes)), requires_grad=True)
    targets = rng.integers(0, classes, size=rows)
    assert check_gradients(
        lambda x: cross_entropy_with_logits(x, targets), [logits]
    )


@given(st.integers(1, 5), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_binary_cross_entropy_gradcheck(n, seed):
    from repro.autograd import binary_cross_entropy_with_logits

    rng = np.random.default_rng(seed)
    logits = tensor(rng.standard_normal(n), requires_grad=True)
    targets = rng.integers(0, 2, size=n).astype(np.float64)
    assert check_gradients(
        lambda x: binary_cross_entropy_with_logits(x, targets), [logits]
    )


@given(st.integers(1, 6), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_kl_standard_normal_gradcheck_and_nonnegative(n, seed):
    from repro.autograd import kl_standard_normal

    rng = np.random.default_rng(seed)
    mu = tensor(rng.standard_normal((2, n)), requires_grad=True)
    log_sigma = tensor(rng.standard_normal((2, n)) * 0.3, requires_grad=True)
    assert check_gradients(lambda m, s: kl_standard_normal(m, s), [mu, log_sigma])
    value = float(kl_standard_normal(mu, log_sigma).numpy())
    assert value >= -1e-9  # KL divergence is non-negative


@given(st.integers(2, 5), st.integers(2, 10), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_segment_mean_matches_numpy(num_segments, num_values, seed):
    from repro.autograd import segment_mean

    rng = np.random.default_rng(seed)
    values = rng.standard_normal((num_values, 3))
    segments = rng.integers(0, num_segments, size=num_values)
    out = segment_mean(tensor(values), segments, num_segments).numpy()
    for seg in range(num_segments):
        members = values[segments == seg]
        expected = members.mean(axis=0) if members.size else np.zeros(3)
        assert np.allclose(out[seg], expected, atol=1e-9)


@given(st.integers(1, 6), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_logsumexp_shift_invariance(n, seed):
    from repro.autograd import logsumexp

    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    shift = 7.3
    a = logsumexp(tensor(x)).numpy()
    b = logsumexp(tensor(x + shift)).numpy()
    assert np.allclose(b, a + shift, atol=1e-9)


@given(st.integers(1, 6), st.integers(0, 2**31 - 1))
@QUICK_SETTINGS
def test_mse_gradcheck_and_zero_at_target(n, seed):
    from repro.autograd import mse

    rng = np.random.default_rng(seed)
    target = rng.standard_normal(n)
    prediction = tensor(rng.standard_normal(n), requires_grad=True)
    assert check_gradients(lambda p: mse(p, target), [prediction])
    assert float(mse(tensor(target), target).numpy()) == 0.0
