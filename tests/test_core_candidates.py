"""Tests for the sampled-softmax (candidate-set) decoder -- the scalability
extension implementing the paper's future-work direction."""

import dataclasses

import numpy as np
import pytest

from repro.autograd import tensor
from repro.core import EgoGraphSampler, TGAEGenerator, TGAEModel, fast_config
from repro.core.loss import candidate_reconstruction_loss, tgae_loss
from repro.datasets import communication_network
from repro.errors import ConfigError, ShapeError
from repro.graph import validate_generated


@pytest.fixture(scope="module")
def observed():
    return communication_network(25, 150, 5, seed=17)


SPARSE = fast_config(epochs=3, num_initial_nodes=12, candidate_limit=8)


class TestConfig:
    def test_negative_limit_rejected(self):
        with pytest.raises(ConfigError):
            fast_config(candidate_limit=-1)

    def test_default_is_dense(self):
        assert fast_config().candidate_limit == 0


class TestSampler:
    def test_candidate_shape(self, observed):
        sampler = EgoGraphSampler(observed, SPARSE, np.random.default_rng(0))
        batch = sampler.next_batch()
        assert batch.candidates is not None
        assert batch.candidates.shape == (SPARSE.num_initial_nodes, 8)
        assert batch.candidates.max() < observed.num_nodes

    def test_positives_always_included(self, observed):
        sampler = EgoGraphSampler(observed, SPARSE, np.random.default_rng(1))
        batch = sampler.next_batch()
        for row, targets in enumerate(batch.target_rows):
            for target in np.unique(targets)[:8]:
                assert target in batch.candidates[row]

    def test_dense_mode_has_no_candidates(self, observed):
        dense = dataclasses.replace(SPARSE, candidate_limit=0)
        sampler = EgoGraphSampler(observed, dense, np.random.default_rng(2))
        assert sampler.next_batch().candidates is None


class TestDecoder:
    def test_candidate_logits_shape(self, observed):
        model = TGAEModel(observed.num_nodes, observed.num_timestamps, SPARSE)
        sampler = EgoGraphSampler(observed, SPARSE, np.random.default_rng(3))
        batch = sampler.next_batch()
        decoded = model(batch.bipartite, sample=False, candidates=batch.candidates)
        assert decoded.logits.shape == batch.candidates.shape

    def test_candidate_logits_match_dense_columns(self, observed):
        """Sparse logits must equal the corresponding dense logit columns."""
        model = TGAEModel(observed.num_nodes, observed.num_timestamps, SPARSE)
        sampler = EgoGraphSampler(observed, SPARSE, np.random.default_rng(4))
        batch = sampler.next_batch()
        dense = model(batch.bipartite, sample=False).logits.numpy()
        sparse = model(
            batch.bipartite, sample=False, candidates=batch.candidates
        ).logits.numpy()
        for row in range(batch.candidates.shape[0]):
            assert np.allclose(sparse[row], dense[row][batch.candidates[row]])

    def test_loss_gradients_flow(self, observed):
        model = TGAEModel(observed.num_nodes, observed.num_timestamps, SPARSE)
        sampler = EgoGraphSampler(observed, SPARSE, np.random.default_rng(5))
        batch = sampler.next_batch()
        decoded = model(batch.bipartite, sample=True, candidates=batch.candidates)
        loss = tgae_loss(decoded, batch.target_rows, kl_weight=1e-3,
                         candidates=batch.candidates)
        loss.backward()
        assert model.decoder.w_dec.grad is not None
        # Only candidate columns receive gradient.
        touched = np.unique(batch.candidates.reshape(-1))
        grad_cols = np.abs(model.decoder.w_dec.grad).sum(axis=0)
        untouched = np.setdiff1d(np.arange(observed.num_nodes), touched)
        assert np.allclose(grad_cols[untouched], 0.0)


class TestCandidateLoss:
    def test_perfect_prediction(self):
        logits = tensor(np.array([[50.0, 0.0, 0.0]]))
        candidates = np.array([[7, 3, 4]])
        loss = candidate_reconstruction_loss(logits, candidates, [np.array([7])])
        assert loss.item() < 1e-6

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            candidate_reconstruction_loss(
                tensor(np.zeros((2, 3))), np.zeros((2, 4), dtype=int),
                [np.array([0]), np.array([1])],
            )

    def test_empty_targets_zero(self):
        loss = candidate_reconstruction_loss(
            tensor(np.zeros((1, 3))), np.array([[0, 1, 2]]), [np.array([])]
        )
        assert loss.item() == 0.0


class TestEndToEnd:
    def test_sparse_generator_valid(self, observed):
        generator = TGAEGenerator(SPARSE).fit(observed)
        generated = generator.generate(seed=0)
        report = validate_generated(observed, generated)
        assert report.ok, str(report)

    def test_sparse_training_loss_finite(self, observed):
        generator = TGAEGenerator(SPARSE).fit(observed)
        assert np.all(np.isfinite(generator.history.losses))

    def test_generation_prefers_partners(self, observed):
        """With candidate pools built from history, most generated edges
        should land on historical partners rather than random negatives."""
        config = dataclasses.replace(SPARSE, epochs=20)
        generator = TGAEGenerator(config).fit(observed)
        generated = generator.generate(seed=1)
        partners = set(zip(observed.src.tolist(), observed.dst.tolist()))
        hits = sum(
            1 for u, v in zip(generated.src.tolist(), generated.dst.tolist())
            if (u, v) in partners
        )
        assert hits / generated.num_edges > 0.3