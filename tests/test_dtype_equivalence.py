"""Float32-vs-float64 policy equivalence (tolerance-gated).

The float64 policy is the golden path, pinned bitwise by the GOLDEN_DENSE
fingerprints; the float32 production default must agree with it *within
tolerance* on everything a user observes: training loss curves, generated
graphs and their summary statistics, and ``score_topk`` rankings.  These
tests are the contract behind ``TGAEConfig.dtype`` (see
``docs/ARCHITECTURE.md``, "Dtype policy").
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, dtype_audit
from repro.core import TGAEGenerator, fast_config
from repro.datasets import communication_network


@pytest.fixture(scope="module")
def observed():
    return communication_network(25, 150, 5, seed=17)


def _fitted(observed, dtype, **overrides):
    settings = dict(epochs=3, num_initial_nodes=12, dtype=dtype)
    settings.update(overrides)
    return TGAEGenerator(fast_config(**settings)).fit(observed)


@pytest.fixture(scope="module")
def gen64(observed):
    return _fitted(observed, "float64")


@pytest.fixture(scope="module")
def gen32(observed):
    return _fitted(observed, "float32")


class TestPolicyPlumbing:
    def test_float32_parameters(self, gen32):
        for name, param in gen32.model.named_parameters():
            assert param.data.dtype == np.float32, name

    def test_float64_parameters(self, gen64):
        for name, param in gen64.model.named_parameters():
            assert param.data.dtype == np.float64, name

    def test_losses_are_python_floats_either_way(self, gen32, gen64):
        for gen in (gen32, gen64):
            assert all(isinstance(x, float) for x in gen.history.losses)

    def test_init_draws_policy_independent(self, gen32, gen64):
        """Parameters are initialised at float64 then cast: the float32
        parameters are exactly the float64 ones rounded."""
        p64 = dict(gen64.model.named_parameters())
        for name, param in gen32.model.named_parameters():
            # Training trajectories diverge, so compare magnitudes loosely;
            # the init-equality itself is asserted on untrained models below.
            assert param.data.shape == p64[name].data.shape

    def test_untrained_params_are_rounded_float64_inits(self):
        from repro.core.model import TGAEModel

        m64 = TGAEModel(10, 4, fast_config(dtype="float64"))
        m32 = TGAEModel(10, 4, fast_config(dtype="float32"))
        p64 = dict(m64.named_parameters())
        for name, param in m32.named_parameters():
            assert np.array_equal(
                param.data, p64[name].data.astype(np.float32)
            ), name


class TestEquivalence:
    def test_loss_curves_match_within_tolerance(self, gen32, gen64):
        l32 = np.asarray(gen32.history.losses)
        l64 = np.asarray(gen64.history.losses)
        assert l32.shape == l64.shape
        np.testing.assert_allclose(l32, l64, rtol=1e-3, atol=1e-4)

    def test_generated_graph_metrics_match(self, gen32, gen64):
        g32 = gen32.generate(seed=3)
        g64 = gen64.generate(seed=3)
        assert g32.num_edges == g64.num_edges
        assert g32.num_nodes == g64.num_nodes
        # Summary statistics of the generated structure agree closely: the
        # edge budgets are policy-independent by construction and the drawn
        # targets come from near-identical distributions.
        hist32 = np.bincount(g32.t, minlength=g32.num_timestamps)
        hist64 = np.bincount(g64.t, minlength=g64.num_timestamps)
        assert np.array_equal(hist32, hist64)
        # Out-degrees reproduce the observed edge budgets, which are
        # policy-independent: exact match.
        out32 = np.bincount(g32.src, minlength=g32.num_nodes)
        out64 = np.bincount(g64.src, minlength=g64.num_nodes)
        assert np.array_equal(out32, out64)
        # In-degrees come from the learned distributions, which differ only
        # by rounding: their dispersion agrees within a loose band (the
        # individual sampled edges legitimately differ between policies).
        in32 = np.bincount(g32.dst, minlength=g32.num_nodes)
        in64 = np.bincount(g64.dst, minlength=g64.num_nodes)
        assert in32.mean() == in64.mean()
        assert 0.7 <= (in32.std() + 1.0) / (in64.std() + 1.0) <= 1.4

    def test_score_topk_rankings_match(self, gen32, gen64):
        s32 = gen32.score_topk(3)
        s64 = gen64.score_topk(3)
        keys32 = set(
            zip(s32.node.tolist(), s32.timestamp.tolist(), s32.target.tolist())
        )
        keys64 = set(
            zip(s64.node.tolist(), s64.timestamp.tolist(), s64.target.tolist())
        )
        assert len(keys32 & keys64) / max(len(keys64), 1) >= 0.9
        np.testing.assert_allclose(
            np.sort(s32.score), np.sort(s64.score), rtol=1e-3, atol=1e-5
        )

    def test_streaming_path_equivalence(self, observed):
        g32 = _fitted(observed, "float32", candidate_limit=8).generate(seed=1)
        g64 = _fitted(observed, "float64", candidate_limit=8).generate(seed=1)
        assert g32.num_edges == g64.num_edges
        assert np.array_equal(
            np.bincount(g32.t, minlength=g32.num_timestamps),
            np.bincount(g64.t, minlength=g64.num_timestamps),
        )


class TestNoFloat64OnProductionPath:
    def test_fit_generate_never_allocates_float64_tensor(self, observed):
        """Under the float32 policy no Tensor on the fit -> generate path is
        float64 (the engine's plain-ndarray sampling scratch is exempt by
        design -- it never enters the autograd graph)."""
        with dtype_audit() as seen:
            gen = _fitted(observed, "float32", epochs=2)
            gen.generate(seed=0)
            gen.score_topk(2)
        assert np.dtype(np.float32) in seen
        assert np.dtype(np.float64) not in seen

    def test_audit_restores_previous_scope(self):
        with dtype_audit() as outer:
            Tensor(np.zeros(2, dtype=np.float32))
            with dtype_audit() as inner:
                Tensor(np.zeros(2, dtype=np.float64))
            Tensor(np.ones(2, dtype=np.float32))
        assert np.dtype(np.float64) in inner
        assert np.dtype(np.float64) not in outer
        assert np.dtype(np.float32) in outer


class TestGradCheckUnderFloat32:
    def test_gradcheck_passes_on_float32_leaves(self):
        """grad_check forces float64 internally, so a float32-policy call
        still verifies at float64 tolerances."""
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 5)).astype(np.float32), requires_grad=True)

        def fn(x, y):
            return ((x @ y).leaky_relu(0.2) * 0.5).sum()

        assert check_gradients(fn, [a, b], atol=1e-6, rtol=1e-5)
        # The caller's leaves are untouched: still float32, no grads written.
        assert a.data.dtype == np.float32 and b.data.dtype == np.float32
