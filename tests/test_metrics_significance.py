"""Tests for the temporal-motif significance profiles."""

import numpy as np
import pytest

from repro.datasets import citation_network
from repro.errors import GraphFormatError
from repro.graph import TemporalGraph, shuffle_timestamps
from repro.metrics import motif_significance_profile, significance_similarity


@pytest.fixture(scope="module")
def structured_graph():
    """Citation-style growth graph: temporally ordered triangles abound."""
    return citation_network(40, 300, 8, seed=3)


class TestProfile:
    def test_shapes(self, structured_graph):
        z, profile = motif_significance_profile(
            structured_graph, delta=2, num_nulls=5, seed=0
        )
        assert z.shape == profile.shape
        assert z.ndim == 1

    def test_profile_unit_norm_or_zero(self, structured_graph):
        _, profile = motif_significance_profile(
            structured_graph, delta=2, num_nulls=5, seed=0
        )
        norm = np.linalg.norm(profile)
        assert norm == pytest.approx(1.0, abs=1e-9) or norm == 0.0

    def test_deterministic_under_seed(self, structured_graph):
        a = motif_significance_profile(structured_graph, delta=2, num_nulls=5, seed=1)
        b = motif_significance_profile(structured_graph, delta=2, num_nulls=5, seed=1)
        assert np.array_equal(a[0], b[0])

    def test_structured_graph_is_significant(self, structured_graph):
        """A growth graph's temporal ordering departs from the shuffle null."""
        z, _ = motif_significance_profile(
            structured_graph, delta=2, num_nulls=10, seed=0
        )
        assert np.abs(z).max() > 2.0

    def test_shuffled_graph_is_less_significant(self, structured_graph):
        """A pre-shuffled graph sits inside its own null ensemble."""
        z_obs, _ = motif_significance_profile(
            structured_graph, delta=2, num_nulls=10, seed=0
        )
        shuffled = shuffle_timestamps(structured_graph, seed=99)
        z_null, _ = motif_significance_profile(shuffled, delta=2, num_nulls=10, seed=0)
        assert np.abs(z_null).max() < np.abs(z_obs).max()

    def test_rewire_null_supported(self, structured_graph):
        z, profile = motif_significance_profile(
            structured_graph, delta=2, num_nulls=4, null="rewire", seed=0
        )
        assert z.shape == profile.shape

    def test_unknown_null_rejected(self, structured_graph):
        with pytest.raises(GraphFormatError):
            motif_significance_profile(structured_graph, null="erdos")

    def test_too_few_nulls_rejected(self, structured_graph):
        with pytest.raises(GraphFormatError):
            motif_significance_profile(structured_graph, num_nulls=1)

    def test_tiny_graph_does_not_crash(self):
        g = TemporalGraph(3, [0, 1], [1, 2], [0, 1], num_timestamps=2)
        z, profile = motif_significance_profile(g, delta=2, num_nulls=3, seed=0)
        assert np.all(np.isfinite(z))


class TestSimilarity:
    def test_self_similarity_one(self, structured_graph):
        _, profile = motif_significance_profile(
            structured_graph, delta=2, num_nulls=5, seed=0
        )
        if np.linalg.norm(profile) > 0:
            assert significance_similarity(profile, profile) == pytest.approx(1.0)

    def test_opposite_profiles_negative(self):
        a = np.zeros(36)
        a[0], a[5] = 1.0, -0.5
        assert significance_similarity(a, -a) == pytest.approx(-1.0)

    def test_zero_profile_similarity_zero(self):
        assert significance_similarity(np.zeros(36), np.ones(36)) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            significance_similarity(np.ones(36), np.ones(35))

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.normal(size=36), rng.normal(size=36)
            s = significance_similarity(a, b)
            assert -1.0 - 1e-9 <= s <= 1.0 + 1e-9
