"""Tests for the degree-distribution and temporal-tendency extension metrics."""

import numpy as np
import pytest

from repro.datasets import communication_network
from repro.graph import Snapshot, TemporalGraph, cumulative_snapshots
from repro.metrics import (
    degree_histogram,
    degree_mmd,
    final_degree_mmd,
    temporal_tendency_error,
    tendency_report,
)


def graph():
    return communication_network(20, 100, 4, seed=7)


class TestDegreeHistogram:
    def test_normalised(self):
        snap = cumulative_snapshots(graph())[-1]
        hist = degree_histogram(snap)
        assert hist.sum() == pytest.approx(1.0)
        assert np.all(hist >= 0)

    def test_support_extension(self):
        snap = cumulative_snapshots(graph())[-1]
        hist = degree_histogram(snap, max_degree=100)
        assert hist.size == 101

    def test_star_histogram(self):
        snap = Snapshot(5, np.zeros(4, dtype=int), np.arange(1, 5))
        hist = degree_histogram(snap)
        # degrees: hub 4, leaves 1,1,1,1 -> bin1 = 4/5, bin4 = 1/5.
        assert hist[1] == pytest.approx(0.8)
        assert hist[4] == pytest.approx(0.2)

    def test_empty_uniform(self):
        snap = Snapshot(4, np.array([], dtype=int), np.array([], dtype=int))
        hist = degree_histogram(snap, max_degree=3)
        assert np.allclose(hist, 0.25)


class TestDegreeMMD:
    def test_identity_zero(self):
        g = graph()
        assert degree_mmd(g, g.copy()) == pytest.approx(0.0, abs=1e-12)
        assert final_degree_mmd(g, g.copy()) == pytest.approx(0.0, abs=1e-12)

    def test_detects_degree_shift(self):
        g = graph()
        # Concentrate every edge on node 0: radically different histogram.
        concentrated = TemporalGraph(
            g.num_nodes,
            np.zeros(g.num_edges, dtype=int),
            np.maximum(g.dst, 1),
            g.t.copy(),
            num_timestamps=g.num_timestamps,
        )
        assert degree_mmd(g, concentrated) > 0.01

    def test_symmetric(self):
        g = graph()
        other = communication_network(20, 100, 4, seed=8)
        assert degree_mmd(g, other) == pytest.approx(degree_mmd(other, g))


class TestTendency:
    def test_identity_zero(self):
        g = graph()
        assert temporal_tendency_error(g, g.copy()) == 0.0

    def test_report_covers_all_statistics(self):
        g = graph()
        report = tendency_report(g, g.copy())
        assert len(report) == 7
        assert all(v == 0.0 for v in report.values())

    def test_unknown_statistic_raises(self):
        g = graph()
        with pytest.raises(KeyError):
            temporal_tendency_error(g, g.copy(), statistic="nope")

    def test_detects_curve_divergence(self):
        g = graph()
        # Push all edges to the last timestamp: growth curve changes shape.
        late = TemporalGraph(
            g.num_nodes,
            g.src.copy(),
            g.dst.copy(),
            np.full(g.num_edges, g.num_timestamps - 1),
            num_timestamps=g.num_timestamps,
        )
        assert temporal_tendency_error(g, late, "wedge_count") > 0.1
