"""Tests for the one-shot evaluation report."""

import numpy as np
import pytest

from repro.bench import evaluation_report, render_report, report_headline
from repro.cli import main
from repro.datasets import communication_network
from repro.graph import perturb_edges, save_edge_list, shuffle_timestamps


@pytest.fixture(scope="module")
def pair():
    observed = communication_network(25, 200, 5, seed=11)
    generated = perturb_edges(observed, 0.2, seed=0)
    return observed, generated


@pytest.fixture(scope="module")
def report(pair):
    observed, generated = pair
    return evaluation_report(observed, generated, num_nulls=4, seed=0)


class TestEvaluationReport:
    def test_all_sections_present(self, report):
        assert set(report) == {
            "counts",
            "statistics_f_avg",
            "statistics_f_med",
            "extended",
            "temporal",
            "utility",
        }

    def test_counts_section(self, pair, report):
        observed, generated = pair
        assert report["counts"]["observed_edges"] == observed.num_edges
        assert report["counts"]["generated_edges"] == generated.num_edges

    def test_statistics_cover_table_three(self, report):
        for section in ("statistics_f_avg", "statistics_f_med"):
            assert "triangle_count" in report[section]
            assert len(report[section]) == 7

    def test_extended_section_keys(self, report):
        extended = report["extended"]
        for key in ("global_clustering", "degree_ks", "spectral_distance"):
            assert key in extended

    def test_temporal_section(self, report):
        assert report["temporal"]["motif_mmd"] >= 0.0
        assert -1.0 <= report["temporal"]["significance_cosine"] <= 1.0

    def test_utility_section(self, report):
        assert "common_neighbors_gap" in report["utility"]

    def test_fast_mode_skips_expensive_sections(self, pair):
        observed, generated = pair
        fast = evaluation_report(
            observed, generated, include_utility=False, include_significance=False
        )
        assert "utility" not in fast
        assert "significance_cosine" not in fast["temporal"]

    def test_identical_graphs_score_zero_errors(self, pair):
        observed, _ = pair
        self_report = evaluation_report(
            observed, observed.copy(), num_nulls=4, seed=0
        )
        for value in self_report["statistics_f_avg"].values():
            assert value == pytest.approx(0.0)
        assert self_report["temporal"]["motif_mmd"] == pytest.approx(0.0, abs=1e-9)

    def test_noise_worsens_headline(self, pair):
        """More perturbation -> worse headline error (report is monotone)."""
        observed, _ = pair
        mild = evaluation_report(
            observed, perturb_edges(observed, 0.1, seed=1),
            include_utility=False, include_significance=False,
        )
        heavy = evaluation_report(
            observed, perturb_edges(observed, 0.9, seed=1),
            include_utility=False, include_significance=False,
        )
        assert (
            np.mean(list(heavy["statistics_f_avg"].values()))
            > np.mean(list(mild["statistics_f_avg"].values()))
        )

    def test_time_shuffle_hits_temporal_not_static(self, pair):
        observed, _ = pair
        shuffled_report = evaluation_report(
            observed, shuffle_timestamps(observed, seed=2),
            include_utility=False, include_significance=False,
        )
        # The final cumulative snapshot is identical, so final-snapshot
        # errors vanish while the temporal section reacts.
        assert shuffled_report["extended"]["degree_ks"] == 0.0
        assert shuffled_report["temporal"]["motif_mmd"] > 0.0


class TestRendering:
    def test_markdown_structure(self, report):
        text = render_report(report)
        assert text.startswith("# Simulation report")
        assert "## Temporal attribute preservation" in text
        assert "| motif_mmd |" in text

    def test_headline_keys(self, report):
        headline = report_headline(report)
        assert "mean_statistic_error" in headline
        assert "motif_mmd" in headline
        assert "significance_cosine" in headline
        assert "utility_gap" in headline


class TestCliReport:
    def test_report_command_writes_file(self, tmp_path, pair):
        observed, generated = pair
        obs_path = tmp_path / "observed.txt"
        gen_path = tmp_path / "generated.txt"
        out_path = tmp_path / "report.md"
        save_edge_list(observed, obs_path)
        save_edge_list(generated, gen_path)
        assert main([
            "report", "--observed", str(obs_path), "--generated", str(gen_path),
            "--output", str(out_path), "--fast",
        ]) == 0
        text = out_path.read_text()
        assert "# Simulation report" in text

    def test_report_command_stdout(self, tmp_path, pair, capsys):
        observed, generated = pair
        obs_path = tmp_path / "observed.txt"
        gen_path = tmp_path / "generated.txt"
        save_edge_list(observed, obs_path)
        save_edge_list(generated, gen_path)
        assert main([
            "report", "--observed", str(obs_path), "--generated", str(gen_path),
            "--fast",
        ]) == 0
        assert "Graph sizes" in capsys.readouterr().out

    def test_report_command_with_mismatched_timestamp_universe(self, tmp_path, pair):
        """Generated file with fewer distinct timestamps must still report."""
        observed, _ = pair
        obs_path = tmp_path / "obs.txt"
        gen_path = tmp_path / "gen.txt"
        save_edge_list(observed, obs_path)
        # A generated graph active only at t=0 (one distinct timestamp).
        gen_path.write_text("\n".join(f"{u} {v} 0" for u, v in
                                      zip(observed.src[:50], observed.dst[:50])) + "\n")
        assert main([
            "report", "--observed", str(obs_path), "--generated", str(gen_path),
            "--fast",
        ]) == 0
