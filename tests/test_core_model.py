"""Tests for TGAE encoder, decoder, and the combined model forward pass."""

import numpy as np

from repro.autograd import softmax
from repro.core import EgoGraphDecoder, EgoGraphSampler, TGAEEncoder, TGAEModel, fast_config
from repro.graph import TemporalGraph


def toy_graph():
    rng = np.random.default_rng(0)
    m = 40
    return TemporalGraph(
        12,
        rng.integers(0, 12, m),
        rng.integers(0, 12, m),
        np.sort(rng.integers(0, 4, m)),
        num_timestamps=4,
    )


def make_batch(graph, config, seed=0):
    sampler = EgoGraphSampler(graph, config, np.random.default_rng(seed))
    return sampler.next_batch()


class TestEncoder:
    def test_center_hidden_shape(self):
        g = toy_graph()
        config = fast_config(num_initial_nodes=8)
        encoder = TGAEEncoder(g.num_nodes, g.num_timestamps, config)
        batch = make_batch(g, config)
        hidden = encoder.encode_centers(batch.bipartite)
        assert hidden.shape == (8, config.hidden_dim)

    def test_node_features_shape(self):
        g = toy_graph()
        config = fast_config()
        encoder = TGAEEncoder(g.num_nodes, g.num_timestamps, config)
        nodes = np.array([[0, 0], [5, 3]])
        feats = encoder.node_features(nodes)
        assert feats.shape == (2, config.embed_dim)

    def test_same_temporal_node_same_features(self):
        g = toy_graph()
        config = fast_config()
        encoder = TGAEEncoder(g.num_nodes, g.num_timestamps, config)
        feats = encoder.node_features(np.array([[3, 1], [3, 1]])).numpy()
        assert np.allclose(feats[0], feats[1])

    def test_time_distinguishes_occurrences(self):
        g = toy_graph()
        config = fast_config()
        encoder = TGAEEncoder(g.num_nodes, g.num_timestamps, config)
        feats = encoder.node_features(np.array([[3, 0], [3, 2]])).numpy()
        assert not np.allclose(feats[0], feats[1])

    def test_stacks_radius_layers(self):
        config = fast_config(radius=3)
        g = toy_graph()
        encoder = TGAEEncoder(g.num_nodes, g.num_timestamps, config)
        assert len(encoder.layers) == 3


class TestDecoder:
    def test_output_shapes(self):
        g = toy_graph()
        config = fast_config(num_initial_nodes=6)
        decoder = EgoGraphDecoder(g.num_nodes, config)
        hidden = __import__("repro.autograd", fromlist=["tensor"]).tensor(
            np.random.default_rng(1).standard_normal((6, config.hidden_dim))
        )
        feats = __import__("repro.autograd", fromlist=["tensor"]).tensor(
            np.random.default_rng(2).standard_normal((6, config.embed_dim))
        )
        out = decoder(hidden, feats, sample=True)
        assert out.logits.shape == (6, g.num_nodes)
        assert out.mu.shape == (6, config.latent_dim)
        assert out.log_sigma.shape == (6, config.latent_dim)

    def test_probabilistic_sampling_varies(self):
        from repro.autograd import tensor

        g = toy_graph()
        config = fast_config()
        decoder = EgoGraphDecoder(g.num_nodes, config)
        hidden = tensor(np.ones((2, config.hidden_dim)))
        feats = tensor(np.ones((2, config.embed_dim)))
        a = decoder(hidden, feats, sample=True).logits.numpy()
        b = decoder(hidden, feats, sample=True).logits.numpy()
        assert not np.allclose(a, b)

    def test_inference_mode_deterministic(self):
        from repro.autograd import tensor

        g = toy_graph()
        config = fast_config()
        decoder = EgoGraphDecoder(g.num_nodes, config)
        hidden = tensor(np.ones((2, config.hidden_dim)))
        feats = tensor(np.ones((2, config.embed_dim)))
        a = decoder(hidden, feats, sample=False).logits.numpy()
        b = decoder(hidden, feats, sample=False).logits.numpy()
        assert np.allclose(a, b)

    def test_non_probabilistic_has_no_sigma(self):
        g = toy_graph()
        config = fast_config().as_non_probabilistic_variant()
        decoder = EgoGraphDecoder(g.num_nodes, config)
        assert decoder.mlp_sigma is None
        from repro.autograd import tensor

        out = decoder(
            tensor(np.ones((2, config.hidden_dim))),
            tensor(np.ones((2, config.embed_dim))),
            sample=True,
        )
        assert out.log_sigma is None


class TestModel:
    def test_forward_produces_distributions(self):
        g = toy_graph()
        config = fast_config(num_initial_nodes=8)
        model = TGAEModel(g.num_nodes, g.num_timestamps, config)
        batch = make_batch(g, config)
        decoded = model(batch.bipartite, sample=False)
        probs = softmax(decoded.logits, axis=-1).numpy()
        assert probs.shape == (8, g.num_nodes)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_gradients_reach_every_parameter(self):
        g = toy_graph()
        config = fast_config(num_initial_nodes=8)
        model = TGAEModel(g.num_nodes, g.num_timestamps, config)
        batch = make_batch(g, config)
        decoded = model(batch.bipartite, sample=True)
        from repro.core import tgae_loss

        loss = tgae_loss(decoded, batch.target_rows, kl_weight=config.kl_weight)
        loss.backward()
        with_grad = sum(1 for p in model.parameters() if p.grad is not None)
        # All parameters except possibly unused heads must receive gradients.
        assert with_grad >= 0.9 * len(model.parameters())

    def test_parameter_count_reasonable(self):
        g = toy_graph()
        config = fast_config()
        model = TGAEModel(g.num_nodes, g.num_timestamps, config)
        assert 0 < model.num_parameters() < 200_000
