"""Incremental ``TemporalGraph.appended()``: cache maintenance invariants.

The append path promises that every cache already materialised on the source
graph is carried over *incrementally* (merged, not rebuilt) while staying
**bitwise-equal** to the same cache built from scratch on the concatenated
edge list.  These tests pin that contract with direct unit checks, a
Hypothesis rule-based state machine driving arbitrary append/warm-cache
sequences, and the regression test that other derived-graph constructors
(`copy`/`restricted_to`/`deduplicated`) start cold instead of inheriting
stale parent caches.
"""

import numpy as np
import pytest
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from strategies import STATE_MACHINE_SETTINGS

from repro.errors import GraphFormatError
from repro.graph.temporal_graph import TemporalGraph


def _fresh_equivalent(graph: TemporalGraph) -> TemporalGraph:
    """One-shot rebuild of ``graph`` from its concatenated edge list."""
    return TemporalGraph(
        graph.num_nodes,
        graph.src.copy(),
        graph.dst.copy(),
        graph.t.copy(),
        num_timestamps=graph.num_timestamps,
    )


def assert_caches_bitwise_equal(
    graph: TemporalGraph, fresh: TemporalGraph, force: bool = False
) -> None:
    """Compare caches of ``graph`` against ``fresh`` (values *and* dtypes).

    With ``force=False`` only caches already materialised on ``graph`` are
    compared (the fresh rebuild builds its own on demand); ``force=True``
    builds and compares everything, including every snapshot adjacency.
    """
    if force or graph._incidence is not None:
        a, b = graph.incidence, fresh.incidence
        for key in ("offsets", "other", "times", "direction"):
            assert a[key].dtype == b[key].dtype, key
            np.testing.assert_array_equal(a[key], b[key], err_msg=key)
    if force or graph._partner_groups is not None:
        for name, x, y in zip(
            ("offsets", "partners"), graph.out_partner_groups(), fresh.out_partner_groups()
        ):
            assert x.dtype == y.dtype, name
            np.testing.assert_array_equal(x, y, err_msg=name)
    if force or graph._time_order is not None:
        order_a, bounds_a = graph._snapshot_order_bounds()
        order_b, bounds_b = fresh._snapshot_order_bounds()
        assert order_a.dtype == order_b.dtype
        assert bounds_a.dtype == bounds_b.dtype
        np.testing.assert_array_equal(order_a, order_b)
        np.testing.assert_array_equal(bounds_a, bounds_b)
    stamps = range(graph.num_timestamps) if force else list(graph._snapshot_cache)
    for ts in stamps:
        diff = graph.adjacency_at(ts) != fresh.adjacency_at(ts)
        assert diff.nnz == 0, f"adjacency_at({ts}) differs"


def _random_graph(rng, n=10, T=6, m=40):
    return TemporalGraph(
        n, rng.integers(0, n, m), rng.integers(0, n, m), rng.integers(0, T, m), num_timestamps=T
    )


class TestAppended:
    def test_appends_edges_after_existing(self):
        g = TemporalGraph(4, [0, 1], [1, 2], [0, 1], num_timestamps=3)
        g2 = g.appended([3], [0], [2])
        assert g2.num_edges == 3
        np.testing.assert_array_equal(g2.src, [0, 1, 3])
        np.testing.assert_array_equal(g2.dst, [1, 2, 0])
        np.testing.assert_array_equal(g2.t, [0, 1, 2])
        # the source graph is untouched
        assert g.num_edges == 2

    def test_grows_horizon_by_default(self):
        g = TemporalGraph(4, [0], [1], [0], num_timestamps=2)
        assert g.appended([1], [2], [5]).num_timestamps == 6

    def test_fixed_horizon_rejects_out_of_range(self):
        g = TemporalGraph(4, [0], [1], [0], num_timestamps=2)
        with pytest.raises(GraphFormatError, match="new_t"):
            g.appended([1], [2], [5], num_timestamps=2)

    def test_rejects_out_of_universe_nodes(self):
        g = TemporalGraph(4, [0], [1], [0], num_timestamps=2)
        with pytest.raises(GraphFormatError, match="new_src"):
            g.appended([4], [0], [0])
        with pytest.raises(GraphFormatError, match="new_dst"):
            g.appended([0], [-1], [0])

    def test_rejects_horizon_shrink(self):
        g = TemporalGraph(4, [0], [1], [3], num_timestamps=4)
        with pytest.raises(GraphFormatError, match="shrink"):
            g.appended([0], [1], [0], num_timestamps=2)

    def test_rejects_ragged_batch(self):
        g = TemporalGraph(4, [0], [1], [0], num_timestamps=2)
        with pytest.raises(GraphFormatError, match="parallel"):
            g.appended([0, 1], [1], [0])

    def test_cold_source_stays_lazy(self):
        g = TemporalGraph(4, [0, 1], [1, 2], [0, 1], num_timestamps=2)
        g2 = g.appended([2], [3], [1])
        assert g2._incidence is None
        assert g2._partner_groups is None
        assert g2._time_order is None
        assert g2._snapshot_cache == {}

    def test_warm_caches_carried_and_bitwise_equal(self):
        rng = np.random.default_rng(0)
        for trial in range(30):
            g = _random_graph(rng)
            g.incidence
            g.out_partner_groups()
            g._snapshot_order_bounds()
            for ts in range(g.num_timestamps):
                g.snapshot_view(ts)
            k = int(rng.integers(0, 15))
            g2 = g.appended(
                rng.integers(0, g.num_nodes, k),
                rng.integers(0, g.num_nodes, k),
                rng.integers(0, g.num_timestamps, k),
            )
            # caches were carried, not dropped
            assert g2._incidence is not None
            assert g2._partner_groups is not None
            assert g2._time_order is not None
            assert_caches_bitwise_equal(g2, _fresh_equivalent(g2), force=True)

    def test_empty_batch_carries_caches(self):
        rng = np.random.default_rng(1)
        g = _random_graph(rng)
        g.incidence
        g.out_partner_groups()
        g2 = g.appended([], [], [])
        assert g2.num_edges == g.num_edges
        assert g2._incidence is not None
        assert_caches_bitwise_equal(g2, _fresh_equivalent(g2), force=True)

    def test_snapshot_cache_carries_untouched_timestamps_only(self):
        g = TemporalGraph(5, [0, 1, 2], [1, 2, 3], [0, 1, 2], num_timestamps=3)
        snap0 = g.snapshot_view(0)
        snap1 = g.snapshot_view(1)
        g.snapshot_view(2)
        g2 = g.appended([3], [4], [2])
        # untouched timestamps share the parent's immutable snapshot objects
        assert g2._snapshot_cache[0] is snap0
        assert g2._snapshot_cache[1] is snap1
        # the appended timestamp was dropped and rebuilds correctly
        assert 2 not in g2._snapshot_cache
        assert g2.snapshot_view(2).num_edges == 2

    def test_horizon_growth_with_warm_caches(self):
        rng = np.random.default_rng(2)
        g = _random_graph(rng, T=4)
        g.incidence
        g._snapshot_order_bounds()
        g2 = g.appended([0, 1], [1, 2], [5, 6])
        assert g2.num_timestamps == 7
        assert_caches_bitwise_equal(g2, _fresh_equivalent(g2), force=True)


class TestDerivedGraphsStartCold:
    """Regression: derived graphs must never inherit parent cache state."""

    @pytest.mark.parametrize(
        "derive",
        [
            lambda g: g.copy(),
            lambda g: g.restricted_to(2),
            lambda g: g.deduplicated(),
            lambda g: g.without_self_loops(),
        ],
        ids=["copy", "restricted_to", "deduplicated", "without_self_loops"],
    )
    def test_caches_empty_after_derivation(self, derive):
        rng = np.random.default_rng(3)
        g = _random_graph(rng)
        # warm everything on the parent first
        g.incidence
        g.out_partner_groups()
        g._snapshot_order_bounds()
        for ts in range(g.num_timestamps):
            g.snapshot_view(ts)
        derived = derive(g)
        assert derived._incidence is None
        assert derived._partner_groups is None
        assert derived._time_order is None
        assert derived._time_bounds is None
        assert derived._snapshot_cache == {}
        # and the lazily rebuilt caches describe the derived edge list,
        # not the parent's (a stale carry would fail here)
        assert_caches_bitwise_equal(derived, _fresh_equivalent(derived), force=True)


class AppendMachine(RuleBasedStateMachine):
    """Random interleaving of appends and cache warm-ups.

    After every rule, each cache materialised on the incrementally-built
    graph must be bitwise-equal to the one a from-scratch build over the
    concatenated edge list produces; the teardown forces *all* caches and
    compares the complete query surface.
    """

    NODES = 8
    STAMPS = 5

    def __init__(self):
        super().__init__()
        empty = np.empty(0, dtype=np.int64)
        self.graph = TemporalGraph(
            self.NODES, empty, empty, empty, num_timestamps=self.STAMPS
        )
        self.src, self.dst, self.t = [], [], []

    @rule(
        batch=st.lists(
            st.tuples(
                st.integers(0, NODES - 1),
                st.integers(0, NODES - 1),
                st.integers(0, STAMPS - 1),
            ),
            max_size=6,
        )
    )
    def append(self, batch):
        src = [edge[0] for edge in batch]
        dst = [edge[1] for edge in batch]
        t = [edge[2] for edge in batch]
        self.graph = self.graph.appended(src, dst, t, num_timestamps=self.STAMPS)
        self.src += src
        self.dst += dst
        self.t += t

    @rule()
    def warm_incidence(self):
        self.graph.incidence

    @rule()
    def warm_partner_groups(self):
        self.graph.out_partner_groups()

    @rule()
    def warm_time_order(self):
        self.graph._snapshot_order_bounds()

    @rule(ts=st.integers(0, STAMPS - 1))
    def warm_snapshot(self, ts):
        self.graph.snapshot_view(ts)

    @invariant()
    def materialised_caches_match_one_shot_build(self):
        assert self.graph.num_edges == len(self.src)
        assert_caches_bitwise_equal(self.graph, self._one_shot())

    def teardown(self):
        assert_caches_bitwise_equal(self.graph, self._one_shot(), force=True)

    def _one_shot(self):
        return TemporalGraph(
            self.NODES, self.src, self.dst, self.t, num_timestamps=self.STAMPS
        )


AppendMachine.TestCase.settings = STATE_MACHINE_SETTINGS
TestAppendMachine = AppendMachine.TestCase
