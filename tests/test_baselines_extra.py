"""Tests for the extra related-work baselines (RTGEN, MTM, TED)."""

import numpy as np
import pytest

from repro.baselines import (
    EXTRA_BASELINES,
    MotifTransitionGenerator,
    RTGenGenerator,
    TEDGenerator,
)
from repro.datasets import citation_network, communication_network
from repro.graph import TemporalGraph, cumulative_snapshots, validate_generated
from repro.metrics import triangle_count


@pytest.fixture(scope="module")
def observed():
    return communication_network(25, 150, 5, seed=31)


@pytest.mark.parametrize("name", list(EXTRA_BASELINES))
class TestContract:
    def test_end_to_end(self, observed, name):
        generated = EXTRA_BASELINES[name]().fit(observed).generate(seed=0)
        report = validate_generated(observed, generated)
        assert report.ok, f"{name}: {report}"

    def test_reproducible(self, observed, name):
        gen = EXTRA_BASELINES[name]().fit(observed)
        assert gen.generate(seed=5) == gen.generate(seed=5)


class TestRTGen:
    def test_preserves_expected_out_degrees(self, observed):
        """Configuration-model sampling keeps per-node out-degree close."""
        generated = RTGenGenerator().fit(observed).generate(seed=0)
        obs_deg = np.bincount(observed.src, minlength=observed.num_nodes)
        gen_deg = np.bincount(generated.src, minlength=observed.num_nodes)
        # Expected equality; allow sampling noise via correlation.
        corr = np.corrcoef(obs_deg, gen_deg)[0, 1]
        assert corr > 0.7

    def test_empty_snapshot_handled(self):
        from repro.graph import TemporalGraph

        g = TemporalGraph(5, [0, 1], [1, 2], [0, 2], num_timestamps=3)
        generated = RTGenGenerator().fit(g).generate(seed=0)
        assert generated.num_edges == 2


class TestMTM:
    def test_rates_sum_to_one(self, observed):
        gen = MotifTransitionGenerator().fit(observed)
        for p_new, p_attach, p_close in gen._rates:
            assert p_new + p_attach + p_close == pytest.approx(1.0)

    def test_triangle_rich_input_estimates_closures(self):
        # A stream of triangles yields a non-trivial closure rate.
        src, dst, t = [], [], []
        for i in range(0, 30, 3):
            a, b, c = i % 15, (i + 1) % 15, (i + 2) % 15
            src += [a, b, a]
            dst += [b, c, c]
            t += [i % 4] * 3
        from repro.graph import TemporalGraph

        g = TemporalGraph(15, src, dst, t, num_timestamps=4)
        gen = MotifTransitionGenerator().fit(g)
        total_close = sum(r[2] for r in gen._rates)
        assert total_close > 0.2

    def test_replay_produces_triangles_when_input_has_them(self):
        g = citation_network(30, 300, 6, seed=5)
        generated = MotifTransitionGenerator(seed=1).fit(g).generate(seed=1)
        obs_tri = triangle_count(cumulative_snapshots(g)[-1])
        gen_tri = triangle_count(cumulative_snapshots(generated)[-1])
        if obs_tri > 0:
            assert gen_tri >= 0  # process runs; exact counts are stochastic


def _two_community_graph():
    """Two 6-cliques: block A active at t in {0,1}, block B at t in {2,3}."""
    src, dst, t = [], [], []
    block_a = list(range(6))
    block_b = list(range(6, 12))
    for time in (0, 1):
        for i in block_a:
            for j in block_a:
                if i != j:
                    src.append(i)
                    dst.append(j)
                    t.append(time)
    for time in (2, 3):
        for i in block_b:
            for j in block_b:
                if i != j:
                    src.append(i)
                    dst.append(j)
                    t.append(time)
    return TemporalGraph(12, src, dst, t, num_timestamps=4)


class TestTED:
    def test_detects_two_communities(self):
        gen = TEDGenerator().fit(_two_community_graph())
        labels = gen.community_labels
        # Nodes 0-5 share a label, nodes 6-11 share another, and they differ.
        assert len(set(labels[:6].tolist())) == 1
        assert len(set(labels[6:].tolist())) == 1
        assert labels[0] != labels[6]

    def test_time_bounds_follow_activity(self):
        gen = TEDGenerator().fit(_two_community_graph())
        bounds = gen.community_time_bounds()
        spans = sorted(bounds.values())
        assert spans == [(0, 1), (2, 3)]

    def test_generation_respects_time_bounds(self):
        """With zero smoothing, block A edges never appear in block B's window."""
        graph = _two_community_graph()
        gen = TEDGenerator(smoothing=0.0).fit(graph)
        generated = gen.generate(seed=3)
        labels = gen.community_labels
        label_a = labels[0]
        early = generated.t <= 1
        # All early edges stay within the early-active community.
        assert np.all(labels[generated.src[early]] == label_a)
        assert np.all(labels[generated.dst[early]] == label_a)

    def test_smoothing_allows_leakage(self):
        graph = _two_community_graph()
        gen = TEDGenerator(smoothing=10.0).fit(graph)
        generated = gen.generate(seed=3)
        labels = gen.community_labels
        early_src_labels = labels[generated.src[generated.t <= 1]]
        # Heavy smoothing lets the other block fire early sometimes.
        assert len(set(early_src_labels.tolist())) == 2

    def test_edge_count_preserved(self):
        graph = _two_community_graph()
        generated = TEDGenerator().fit(graph).generate(seed=0)
        assert generated.num_edges == graph.num_edges

    def test_max_communities_caps_blocks(self):
        gen = TEDGenerator(max_communities=1).fit(_two_community_graph())
        assert set(gen.community_labels.tolist()) == {0}

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TEDGenerator(max_communities=0)
        with pytest.raises(ValueError):
            TEDGenerator(smoothing=-1.0)

    def test_edgeless_graph(self):
        g = TemporalGraph(5, [], [], [], num_timestamps=3)
        generated = TEDGenerator().fit(g).generate(seed=0)
        assert generated.num_edges == 0

    def test_no_self_loops(self):
        generated = TEDGenerator().fit(_two_community_graph()).generate(seed=2)
        assert not np.any(generated.src == generated.dst)
