"""Tests for the temporal graph attention layer (Eqs. 3-5) and time encoding."""

import numpy as np
import pytest

from repro.autograd import tensor
from repro.errors import ConfigError, ShapeError
from repro.nn import TemporalGraphAttention, TimeEncoding


def make_layer(**kwargs):
    defaults = dict(
        in_features=6, out_features=4, num_heads=2, time_dim=4,
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return TemporalGraphAttention(**defaults)


class TestTimeEncoding:
    def test_shape(self):
        enc = TimeEncoding(8, rng=np.random.default_rng(0))
        assert enc(np.array([0.0, 1.0, 5.0])).shape == (3, 8)

    def test_bounded(self):
        enc = TimeEncoding(8, rng=np.random.default_rng(0))
        out = enc(np.linspace(-100, 100, 50)).numpy()
        assert np.all(np.abs(out) <= 1.0 + 1e-9)

    def test_zero_offset_is_cos_phase(self):
        enc = TimeEncoding(4, rng=np.random.default_rng(0))
        out = enc(np.array([0.0])).numpy()
        expected = np.cos(enc.phase.data)
        assert np.allclose(out[0], expected)

    def test_distinguishes_offsets(self):
        enc = TimeEncoding(8, rng=np.random.default_rng(0))
        a = enc(np.array([0.0])).numpy()
        b = enc(np.array([3.0])).numpy()
        assert not np.allclose(a, b)

    def test_invalid_dim(self):
        with pytest.raises(ConfigError):
            TimeEncoding(0)

    def test_gradients_flow_to_frequency(self):
        enc = TimeEncoding(4, rng=np.random.default_rng(0))
        enc(np.array([1.0, 2.0])).sum().backward()
        assert enc.frequency.grad is not None


class TestTemporalGraphAttention:
    def test_output_shape(self):
        layer = make_layer()
        h_src = tensor(np.random.default_rng(1).standard_normal((5, 6)))
        h_dst = tensor(np.random.default_rng(2).standard_normal((3, 6)))
        src = np.array([0, 1, 2, 3, 4])
        dst = np.array([0, 0, 1, 2, 2])
        out = layer(h_src, h_dst, src, dst, delta_t=np.zeros(5))
        assert out.shape == (3, 4)

    def test_no_edges_returns_bias_only(self):
        layer = make_layer()
        h_src = tensor(np.zeros((0, 6)))
        h_dst = tensor(np.zeros((2, 6)))
        out = layer(h_src, h_dst, np.array([], dtype=int), np.array([], dtype=int))
        assert out.shape == (2, 4)
        assert np.allclose(out.numpy(), layer.bias.data)

    def test_mismatched_index_lengths_raise(self):
        layer = make_layer()
        with pytest.raises(ShapeError):
            layer(
                tensor(np.zeros((2, 6))),
                tensor(np.zeros((2, 6))),
                np.array([0]),
                np.array([0, 1]),
            )

    def test_isolated_target_gets_bias(self):
        """A target with no incoming edges must receive only the bias."""
        layer = make_layer()
        h_src = tensor(np.random.default_rng(3).standard_normal((2, 6)))
        h_dst = tensor(np.random.default_rng(4).standard_normal((3, 6)))
        out = layer(h_src, h_dst, np.array([0, 1]), np.array([0, 0]), np.zeros(2))
        assert np.allclose(out.numpy()[1], layer.bias.data)
        assert np.allclose(out.numpy()[2], layer.bias.data)

    def test_permutation_equivariance_over_targets(self):
        """Permuting target rows (and edges accordingly) permutes outputs."""
        layer = make_layer()
        rng = np.random.default_rng(5)
        h_src = tensor(rng.standard_normal((4, 6)))
        h_dst_data = rng.standard_normal((3, 6))
        src = np.array([0, 1, 2, 3])
        dst = np.array([0, 1, 2, 0])
        dt = np.array([0.0, 1.0, 2.0, 0.5])
        out = layer(tensor(h_src.numpy()), tensor(h_dst_data), src, dst, dt).numpy()
        perm = np.array([2, 0, 1])  # new_pos[old] mapping: row i -> perm position
        inv = np.argsort(perm)
        out_perm = layer(
            tensor(h_src.numpy()), tensor(h_dst_data[perm]), src, inv[dst], dt
        ).numpy()
        assert np.allclose(out_perm, out[perm], atol=1e-10)

    def test_time_offset_changes_output(self):
        layer = make_layer()
        rng = np.random.default_rng(6)
        h_src = tensor(rng.standard_normal((3, 6)))
        h_dst = tensor(rng.standard_normal((2, 6)))
        src = np.array([0, 1, 2])
        dst = np.array([0, 0, 1])
        a = layer(h_src, h_dst, src, dst, np.zeros(3)).numpy()
        b = layer(h_src, h_dst, src, dst, np.array([5.0, 1.0, 2.0])).numpy()
        assert not np.allclose(a, b)

    def test_no_time_encoding_when_dim_zero(self):
        layer = make_layer(time_dim=0)
        assert layer.time_encoding is None
        h_src = tensor(np.random.default_rng(7).standard_normal((2, 6)))
        h_dst = tensor(np.random.default_rng(8).standard_normal((1, 6)))
        out = layer(h_src, h_dst, np.array([0, 1]), np.array([0, 0]), np.zeros(2))
        assert out.shape == (1, 4)

    def test_gradients_reach_all_parameters(self):
        layer = make_layer()
        h_src = tensor(np.random.default_rng(9).standard_normal((4, 6)), requires_grad=True)
        h_dst = tensor(np.random.default_rng(10).standard_normal((2, 6)), requires_grad=True)
        out = layer(h_src, h_dst, np.array([0, 1, 2, 3]), np.array([0, 0, 1, 1]), np.ones(4))
        out.sum().backward()
        assert h_src.grad is not None and np.abs(h_src.grad).sum() > 0
        for name, param in layer.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"

    def test_attention_is_convex_combination(self):
        """With identical sources, the output equals the single-source case."""
        layer = make_layer(time_dim=0)
        rng = np.random.default_rng(11)
        row = rng.standard_normal(6)
        h_dst = tensor(rng.standard_normal((1, 6)))
        single = layer(
            tensor(row[None, :]), h_dst, np.array([0]), np.array([0])
        ).numpy()
        triple = layer(
            tensor(np.tile(row, (3, 1))), h_dst, np.array([0, 1, 2]), np.array([0, 0, 0])
        ).numpy()
        assert np.allclose(single, triple, atol=1e-10)

    def test_invalid_heads(self):
        with pytest.raises(ConfigError):
            make_layer(num_heads=0)
