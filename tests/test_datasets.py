"""Tests for the dataset registry, synthetic generators, scalability grid."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    available_datasets,
    citation_network,
    communication_network,
    dataset_statistics,
    density_scale_sweep,
    erdos_renyi_temporal,
    get_spec,
    load_dataset,
    make_scalability_graph,
    make_synthetic,
    node_scale_sweep,
    qa_network,
    timestamp_scale_sweep,
    trust_network,
    ScalabilityPoint,
)
from repro.errors import ConfigError, DatasetError
from repro.graph import cumulative_snapshots


class TestRegistry:
    def test_seven_datasets(self):
        assert len(available_datasets()) == 7

    def test_paper_scale_matches_table2(self):
        spec = get_spec("DBLP", scale="paper")
        assert (spec.num_nodes, spec.num_edges, spec.num_timestamps) == (1909, 8237, 15)

    def test_table2_sizes_verbatim(self):
        expected = {
            "EMAIL": (986, 332_334, 805),
            "MATH": (24_818, 506_550, 79),
            "UBUNTU": (159_316, 964_437, 88),
        }
        for name, sizes in expected.items():
            spec = DATASETS[name]
            assert (spec.num_nodes, spec.num_edges, spec.num_timestamps) == sizes

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("NOPE")

    def test_unknown_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("DBLP", scale="gigantic")

    def test_case_insensitive(self):
        assert get_spec("dblp").name == "DBLP"

    def test_small_scale_loads(self):
        g = load_dataset("DBLP", scale="small")
        assert g.num_nodes >= 30
        assert g.num_edges >= 120

    def test_deterministic(self):
        assert load_dataset("MSG", scale="small") == load_dataset("MSG", scale="small")

    def test_statistics_helper(self):
        g = load_dataset("DBLP", scale="small")
        stats = dataset_statistics(g)
        assert stats == {
            "nodes": g.num_nodes,
            "edges": g.num_edges,
            "timestamps": g.num_timestamps,
        }

    def test_all_datasets_load_small(self):
        for name in available_datasets():
            g = load_dataset(name, scale="small")
            assert g.num_edges > 0


class TestGenerators:
    @pytest.mark.parametrize(
        "factory",
        [citation_network, communication_network, trust_network, qa_network,
         erdos_renyi_temporal],
    )
    def test_respects_requested_sizes(self, factory):
        g = factory(50, 200, 8, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges == 200
        assert g.num_timestamps == 8

    @pytest.mark.parametrize(
        "factory",
        [citation_network, communication_network, trust_network, qa_network],
    )
    def test_no_self_loops(self, factory):
        g = factory(40, 150, 6, seed=2)
        assert np.all(g.src != g.dst)

    def test_seed_determinism(self):
        a = communication_network(40, 150, 6, seed=3)
        b = communication_network(40, 150, 6, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = communication_network(40, 150, 6, seed=3)
        b = communication_network(40, 150, 6, seed=4)
        assert a != b

    def test_citation_network_grows(self):
        g = citation_network(60, 300, 10, seed=0)
        snaps = cumulative_snapshots(g)
        # Densifying growth: later snapshots strictly larger.
        assert snaps[-1].num_edges > snaps[len(snaps) // 2].num_edges > 0

    def test_citation_heavy_tail(self):
        g = citation_network(200, 1000, 10, seed=0)
        final = cumulative_snapshots(g)[-1]
        degrees = final.degrees()
        # Preferential attachment: max degree far above mean.
        assert degrees.max() > 4 * degrees[degrees > 0].mean()

    def test_qa_core_concentration(self):
        g = qa_network(100, 500, 8, seed=0)
        out_deg = np.bincount(g.src, minlength=100)
        # All sources come from the small core.
        assert np.count_nonzero(out_deg) <= max(int(100 * 0.05), 2)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            citation_network(1, 10, 5)
        with pytest.raises(ConfigError):
            communication_network(10, 0, 5)

    def test_make_synthetic_dispatch(self):
        g = make_synthetic("trust", 30, 100, 5, seed=0)
        assert g.num_edges == 100

    def test_make_synthetic_unknown_kind(self):
        with pytest.raises(ConfigError):
            make_synthetic("nope", 30, 100, 5)


class TestScalabilityGrid:
    def test_node_sweep_labels(self):
        points = node_scale_sweep(base_nodes=1000, steps=5)
        assert [p.label for p in points] == [
            "1k*10*0.01", "2k*10*0.01", "3k*10*0.01", "4k*10*0.01", "5k*10*0.01"
        ]

    def test_timestamp_sweep(self):
        points = timestamp_scale_sweep(base_nodes=1000, steps=5)
        assert [p.num_timestamps for p in points] == [10, 20, 30, 40, 50]

    def test_density_sweep(self):
        points = density_scale_sweep(base_nodes=1000, steps=5)
        assert [round(p.density, 2) for p in points] == [0.01, 0.02, 0.03, 0.04, 0.05]

    def test_edge_count_formula(self):
        p = ScalabilityPoint(100, 10, 0.02)
        assert p.num_edges == 200

    def test_graph_materialisation(self):
        g = make_scalability_graph(ScalabilityPoint(100, 10, 0.01))
        assert g.num_nodes == 100
        assert g.num_edges == 100
        assert g.num_timestamps == 10

    def test_invalid_base(self):
        with pytest.raises(ConfigError):
            node_scale_sweep(base_nodes=5)
