"""End-to-end integration tests mirroring the paper's headline claims.

These run the real pipeline (dataset -> fit -> generate -> evaluate) at tiny
scale and assert the *shape* of the paper's results: TGAE must beat the
structure-blind baselines on motif-sensitive statistics, and every
experiment builder must produce complete, finite tables.
"""

import numpy as np
import pytest

from repro.base import TemporalGraphGenerator
from repro.bench import quality_table, run_methods
from repro.core import TGAEGenerator, fast_config
from repro.datasets import load_dataset
from repro.graph import TemporalGraph
from repro.metrics import compare_graphs, motif_distribution, motif_mmd


@pytest.fixture(scope="module")
def observed():
    return load_dataset("DBLP", scale="small")


@pytest.fixture(scope="module")
def tgae_generated(observed):
    config = fast_config(epochs=25, num_initial_nodes=48)
    return TGAEGenerator(config).fit(observed).generate(seed=0)


@pytest.fixture(scope="module")
def er_generated(observed):
    from repro.baselines import ErdosRenyiGenerator

    return ErdosRenyiGenerator().fit(observed).generate(seed=0)


class TestHeadlineClaim:
    """TGAE outperforms the simple baselines on structure-sensitive metrics."""

    def test_tgae_beats_er_on_higher_order_structure(
        self, observed, tgae_generated, er_generated
    ):
        metrics = ["wedge_count", "claw_count", "triangle_count"]
        tgae = compare_graphs(observed, tgae_generated, statistics=metrics, reduction="mean")
        er = compare_graphs(observed, er_generated, statistics=metrics, reduction="mean")
        wins = sum(1 for m in metrics if tgae[m] < er[m])
        assert wins >= 2, f"TGAE={tgae}, E-R={er}"

    def test_tgae_motif_mmd_better_than_er(self, observed, tgae_generated, er_generated):
        reference = motif_distribution(observed, delta=2)
        tgae = motif_mmd(reference, motif_distribution(tgae_generated, delta=2))
        er = motif_mmd(reference, motif_distribution(er_generated, delta=2))
        assert tgae < er

    def test_tgae_errors_small_in_absolute_terms(self, observed, tgae_generated):
        scores = compare_graphs(observed, tgae_generated, reduction="median")
        # Every statistic within 100% relative error at tiny training budget.
        assert all(v < 1.0 for v in scores.values()), scores


class TestFullPipeline:
    def test_quality_table_all_methods_small(self, observed):
        """Smoke the full Tables IV/V path with every registered method."""
        config = fast_config(epochs=2, num_initial_nodes=16)
        table = quality_table(observed, reduction="median", tgae_config=config)
        methods = {m for row in table.values() for m in row}
        assert len(methods) == 11
        for row in table.values():
            assert all(np.isfinite(v) for v in row.values())

    def test_generated_graphs_valid_for_all_methods(self, observed):
        config = fast_config(epochs=2, num_initial_nodes=16)
        run = run_methods(observed, tgae_config=config, seed=1)
        for name, result in run.results.items():
            g = result.generated
            assert isinstance(g, TemporalGraph), name
            assert g.num_edges == observed.num_edges, name
            assert g.num_nodes == observed.num_nodes, name


class TestCustomGeneratorPluggability:
    def test_user_defined_generator_works_with_metrics(self, observed):
        """The public API supports third-party generators."""

        class CopyGenerator(TemporalGraphGenerator):
            name = "Copy"

            def _fit(self, graph):
                pass

            def _generate(self, seed):
                return self.observed.copy()

        generator = CopyGenerator().fit(observed)
        out = generator.generate()
        scores = compare_graphs(observed, out)
        assert all(v == 0.0 for v in scores.values())
