"""Tests for edge-list persistence."""

import pytest

from repro.errors import GraphFormatError
from repro.graph import TemporalGraph, load_edge_list, save_edge_list


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        g = TemporalGraph(4, [0, 1, 2], [1, 2, 3], [0, 1, 2])
        path = tmp_path / "graph.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded == g

    def test_header_comment_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n% another\n0 1 0\n1 2 1\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_reindexing_compacts_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200 50\n200 300 60\n")
        g = load_edge_list(path)
        assert g.num_nodes == 3
        assert g.num_timestamps == 2
        assert set(g.src.tolist()) <= {0, 1, 2}

    def test_reindexing_preserves_time_order(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 500\n1 2 100\n")
        g = load_edge_list(path)
        # Edge with raw time 100 must map to the earlier rank.
        later = g.t[0]
        earlier = g.t[1]
        assert earlier < later

    def test_comma_separated(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("0,1,0\n1,2,1\n")
        assert load_edge_list(path).num_edges == 2

    def test_no_reindex_respects_universe(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0\n1 2 1\n")
        g = load_edge_list(path, num_nodes=10, num_timestamps=5, reindex=False)
        assert g.num_nodes == 10
        assert g.num_timestamps == 5


class TestErrors:
    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_short_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b c\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_error_mentions_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0\nbroken\n")
        with pytest.raises(GraphFormatError, match=":2"):
            load_edge_list(path)
