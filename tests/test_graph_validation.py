"""Tests for the generated-graph validation report."""


from repro.graph import TemporalGraph, validate_generated


def observed():
    return TemporalGraph(5, [0, 1, 2, 3], [1, 2, 3, 4], [0, 0, 1, 1], num_timestamps=2)


class TestContract:
    def test_valid_copy(self):
        g = observed()
        report = validate_generated(g, g.copy())
        assert report.ok
        assert not report.errors
        assert "OK" in str(report)

    def test_node_universe_mismatch(self):
        g = observed()
        bad = TemporalGraph(9, g.src, g.dst, g.t, num_timestamps=2)
        report = validate_generated(g, bad)
        assert not report.ok
        assert any("node universe" in e for e in report.errors)

    def test_timestamp_mismatch(self):
        g = observed()
        bad = TemporalGraph(5, g.src, g.dst, g.t, num_timestamps=5)
        report = validate_generated(g, bad)
        assert not report.ok

    def test_edge_budget_exact(self):
        g = observed()
        bad = TemporalGraph(5, [0], [1], [0], num_timestamps=2)
        report = validate_generated(g, bad)
        assert any("edge budget" in e for e in report.errors)

    def test_edge_budget_tolerance(self):
        g = observed()
        close = TemporalGraph(5, [0, 1, 2], [1, 2, 3], [0, 0, 1], num_timestamps=2)
        strict = validate_generated(g, close)
        lenient = validate_generated(g, close, edge_budget_tolerance=0.5)
        assert not strict.ok
        assert lenient.ok

    def test_empty_generated(self):
        g = observed()
        empty = TemporalGraph(5, [], [], [], num_timestamps=2)
        report = validate_generated(g, empty)
        assert not report.ok

    def test_self_loop_warning(self):
        g = observed()
        loopy = TemporalGraph(5, [0, 1, 2, 3], [0, 2, 3, 4], [0, 0, 1, 1],
                              num_timestamps=2)
        report = validate_generated(g, loopy)
        assert report.ok  # warning, not error
        assert any("self-loop" in w for w in report.warnings)

    def test_empty_timestamp_warning(self):
        g = observed()
        skewed = TemporalGraph(5, [0, 1, 2, 3], [1, 2, 3, 4], [0, 0, 0, 0],
                               num_timestamps=2)
        report = validate_generated(g, skewed)
        assert report.ok
        assert any("empty timestamp" in w for w in report.warnings)


class TestWithGenerators:
    def test_all_baselines_pass_validation(self):
        from repro.baselines import BASELINES
        from repro.datasets import communication_network

        g = communication_network(15, 80, 4, seed=21)
        for name, factory in BASELINES.items():
            generated = factory().fit(g).generate(seed=0)
            report = validate_generated(g, generated)
            assert report.ok, f"{name}: {report}"

    def test_tgae_passes_validation(self):
        from repro.core import TGAEGenerator, fast_config
        from repro.datasets import communication_network

        g = communication_network(15, 80, 4, seed=22)
        generated = TGAEGenerator(fast_config(epochs=2)).fit(g).generate(seed=0)
        report = validate_generated(g, generated)
        assert report.ok, str(report)
