"""Unit tests for the Tensor primitives: forward values and exact gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, concat, no_grad, ones, stack, tensor, zeros
from repro.errors import GradientError, ShapeError


class TestConstruction:
    def test_tensor_from_list(self):
        t = tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_tensor_from_scalar(self):
        t = tensor(2.5)
        assert t.item() == 2.5

    def test_zeros_and_ones(self):
        assert np.all(zeros((2, 3)).numpy() == 0)
        assert np.all(ones((2, 3)).numpy() == 1)

    def test_requires_grad_default_false(self):
        assert not tensor([1.0]).requires_grad

    def test_detach_cuts_graph(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_len_and_repr(self):
        t = tensor([1.0, 2.0])
        assert len(t) == 2
        assert "Tensor" in repr(t)


class TestArithmeticForward:
    def test_add(self):
        out = tensor([1.0, 2.0]) + tensor([3.0, 4.0])
        assert np.allclose(out.numpy(), [4.0, 6.0])

    def test_add_scalar(self):
        out = tensor([1.0, 2.0]) + 1.0
        assert np.allclose(out.numpy(), [2.0, 3.0])

    def test_radd(self):
        out = 1.0 + tensor([1.0, 2.0])
        assert np.allclose(out.numpy(), [2.0, 3.0])

    def test_sub_and_rsub(self):
        assert np.allclose((tensor([3.0]) - 1.0).numpy(), [2.0])
        assert np.allclose((5.0 - tensor([3.0])).numpy(), [2.0])

    def test_mul_div(self):
        assert np.allclose((tensor([2.0]) * tensor([3.0])).numpy(), [6.0])
        assert np.allclose((tensor([6.0]) / tensor([3.0])).numpy(), [2.0])

    def test_rtruediv(self):
        assert np.allclose((6.0 / tensor([3.0])).numpy(), [2.0])

    def test_neg(self):
        assert np.allclose((-tensor([1.0, -2.0])).numpy(), [-1.0, 2.0])

    def test_pow(self):
        assert np.allclose((tensor([2.0, 3.0]) ** 2).numpy(), [4.0, 9.0])

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            tensor([2.0]) ** tensor([2.0])

    def test_matmul_2d(self):
        a = tensor([[1.0, 2.0], [3.0, 4.0]])
        b = tensor([[5.0, 6.0], [7.0, 8.0]])
        assert np.allclose((a @ b).numpy(), np.array([[19, 22], [43, 50]]))

    def test_broadcast_add(self):
        a = tensor(np.ones((2, 3)))
        b = tensor(np.ones((3,)))
        assert (a + b).shape == (2, 3)


class TestGradients:
    def test_add_gradients(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_gradients(self):
        a = tensor([2.0, 3.0], requires_grad=True)
        b = tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [4.0, 5.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_broadcast_gradient_sums(self):
        a = tensor(np.ones((2, 3)), requires_grad=True)
        b = tensor(np.ones((3,)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [2.0, 2.0, 2.0])

    def test_matmul_gradcheck(self):
        rng = np.random.default_rng(0)
        a = tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = tensor(rng.standard_normal((4, 2)), requires_grad=True)
        assert check_gradients(lambda x, y: x @ y, [a, b])

    def test_div_gradcheck(self):
        a = tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = tensor([4.0, 5.0, 6.0], requires_grad=True)
        assert check_gradients(lambda x, y: x / y, [a, b])

    def test_chain_rule_through_reuse(self):
        # y = x * x + x: dy/dx = 2x + 1
        x = tensor([3.0], requires_grad=True)
        (x * x + x).backward(np.array([1.0]))
        assert np.allclose(x.grad, [7.0])

    def test_gradient_accumulates_across_backward_calls(self):
        x = tensor([1.0], requires_grad=True)
        (x * 2).backward(np.array([1.0]))
        (x * 2).backward(np.array([1.0]))
        assert np.allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = tensor([1.0], requires_grad=True)
        (x * 2).backward(np.array([1.0]))
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_scalar_without_seed(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_on_nograd_tensor_raises(self):
        x = tensor([1.0])
        with pytest.raises(GradientError):
            x.backward()

    def test_backward_seed_shape_mismatch(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(ShapeError):
            y.backward(np.ones((3,)))


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op", ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"]
    )
    def test_elementwise_gradcheck(self, op):
        rng = np.random.default_rng(1)
        data = rng.uniform(0.5, 2.0, size=(3, 2))  # positive for log/sqrt
        x = tensor(data, requires_grad=True)
        assert check_gradients(lambda t: getattr(t, op)(), [x])

    def test_leaky_relu_values(self):
        x = tensor([-1.0, 0.0, 2.0])
        out = x.leaky_relu(0.2)
        assert np.allclose(out.numpy(), [-0.2, 0.0, 2.0])

    def test_leaky_relu_gradcheck(self):
        x = tensor([-1.5, -0.3, 0.7, 2.0], requires_grad=True)
        assert check_gradients(lambda t: t.leaky_relu(0.2), [x])

    def test_relu_kills_gradient_on_negatives(self):
        x = tensor([-1.0, 1.0], requires_grad=True)
        x.relu().sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_clip_gradcheck_interior(self):
        x = tensor([0.1, 0.5, 0.9], requires_grad=True)
        assert check_gradients(lambda t: t.clip(0.0, 1.0), [x])

    def test_clip_blocks_gradient_outside(self):
        x = tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(0.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_sigmoid_saturation_is_stable(self):
        out = tensor([1000.0, -1000.0]).sigmoid().numpy()
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(0.0)


class TestReductions:
    def test_sum_all(self):
        assert tensor([[1.0, 2.0], [3.0, 4.0]]).sum().item() == 10.0

    def test_sum_axis(self):
        out = tensor([[1.0, 2.0], [3.0, 4.0]]).sum(axis=0)
        assert np.allclose(out.numpy(), [4.0, 6.0])

    def test_sum_keepdims(self):
        out = tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_sum_gradcheck(self):
        x = tensor(np.random.default_rng(2).standard_normal((3, 4)), requires_grad=True)
        assert check_gradients(lambda t: t.sum(axis=1), [x])

    def test_mean_value_and_grad(self):
        x = tensor([2.0, 4.0], requires_grad=True)
        m = x.mean()
        assert m.item() == 3.0
        m.backward()
        assert np.allclose(x.grad, [0.5, 0.5])

    def test_mean_axis_tuple(self):
        x = tensor(np.ones((2, 3, 4)))
        assert x.mean(axis=(0, 2)).shape == (3,)

    def test_max_forward(self):
        assert tensor([1.0, 5.0, 3.0]).max().item() == 5.0

    def test_max_gradient_split_on_ties(self):
        x = tensor([2.0, 2.0], requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5])

    def test_max_axis_gradcheck(self):
        rng = np.random.default_rng(3)
        x = tensor(rng.standard_normal((4, 5)), requires_grad=True)
        assert check_gradients(lambda t: t.max(axis=1), [x])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        x = tensor(np.arange(6, dtype=float), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert np.allclose(x.grad, np.ones(6))

    def test_transpose_values(self):
        x = tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(x.T.numpy(), [[1.0, 3.0], [2.0, 4.0]])

    def test_transpose_axes_gradcheck(self):
        rng = np.random.default_rng(4)
        x = tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        assert check_gradients(lambda t: t.transpose(2, 0, 1), [x])

    def test_getitem_gradient_scatter(self):
        x = tensor([1.0, 2.0, 3.0], requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(x.grad, [2.0, 0.0, 1.0])

    def test_slice(self):
        x = tensor([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(x[1:3].numpy(), [2.0, 3.0])


class TestGatherScatter:
    def test_take_rows_values(self):
        x = tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        out = x.take_rows(np.array([2, 0]))
        assert np.allclose(out.numpy(), [[5.0, 6.0], [1.0, 2.0]])

    def test_take_rows_duplicate_gradient_accumulates(self):
        x = tensor(np.ones((3, 2)), requires_grad=True)
        x.take_rows(np.array([1, 1, 1])).sum().backward()
        assert np.allclose(x.grad, [[0, 0], [3, 3], [0, 0]])

    def test_segment_sum_values(self):
        x = tensor([[1.0], [2.0], [3.0]])
        out = x.segment_sum(np.array([0, 1, 0]), 2)
        assert np.allclose(out.numpy(), [[4.0], [2.0]])

    def test_segment_sum_gradient_is_gather(self):
        x = tensor(np.ones((3, 2)), requires_grad=True)
        out = x.segment_sum(np.array([0, 1, 0]), 2)
        (out * tensor([[1.0, 1.0], [2.0, 2.0]])).sum().backward()
        assert np.allclose(x.grad, [[1, 1], [2, 2], [1, 1]])

    def test_segment_sum_length_mismatch_raises(self):
        x = tensor(np.ones((3, 2)))
        with pytest.raises(ShapeError):
            x.segment_sum(np.array([0, 1]), 2)

    def test_segment_sum_empty_segment(self):
        x = tensor(np.ones((2, 1)))
        out = x.segment_sum(np.array([0, 0]), 3)
        assert np.allclose(out.numpy(), [[2.0], [0.0], [0.0]])


class TestConcatStack:
    def test_concat_values(self):
        out = concat([tensor([1.0]), tensor([2.0, 3.0])])
        assert np.allclose(out.numpy(), [1.0, 2.0, 3.0])

    def test_concat_axis1_gradients(self):
        a = tensor(np.ones((2, 2)), requires_grad=True)
        b = tensor(np.ones((2, 3)), requires_grad=True)
        concat([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)

    def test_concat_empty_raises(self):
        with pytest.raises(ShapeError):
            concat([])

    def test_stack_values_and_grad(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b])
        assert out.shape == (2, 2)
        (out * tensor([[1.0, 1.0], [2.0, 2.0]])).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [2.0, 2.0])

    def test_stack_empty_raises(self):
        with pytest.raises(ShapeError):
            stack([])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        x = tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        from repro.autograd import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        from repro.autograd import is_grad_enabled

        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()
