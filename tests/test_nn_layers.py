"""Tests for the layer zoo: Linear, Embedding, MLP, LayerNorm, activations, RNN cells."""

import numpy as np
import pytest

from repro.autograd import tensor
from repro.errors import ConfigError
from repro.nn import (
    MLP,
    Embedding,
    GRUCell,
    LayerNorm,
    LeakyReLU,
    Linear,
    LSTMCell,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(3, 5, rng=np.random.default_rng(0))
        assert layer(tensor(np.ones((4, 3)))).shape == (4, 5)

    def test_no_bias(self):
        layer = Linear(3, 5, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        zero_out = layer(tensor(np.zeros((1, 3)))).numpy()
        assert np.allclose(zero_out, 0.0)

    def test_linearity(self):
        layer = Linear(3, 2, bias=False, rng=np.random.default_rng(1))
        x = np.random.default_rng(2).standard_normal((2, 3))
        doubled = layer(tensor(2 * x)).numpy()
        assert np.allclose(doubled, 2 * layer(tensor(x)).numpy())

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            Linear(0, 3)

    def test_gradients_flow_to_parameters(self):
        layer = Linear(3, 2, rng=np.random.default_rng(3))
        layer(tensor(np.ones((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        assert emb(np.array([1, 2, 3])).shape == (3, 4)

    def test_2d_indices(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_same_id_same_vector(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([5, 5])).numpy()
        assert np.allclose(out[0], out[1])

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_per_id(self):
        emb = Embedding(5, 2, rng=np.random.default_rng(0))
        emb(np.array([1, 1, 2])).sum().backward()
        grad = emb.weight.grad
        assert np.allclose(grad[1], [2.0, 2.0])
        assert np.allclose(grad[2], [1.0, 1.0])
        assert np.allclose(grad[0], [0.0, 0.0])


class TestMLP:
    def test_shapes(self):
        mlp = MLP([3, 8, 8, 2], rng=np.random.default_rng(0))
        assert mlp(tensor(np.ones((5, 3)))).shape == (5, 2)

    def test_needs_two_sizes(self):
        with pytest.raises(ConfigError):
            MLP([3])

    def test_activate_last(self):
        mlp = MLP([3, 2], rng=np.random.default_rng(0), activate_last=True)
        out = mlp(tensor(np.random.default_rng(1).standard_normal((10, 3)))).numpy()
        assert np.all(out >= 0)  # ReLU applied

    def test_last_layer_linear_by_default(self):
        mlp = MLP([3, 4, 2], rng=np.random.default_rng(2))
        out = mlp(tensor(np.random.default_rng(3).standard_normal((50, 3)))).numpy()
        assert (out < 0).any()  # not ReLU'd


class TestActivationModules:
    @pytest.mark.parametrize(
        "module,fn",
        [
            (ReLU(), lambda x: np.maximum(x, 0)),
            (Tanh(), np.tanh),
            (Sigmoid(), lambda x: 1 / (1 + np.exp(-x))),
            (LeakyReLU(0.2), lambda x: np.where(x > 0, x, 0.2 * x)),
        ],
    )
    def test_matches_numpy(self, module, fn):
        x = np.random.default_rng(0).standard_normal((3, 4))
        assert np.allclose(module(tensor(x)).numpy(), fn(x))


class TestLayerNorm:
    def test_normalises(self):
        ln = LayerNorm(8)
        x = tensor(np.random.default_rng(0).standard_normal((4, 8)) * 10 + 3)
        out = ln(x).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_params_learnable(self):
        ln = LayerNorm(4)
        ln(tensor(np.random.default_rng(1).standard_normal((2, 4)))).sum().backward()
        assert ln.gamma.grad is not None
        assert ln.beta.grad is not None

    def test_invalid_dim(self):
        with pytest.raises(ConfigError):
            LayerNorm(0)


class TestSequential:
    def test_composition(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(3, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        assert seq(tensor(np.ones((2, 3)))).shape == (2, 2)
        assert len(seq) == 3

    def test_indexing_and_append(self):
        seq = Sequential(ReLU())
        seq.append(Tanh())
        assert isinstance(seq[1], Tanh)


class TestGRUCell:
    def test_step_shape(self):
        cell = GRUCell(3, 5, rng=np.random.default_rng(0))
        h = cell(tensor(np.ones((2, 3))), cell.initial_state(2))
        assert h.shape == (2, 5)

    def test_state_changes_with_input(self):
        cell = GRUCell(3, 5, rng=np.random.default_rng(0))
        h0 = cell.initial_state(1)
        h1 = cell(tensor(np.ones((1, 3))), h0)
        h2 = cell(tensor(-np.ones((1, 3))), h0)
        assert not np.allclose(h1.numpy(), h2.numpy())

    def test_gradients_flow_through_time(self):
        cell = GRUCell(2, 3, rng=np.random.default_rng(1))
        x = tensor(np.ones((1, 2)), requires_grad=True)
        h = cell.initial_state(1)
        for _ in range(3):
            h = cell(x, h)
        h.sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            GRUCell(0, 3)


class TestLSTMCell:
    def test_step_shapes(self):
        cell = LSTMCell(3, 5, rng=np.random.default_rng(0))
        h, c = cell(tensor(np.ones((2, 3))), cell.initial_state(2))
        assert h.shape == (2, 5)
        assert c.shape == (2, 5)

    def test_hidden_bounded_by_tanh(self):
        cell = LSTMCell(3, 4, rng=np.random.default_rng(0))
        state = cell.initial_state(1)
        x = tensor(np.random.default_rng(1).standard_normal((1, 3)) * 10)
        for _ in range(5):
            state = cell(x, state)
        assert np.all(np.abs(state[0].numpy()) <= 1.0)

    def test_gradients_reach_parameters(self):
        cell = LSTMCell(2, 3, rng=np.random.default_rng(2))
        h, c = cell(tensor(np.ones((1, 2))), cell.initial_state(1))
        h.sum().backward()
        assert cell.w_x.grad is not None
        assert cell.w_h.grad is not None
